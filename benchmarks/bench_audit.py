"""AUDIT — the static↔dynamic cross-validation driver.

Runs ``audit_source`` over the three canonical example programs (racy,
observable-only, clean) with fixed seeds, asserts the expected
classifications, and reports the deterministic work the subsystem did.
The ``work.audit.*`` counters (recorded by ``audit_program`` under the
profiled run) make this a regression gate on detector effort, not just
wall time.
"""

from pathlib import Path

from repro.bench import register
from repro.dynamic.audit import audit_source

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _example(name: str) -> str:
    return (EXAMPLES / name).read_text()


@register(
    "audit",
    group="fast",
    repeat=3,
    summary="audit cross-validation: racy confirmed, clean stays clean",
)
def bench_audit() -> dict:
    results = {}

    racy = audit_source(_example("race_counter.par"), runs=16)
    assert len(racy.confirmed) == 2
    assert all(f.witness_verified for f in racy.confirmed)
    assert racy.sound

    observable = audit_source(_example("figure1.par"), runs=16)
    assert not observable.confirmed
    assert len(observable.unconfirmed) == 1
    assert observable.unconfirmed[0].scope == "observable-args"
    assert not observable.dynamic

    clean = audit_source(_example("bank_transfer.par"), runs=16)
    assert not clean.findings
    assert not clean.dynamic
    assert clean.sound

    for name, report in (
        ("race_counter", racy),
        ("figure1", observable),
        ("bank_transfer", clean),
    ):
        cov = report.coverage
        assert cov.explore_complete
        assert cov.outcome_coverage == 1.0
        results[name] = {
            "confirmed": len(report.confirmed),
            "unconfirmed": len(report.unconfirmed),
            "dynamic": len(report.dynamic),
            "sampled_classes": cov.sampled_classes,
            "ordering_coverage": cov.ordering_coverage,
        }
    return results
