"""FIG1 — Figure 1: mutual exclusion reduces data dependencies.

Regenerates the paper's claim table for the Figure 1 program: the number
of definitions of ``a`` reaching each of T1's two uses, under CSSA vs
CSSAME, and that constant propagation proves ``g(a)`` sees ``a = 3``
only under CSSAME.
"""

from repro.bench import register
from repro.cssame import build_cssame, parallel_reaching_definitions
from repro.ir.printer import format_ir
from repro.ir.stmts import SAssign, SCallStmt
from repro.ir.structured import iter_statements
from repro.opt import concurrent_constant_propagation

from benchmarks.common import FIGURE1_SOURCE, print_table, program_of


def _reaching_a_counts(prune: bool) -> tuple[int, int]:
    """(defs of `a` reaching f(a), defs of `a` reaching g(a))."""
    program = program_of(FIGURE1_SOURCE)
    build_cssame(program, prune=prune)
    info = parallel_reaching_definitions(program)

    f_call = next(
        s for s, _ in iter_statements(program)
        if isinstance(s, SCallStmt) and s.func == "f"
    )
    g_holder = next(
        s for s, _ in iter_statements(program)
        if isinstance(s, SAssign) and s.target == "b" and s.version == 1
    )

    def count_a(stmt):
        defs = set()
        for use in stmt.uses():
            for d in info.defs(use):
                if getattr(d, "target", None) == "a" or (
                    getattr(d, "name", None) == "a"
                ):
                    defs.add(d)
        return len(defs)

    return count_a(f_call), count_a(g_holder)


def _constant_at_g(prune: bool) -> bool:
    program = program_of(FIGURE1_SOURCE)
    form = build_cssame(program, prune=prune)
    concurrent_constant_propagation(program, form.graph)
    return "g(3)" in format_ir(program)


@register(
    "figure1",
    group="fast",
    summary="Figure 1: mutex reduces reaching defs; constant reaches g(a)",
)
def bench_figure1() -> dict:
    cssa_f, cssa_g = _reaching_a_counts(prune=False)
    cssame_f, cssame_g = _reaching_a_counts(prune=True)
    assert cssame_g == 1 and cssa_g > cssame_g and cssame_f == cssa_f
    proves = {"cssa": _constant_at_g(False), "cssame": _constant_at_g(True)}
    assert proves["cssame"] and not proves["cssa"]
    return {
        "reaching_f": {"cssa": cssa_f, "cssame": cssame_f},
        "reaching_g": {"cssa": cssa_g, "cssame": cssame_g},
        "constant_at_g": proves,
    }


def test_figure1_reaching_reduction(benchmark):
    cssa_f, cssa_g = _reaching_a_counts(prune=False)
    cssame_f, cssame_g = benchmark(_reaching_a_counts, True)

    print_table(
        "Figure 1: defs of 'a' reaching T1's uses",
        ["use", "CSSA", "CSSAME"],
        [("f(a)  (unprotected)", cssa_f, cssame_f),
         ("g(a)  (protected)", cssa_g, cssame_g)],
    )
    # Paper: the protected use sees only a = 3 under CSSAME.
    assert cssame_g == 1
    assert cssa_g > cssame_g
    # The unprotected use keeps its cross-thread def either way.
    assert cssame_f == cssa_f


def test_figure1_constant_at_g(benchmark):
    cssame_proves = benchmark(_constant_at_g, True)
    cssa_proves = _constant_at_g(False)
    print_table(
        "Figure 1: constant propagation proves g(a) == g(3)",
        ["form", "proved"],
        [("CSSA", cssa_proves), ("CSSAME", cssame_proves)],
    )
    assert cssame_proves and not cssa_proves
