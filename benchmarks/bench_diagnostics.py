"""DIAG — Section 6 diagnostics on seeded-buggy programs.

Measures the cost of the warning/race analyses and checks their
precision/recall on program families with planted synchronization bugs.
"""

from repro.api import diagnose_source
from repro.bench import register
from repro.synth import GeneratorConfig, generate_source

from benchmarks.common import print_table

BUGGY = {
    "unmatched-lock": """
        cobegin
        begin lock(L); v = 1; end
        begin lock(L); v = 2; unlock(L); end
        coend
    """,
    "improper-nesting": """
        lock(A); lock(B); x = 1; unlock(A); y = 2; unlock(B);
    """,
    "inconsistent-locks": """
        cobegin
        begin lock(A); v = 1; unlock(A); end
        begin lock(B); v = 2; unlock(B); end
        coend
        print(v);
    """,
    "bare-race": """
        cobegin begin v = 1; end begin v = 2; end coend print(v);
    """,
}


@register(
    "diagnostics",
    group="fast",
    repeat=3,
    summary="Section 6 diagnostics: planted bugs, precision, recall",
)
def bench_diagnostics() -> dict:
    planted = {}
    for name, source in BUGGY.items():
        warnings, races = diagnose_source(source)
        planted[name] = {"warnings": len(warnings), "races": len(races)}
    assert planted["unmatched-lock"]["warnings"] >= 1
    assert planted["improper-nesting"]["warnings"] >= 1
    assert planted["inconsistent-locks"]["races"] >= 1
    assert planted["bare-race"]["races"] >= 1
    false_positives = 0
    for seed in range(10):
        source = generate_source(
            GeneratorConfig(seed=seed, race_free=True, n_locks=2,
                            p_critical=0.7)
        )
        _warnings, races = diagnose_source(source)
        false_positives += len(races)
    assert false_positives == 0
    detected = 0
    for seed in range(10):
        source = generate_source(
            GeneratorConfig(seed=seed, race_free=False, p_critical=0.1,
                            n_shared=3)
        )
        _warnings, races = diagnose_source(source)
        detected += bool(races)
    assert detected >= 6
    return {
        "planted": planted,
        "false_positives": false_positives,
        "racy_detected": detected,
    }


def test_planted_bugs_detected(benchmark):
    def run():
        results = {}
        for name, source in BUGGY.items():
            warnings, races = diagnose_source(source)
            results[name] = (len(warnings), len(races))
        return results

    results = benchmark(run)
    print_table(
        "Section 6 diagnostics on planted bugs",
        ["program", "warnings", "races"],
        [(k, *v) for k, v in sorted(results.items())],
    )
    assert results["unmatched-lock"][0] >= 1
    assert results["improper-nesting"][0] >= 1
    assert results["inconsistent-locks"][1] >= 1
    assert results["bare-race"][1] >= 1


def test_random_racefree_precision(benchmark):
    """Race-free generated programs must produce zero race reports."""

    def run():
        false_positives = 0
        for seed in range(10):
            source = generate_source(
                GeneratorConfig(seed=seed, race_free=True, n_locks=2,
                                p_critical=0.7)
            )
            _warnings, races = diagnose_source(source)
            false_positives += len(races)
        return false_positives

    assert benchmark(run) == 0


def test_random_racy_recall(benchmark):
    """Mostly-unlocked generated programs should usually race."""

    def run():
        detected = 0
        for seed in range(10):
            source = generate_source(
                GeneratorConfig(seed=seed, race_free=False, p_critical=0.1,
                                n_shared=3)
            )
            _warnings, races = diagnose_source(source)
            detected += bool(races)
        return detected

    assert benchmark(run) >= 6
