"""SCALE — cost of each compilation phase vs program size.

The paper reports no timings; this benchmark characterises our
implementation of each algorithm (PFG build, A.1, CSSA, A.3, CSCC,
PDCE, A.5) as the synthetic program grows, so regressions are visible
and the complexity of the Python prototype is documented.
"""

import pytest

from repro.bench import register
from repro.cfg.builder import build_flow_graph
from repro.cssame import build_cssame, parallel_reaching_definitions
from repro.ir.structured import clone_program, count_statements
from repro.mutex.identify import identify_mutex_structures
from repro.opt import (
    concurrent_constant_propagation,
    lock_independent_code_motion,
    parallel_dead_code_elimination,
)
from repro.synth import GeneratorConfig, generate_program

SIZES = [4, 12, 20]


@register(
    "scalability",
    group="slow",
    repeat=2,
    summary="every compilation phase across generated program sizes",
)
def bench_scalability() -> dict:
    by_size = {}
    for size in SIZES:
        program = make(size)
        graph = build_flow_graph(program)
        assert len(graph.blocks) > size
        structures = identify_mutex_structures(graph)
        assert sum(len(s) for s in structures.values()) > 0
        form = build_cssame(make(size))
        assert form.rewrite_stats is not None
        rd_prog = make(size)
        build_cssame(rd_prog)
        info = parallel_reaching_definitions(rd_prog)
        assert len(info.defs_of_use) > 0
        cp_prog = make(size)
        cp_form = build_cssame(cp_prog)
        cp = concurrent_constant_propagation(cp_prog, cp_form.graph)
        dce_prog = make(size)
        build_cssame(dce_prog)
        dce = parallel_dead_code_elimination(dce_prog)
        licm_prog = make(size)
        build_cssame(licm_prog)
        licm = lock_independent_code_motion(licm_prog)
        by_size[str(size)] = {
            "blocks": len(graph.blocks),
            "statements": count_statements(program),
            "constants": len(cp.constants),
            "dce_removed": dce.total_removed,
            "licm_moved": licm.total_moved,
        }
    return {"sizes": by_size}


def make(size: int):
    # Two threads, six shared variables: the π-argument count of the
    # CSSA form grows quadratically with conflicting definitions, so
    # sizes are chosen to keep the *form* (not our algorithms) the
    # bounded quantity.  See EXPERIMENTS.md / SCALE.
    return generate_program(
        GeneratorConfig(
            seed=size,
            n_threads=2,
            stmts_per_thread=size,
            n_shared=6,
            n_locks=2,
            p_critical=0.6,
            p_if=0.2,
        )
    )


@pytest.mark.parametrize("size", SIZES)
def test_pfg_build(benchmark, size):
    program = make(size)
    graph = benchmark(build_flow_graph, program)
    assert len(graph.blocks) > size


@pytest.mark.parametrize("size", SIZES)
def test_mutex_identification(benchmark, size):
    program = make(size)
    graph = build_flow_graph(program)
    structures = benchmark(identify_mutex_structures, graph)
    assert sum(len(s) for s in structures.values()) > 0


@pytest.mark.parametrize("size", SIZES)
def test_cssame_construction(benchmark, size):
    def build():
        return build_cssame(make(size))

    form = benchmark(build)
    assert form.rewrite_stats is not None


@pytest.mark.parametrize("size", SIZES)
def test_reaching_definitions(benchmark, size):
    program = make(size)
    build_cssame(program)
    info = benchmark(parallel_reaching_definitions, program)
    assert len(info.defs_of_use) > 0


@pytest.mark.parametrize("size", SIZES)
def test_constant_propagation(benchmark, size):
    def run():
        program = make(size)
        form = build_cssame(program)
        return concurrent_constant_propagation(program, form.graph)

    stats = benchmark(run)
    assert stats is not None


@pytest.mark.parametrize("size", SIZES)
def test_pdce(benchmark, size):
    def run():
        program = make(size)
        build_cssame(program)
        return parallel_dead_code_elimination(program)

    stats = benchmark(run)
    assert stats is not None


@pytest.mark.parametrize("size", SIZES)
def test_licm(benchmark, size):
    def run():
        program = make(size)
        build_cssame(program)
        return lock_independent_code_motion(program)

    stats = benchmark(run)
    assert stats is not None
