"""SESSION — artifact-cache speedups and batch-driver scaling.

Two claims of the ``repro.session`` redesign, quantified:

1. **The cache pays for the API.**  The analyze + diagnose + dot
   journey through one :class:`~repro.session.Session` reuses the
   front end and the CSSAME form instead of re-running them per call.
   Measured three ways against three cold ``api.*`` calls (the
   pre-redesign cost): the first sweep of a fresh session (*fill*,
   saves the repeated front ends), a repeat sweep (*steady*, pure
   cache walk), and a two-sweep service pattern (*amortized*).  The
   acceptance bar is ≥2× for the steady and amortized journeys.
2. **The batch driver isolates and scales.**  ``BatchSession`` over a
   replicated examples corpus: serial vs. thread pool (GIL-bound, so
   ~1× on a pure-Python pipeline — reported to keep us honest) vs.
   process pool (real parallelism when the hardware has cores; the
   speedup assertion is gated on ``os.cpu_count() >= 2``, and the
   observed value is always recorded).

Emits ``BENCH_session.json`` next to ``EXPERIMENTS.md``.
"""

import glob
import json
import os
import tempfile
from time import perf_counter

from repro import api
from repro.bench import register
from repro.session import BatchSession, Session

from benchmarks.common import print_table

_REPEATS = 7
#: corpus replication factor for the scaling measurement (96 files)
_REPLICAS = 12

_EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
BENCH_SESSION_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_session.json",
)

JOURNEY_SOURCE = open(
    os.path.join(_EXAMPLES, "figure2.par"), encoding="utf-8"
).read()


def _best_of(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _cold_journey() -> None:
    """Three one-shot facade calls: every one re-runs the front end."""
    api.analyze_source(JOURNEY_SOURCE)
    api.diagnose_source(JOURNEY_SOURCE)
    api.pfg_dot(JOURNEY_SOURCE)


def _sweep(session: Session) -> None:
    session.analyze(JOURNEY_SOURCE)
    session.diagnose(JOURNEY_SOURCE)
    session.dot(JOURNEY_SOURCE)


def measure_journey() -> dict:
    cold = _best_of(_cold_journey)

    def fill() -> None:
        _sweep(Session())
    fill_time = _best_of(fill)

    warm = Session()
    _sweep(warm)
    steady = _best_of(lambda: _sweep(warm))

    def amortized() -> None:
        session = Session()
        _sweep(session)
        _sweep(session)
    amortized_time = _best_of(amortized) / 2  # per-sweep cost

    stats_session = Session()
    _sweep(stats_session)
    _sweep(stats_session)
    return {
        "cold_ms": round(cold * 1e3, 4),
        "fill_ms": round(fill_time * 1e3, 4),
        "steady_ms": round(steady * 1e3, 4),
        "amortized_ms": round(amortized_time * 1e3, 4),
        "speedup_fill": round(cold / fill_time, 2),
        "speedup_steady": round(cold / steady, 2),
        "speedup_amortized": round(cold / amortized_time, 2),
        "cache": stats_session.cache_stats().as_dict(),
    }


def _replicated_corpus(directory: str) -> int:
    """Write _REPLICAS distinct copies of every example into
    ``directory``; distinct content so no two files share artifacts."""
    count = 0
    for replica in range(_REPLICAS):
        for path in sorted(glob.glob(os.path.join(_EXAMPLES, "*.par"))):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            name = f"{replica:02d}_{os.path.basename(path)}"
            with open(os.path.join(directory, name), "w", encoding="utf-8") as out:
                out.write(f"// replica {replica}\n{source}")
            count += 1
    return count


def measure_batch() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        files = _replicated_corpus(tmp)
        timings = {}
        baseline_results = None
        for label, jobs, executor in (
            ("serial", 1, "serial"),
            ("thread_x2", 2, "thread"),
            ("process_x2", 2, "process"),
            ("process_x4", 4, "process"),
        ):
            batch = BatchSession(jobs=jobs, executor=executor)
            t0 = perf_counter()
            results = batch.run_dir(tmp)
            timings[label] = perf_counter() - t0
            assert len(results) == files
            assert all(r.ok for r in results), [
                r.error for r in results if not r.ok
            ][:1]
            summaries = [
                (os.path.basename(r.path), r.warnings, r.races) for r in results
            ]
            if baseline_results is None:
                baseline_results = summaries
            else:
                # every executor returns identical, identically-ordered results
                assert summaries == baseline_results
    serial = timings["serial"]
    return {
        "files": files,
        "cpu_count": os.cpu_count(),
        # The process-pool scaling assertion needs >=2 real cores; the
        # marker records that this record's scaling claim was skipped.
        "gated": (os.cpu_count() or 1) < 2,
        "wall_ms": {k: round(v * 1e3, 1) for k, v in timings.items()},
        "speedup_vs_serial": {
            k: round(serial / v, 2) for k, v in timings.items() if k != "serial"
        },
    }


def emit_bench_session(journey: dict, batch: dict) -> dict:
    payload = {
        "schema": "repro.session/bench/v1",
        "journey": journey,
        "batch": batch,
    }
    with open(BENCH_SESSION_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


@register(
    "session_cache",
    group="slow",
    repeat=1,
    profile=False,  # the cache journeys time themselves; an ambient
    # tracer (fresh_when_traced sessions, span cost) would distort them
    summary="artifact-cache journey speedups and batch-driver scaling",
    emits=("BENCH_session.json",),
)
def bench_session_cache() -> dict:
    journey = measure_journey()
    assert journey["speedup_fill"] > 1.0, journey
    assert journey["speedup_steady"] >= 2.0, journey
    assert journey["speedup_amortized"] >= 2.0, journey
    batch = measure_batch()
    if batch["gated"]:
        print(
            f"// scaling assertion gated: cpu_count={batch['cpu_count']} < 2 "
            "(parity still asserted)"
        )
    else:
        assert batch["speedup_vs_serial"]["process_x2"] >= 1.3, batch
    return emit_bench_session(journey, batch)


def test_session_cache_journey_speedup():
    journey = measure_journey()
    print_table(
        "analyze+diagnose+dot journey (best of "
        f"{_REPEATS}; cold = three api.* calls)",
        ["variant", "ms", "speedup"],
        [
            ("cold api.*", journey["cold_ms"], "1.0x"),
            ("session fill", journey["fill_ms"],
             f"{journey['speedup_fill']}x"),
            ("session steady", journey["steady_ms"],
             f"{journey['speedup_steady']}x"),
            ("session amortized", journey["amortized_ms"],
             f"{journey['speedup_amortized']}x"),
        ],
    )
    # the cache is only allowed to *help* on the very first sweep ...
    assert journey["speedup_fill"] > 1.0, journey
    # ... and must win >=2x once the session is doing its job
    assert journey["speedup_steady"] >= 2.0, journey
    assert journey["speedup_amortized"] >= 2.0, journey
    test_session_cache_journey_speedup.result = journey  # for the emitter


def test_batch_scaling_and_parity():
    batch = measure_batch()
    rows = [("serial", batch["wall_ms"]["serial"], "1.0x")]
    for label in ("thread_x2", "process_x2", "process_x4"):
        rows.append(
            (label, batch["wall_ms"][label],
             f"{batch['speedup_vs_serial'][label]}x")
        )
    print_table(
        f"batch driver over {batch['files']} files "
        f"({batch['cpu_count']} cpu(s))",
        ["executor", "ms", "speedup"],
        rows,
    )
    # Real parallel speedup needs real cores; on a 1-cpu host the
    # process pool only adds fork+pickle overhead, so the scaling
    # assertion is hardware-gated.  Result parity is asserted inside
    # measure_batch() unconditionally.
    if batch["gated"]:
        print(
            f"// scaling assertion gated: cpu_count={batch['cpu_count']} < 2 "
            "(parity still asserted)"
        )
    else:
        assert batch["speedup_vs_serial"]["process_x2"] >= 1.3, batch
    test_batch_scaling_and_parity.result = batch


def test_emit_bench_session():
    journey = getattr(
        test_session_cache_journey_speedup, "result", None
    ) or measure_journey()
    batch = getattr(
        test_batch_scaling_and_parity, "result", None
    ) or measure_batch()
    payload = emit_bench_session(journey, batch)
    assert os.path.exists(BENCH_SESSION_PATH)
    assert payload["journey"]["speedup_steady"] >= 2.0


if __name__ == "__main__":  # pragma: no cover
    test_session_cache_journey_speedup()
    test_batch_scaling_and_parity()
    test_emit_bench_session()
    print(f"\nwrote {BENCH_SESSION_PATH}")
