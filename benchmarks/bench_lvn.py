"""LVN — the Section 7 "translated scalar optimization" demo.

Measures how much redundant computation block-local value numbering
removes on workloads with repeated subexpressions, and that the reuse
opportunities *shrink* when conflicting access forces distinct π-guarded
names — the CSSAME invariant at work.
"""

from repro.bench import register
from repro.cssame import build_cssame
from repro.opt import local_value_numbering

from benchmarks.common import print_table, program_of


def _workload(protected: bool) -> str:
    guard_open = "lock(W);" if protected else ""
    guard_close = "unlock(W);" if protected else ""
    lines = ["base = 3;", "scale = 4;", "cobegin"]
    for t in range(2):
        lines.append(f"T{t}: begin")
        lines.append(f"    {guard_open}")
        for k in range(6):
            lines.append(f"    r{t}_{k} = base * scale + {t};")
        lines.append(f"    {guard_close}")
        lines.append("end")
    lines.append("coend")
    lines.append("print(r0_0, r1_0);")
    return "\n".join(line for line in lines if line.strip())


def run(protected: bool):
    program = program_of(_workload(protected))
    build_cssame(program)
    return local_value_numbering(program)


_CONFLICTING_SOURCE = """
base = 3;
cobegin
T0: begin
    x = base * base;
    y = base * base;
    print(x, y);
end
T1: begin
    base = 5;
end
coend
"""


@register(
    "lvn",
    group="fast",
    summary="LVN: reuse under protection, none under conflicting writes",
)
def bench_lvn() -> dict:
    protected = run(True)
    assert protected.expressions_replaced >= 8
    conflicting_prog = program_of(_CONFLICTING_SOURCE)
    build_cssame(conflicting_prog)
    conflicting = local_value_numbering(conflicting_prog)
    assert conflicting.expressions_replaced == 0
    return {
        "protected_replaced": protected.expressions_replaced,
        "conflicting_replaced": conflicting.expressions_replaced,
        "blocks_processed": protected.blocks_processed,
    }


def test_lvn_reuse(benchmark):
    protected = benchmark(run, True)
    print_table(
        "LVN on 6 repeated computations per thread",
        ["metric", "value"],
        [
            ("expressions replaced", protected.expressions_replaced),
            ("blocks processed", protected.blocks_processed),
        ],
    )
    # base*scale is read-only shared → SSA names match; 5 of the 6
    # occurrences per thread reuse the first (the +t makes each target
    # distinct but the base*scale subtree is shared).
    assert protected.expressions_replaced >= 8


def test_lvn_blocked_by_conflicts(benchmark):
    """When another thread writes the operands, π terms give every read
    a fresh name and reuse disappears."""

    def run_conflicting():
        program = program_of(_CONFLICTING_SOURCE)
        build_cssame(program)
        return local_value_numbering(program)

    stats = benchmark(run_conflicting)
    print_table(
        "LVN under conflicting writes",
        ["metric", "value"],
        [("expressions replaced", stats.expressions_replaced)],
    )
    assert stats.expressions_replaced == 0
