"""OBS — tracer overhead, enabled vs. disabled, on the figure corpus.

Two questions, answered per figure program:

1. What does the *disabled* (default) tracer cost?  The instrumented
   code pays one ``get_tracer()``/``tracer.enabled`` guard or no-op span
   per site; we time one no-op site directly, count how many sites one
   pipeline run executes (= the records an enabled run collects), and
   bound the total against the pipeline's wall time.  The acceptance
   bar is <5% — measured this way the real number is orders of
   magnitude below it, and the estimate is robust to timer noise in a
   way a direct A/B of two ~millisecond runs is not.
2. What does an *enabled* tracer cost?  Direct A/B timing; reported for
   EXPERIMENTS.md, not asserted (collecting events is allowed to cost).

Also emits ``BENCH_obs.json`` (the machine-readable per-figure
observation file) as a side effect, so one benchmark run refreshes the
whole observability trajectory.
"""

from time import perf_counter

from repro.api import optimize_source
from repro.bench import register
from repro.obs.trace import NULL_TRACER, Tracer

from benchmarks.common import FIGURE_CORPUS, emit_bench_obs, print_table

#: how many times to repeat a timed section (best-of defeats noise)
_REPEATS = 5
#: iterations for the per-site no-op cost measurement
_NULL_ITERS = 20_000


def _best_of(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _null_site_cost() -> float:
    """Seconds per instrumentation site when tracing is disabled.

    One "site" is modelled as the worst disabled case: a no-op span
    entered and exited, plus an ``enabled`` guard — strictly more work
    than the event-only sites pay.
    """
    tracer = NULL_TRACER

    def loop() -> None:
        for _ in range(_NULL_ITERS):
            with tracer.span("site"):
                if tracer.enabled:  # pragma: no cover - never taken
                    raise AssertionError
    return _best_of(loop) / _NULL_ITERS


@register(
    "trace_overhead",
    group="slow",
    repeat=1,
    profile=False,  # this benchmark A/B-times the tracer itself; an
    # ambient enabled tracer would invalidate its disabled-side numbers
    summary="tracer overhead bound (<5% disabled) on the figure corpus",
    emits=("BENCH_obs.json",),
)
def bench_trace_overhead() -> dict:
    site_cost = _null_site_cost()
    figures = {}
    for name, source in FIGURE_CORPUS.items():
        disabled = _best_of(lambda: optimize_source(source))
        probe = Tracer()
        optimize_source(source, trace=probe)
        sites = len(probe.records)
        disabled_overhead = sites * site_cost / disabled
        assert disabled_overhead < 0.05, (
            f"{name}: disabled-tracer overhead {disabled_overhead:.2%}"
        )
        figures[name] = {
            "disabled_ms": round(disabled * 1e3, 6),
            "sites": sites,
            "disabled_overhead_pct": round(disabled_overhead * 100, 4),
        }
    emit_bench_obs()
    return {"site_cost_ns": round(site_cost * 1e9, 2), "figures": figures}


def test_trace_overhead_corpus():
    site_cost = _null_site_cost()
    rows = []
    for name, source in FIGURE_CORPUS.items():
        disabled = _best_of(lambda: optimize_source(source))

        def enabled_run() -> None:
            optimize_source(source, trace=Tracer())
        enabled = _best_of(enabled_run)

        probe = Tracer()
        optimize_source(source, trace=probe)
        sites = len(probe.records)

        disabled_overhead = sites * site_cost / disabled
        enabled_overhead = (enabled - disabled) / disabled
        rows.append(
            (
                name,
                f"{disabled * 1e3:.3f}",
                f"{enabled * 1e3:.3f}",
                sites,
                f"{disabled_overhead * 100:.3f}%",
                f"{enabled_overhead * 100:+.1f}%",
            )
        )
        # The acceptance bar: tracing disabled must stay under 5% of the
        # pipeline's wall time on every figure program.
        assert disabled_overhead < 0.05, (
            f"{name}: disabled-tracer overhead {disabled_overhead:.2%} "
            f"({sites} sites x {site_cost * 1e9:.0f}ns vs {disabled * 1e3:.3f}ms)"
        )

    print_table(
        "tracer overhead (optimize_source, best of "
        f"{_REPEATS}; site cost {site_cost * 1e9:.0f}ns)",
        ["figure", "off_ms", "on_ms", "sites", "off_overhead", "on_overhead"],
        rows,
    )


def test_emit_bench_obs():
    """Refresh BENCH_obs.json from traced runs of the figure corpus."""
    payload = emit_bench_obs()
    assert payload["figures"], "no figures observed"
    for obs in payload["figures"]:
        assert "pass:constprop" in obs["phase_wall_ms"]
        assert obs["form_metrics"]["statements"] > 0
