"""FIG3 — Figure 3: CSSA form (3a) vs CSSAME form (3b).

Regenerates the figure's headline numbers for the running example: five
π terms with 11 total arguments under CSSA, one π term with 2 arguments
under CSSAME — and times both constructions.
"""

from repro.bench import register

from benchmarks.common import FIGURE2_SOURCE, form_metrics, print_table


@register(
    "figure3",
    group="fast",
    summary="Figure 3: CSSA vs CSSAME π reduction on the running example",
)
def bench_figure3() -> dict:
    cssa = form_metrics(FIGURE2_SOURCE, prune=False)
    cssame = form_metrics(FIGURE2_SOURCE, prune=True)
    assert (cssa["pi_terms"], cssame["pi_terms"]) == (5, 1)
    assert (cssa["pi_args"], cssame["pi_args"]) == (11, 2)
    assert cssame["pis_deleted"] == 4 and cssame["args_removed"] == 5
    return {
        "cssa": {k: cssa[k] for k in ("pi_terms", "pi_args", "phi_terms")},
        "cssame": {k: cssame[k] for k in ("pi_terms", "pi_args", "phi_terms")},
    }


def test_figure3_pi_reduction(benchmark):
    cssa = form_metrics(FIGURE2_SOURCE, prune=False)
    cssame = benchmark(form_metrics, FIGURE2_SOURCE, True)

    print_table(
        "Figure 3: CSSA vs CSSAME on the running example",
        ["metric", "CSSA (3a)", "CSSAME (3b)"],
        [
            ("pi terms", cssa["pi_terms"], cssame["pi_terms"]),
            ("pi arguments", cssa["pi_args"], cssame["pi_args"]),
            ("phi terms", cssa["phi_terms"], cssame["phi_terms"]),
        ],
    )
    assert (cssa["pi_terms"], cssame["pi_terms"]) == (5, 1)
    assert (cssa["pi_args"], cssame["pi_args"]) == (11, 2)
    assert cssa["phi_terms"] == cssame["phi_terms"] == 2
    assert cssame["pis_deleted"] == 4
    assert cssame["args_removed"] == 5
