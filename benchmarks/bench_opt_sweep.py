"""SWEEP-OPT — the optimization benefit of CSSAME across workloads.

Extends Figures 4–5 from one example to the named workload families:
constants proven, statements killed by PDCE and statements moved by
LICM, with plain CSSA as the baseline form.
"""

import pytest

from repro.bench import register
from repro.ir.structured import count_statements
from repro.opt.pipeline import optimize
from repro.synth import (
    bank_accounts,
    licm_padding,
    lock_density_sweep,
    paper_figure1,
    paper_figure2,
    shared_counters,
)

from benchmarks.common import print_table

WORKLOADS = {
    "figure1": paper_figure1,
    "figure2": paper_figure2,
    "bank": lambda: bank_accounts(3, 3),
    "counters": lambda: shared_counters(3, 2, 3),
    "licm_padding": lambda: licm_padding(2, 4),
    "half_locked": lambda: lock_density_sweep(0.5, n_stmts=6),
}


def run(name: str, use_mutex: bool):
    program = WORKLOADS[name]()
    report = optimize(program, use_mutex=use_mutex, fold_output_uses=False)
    return {
        "constants": len(report.constprop.constants),
        "killed": report.pdce.total_removed,
        "moved": report.licm.total_moved,
        "stmts": report.statement_count(),
    }


@register(
    "opt_sweep",
    group="fast",
    summary="CSSA vs CSSAME pipeline benefit across workload families",
)
def bench_opt_sweep() -> dict:
    per_workload = {}
    total_cssa = total_cssame = 0
    for name in sorted(WORKLOADS):
        cssa = run(name, use_mutex=False)
        cssame = run(name, use_mutex=True)
        assert cssame["stmts"] <= cssa["stmts"]
        assert cssame["constants"] >= cssa["constants"]
        total_cssa += cssa["stmts"]
        total_cssame += cssame["stmts"]
        per_workload[name] = {"cssa": cssa, "cssame": cssame}
    assert total_cssame < total_cssa
    return {
        "workloads": per_workload,
        "total_stmts": {"cssa": total_cssa, "cssame": total_cssame},
    }


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_optimization(benchmark, name):
    cssa = run(name, use_mutex=False)
    cssame = benchmark(run, name, True)
    print_table(
        f"workload {name}: CSSA vs CSSAME pipeline",
        ["metric", "CSSA", "CSSAME"],
        [(k, cssa[k], cssame[k]) for k in ("constants", "killed", "moved", "stmts")],
    )
    # Shape claim: mutual exclusion knowledge never hurts and usually
    # helps — CSSAME's pipeline output is never larger.
    assert cssame["stmts"] <= cssa["stmts"]
    assert cssame["constants"] >= cssa["constants"]


def test_aggregate_benefit(benchmark):
    rows = []
    total_cssa = total_cssame = 0
    for name in sorted(WORKLOADS):
        cssa = run(name, use_mutex=False)
        cssame = run(name, use_mutex=True)
        total_cssa += cssa["stmts"]
        total_cssame += cssame["stmts"]
        rows.append((name, cssa["stmts"], cssame["stmts"]))
    benchmark(run, "figure2", True)
    print_table(
        "final statement counts per workload",
        ["workload", "CSSA", "CSSAME"],
        rows + [("TOTAL", total_cssa, total_cssame)],
    )
    assert total_cssame < total_cssa
