"""FIG2 — Figure 2: the Parallel Flow Graph of the running example.

Regenerates the PFG inventory the figure draws: parallel basic blocks,
dedicated Lock/Unlock nodes, cobegin/coend nodes, conflict edges between
the threads' accesses and mutex edges between the Lock/Unlock pairs —
and times PFG construction.
"""

from repro.api import analyze_source
from repro.bench import register
from repro.cfg.dot import to_dot
from repro.report import pfg_inventory

from benchmarks.common import FIGURE2_SOURCE, print_table


@register(
    "figure2",
    group="fast",
    summary="Figure 2: PFG inventory and DOT render of the running example",
)
def bench_figure2() -> dict:
    form = analyze_source(FIGURE2_SOURCE, prune=False)
    inv = pfg_inventory(form)
    assert inv["nodes_cobegin"] == 1 and inv["nodes_coend"] == 1
    assert inv["nodes_lock"] == 2 and inv["nodes_unlock"] == 2
    assert inv["edges_mutex"] == 2
    dot = to_dot(form.graph, "Figure 2 PFG")
    assert dot.count("hexagon") == 4
    return {"inventory": {k: v for k, v in sorted(inv.items()) if v}}


def test_figure2_pfg_inventory(benchmark):
    form = benchmark(analyze_source, FIGURE2_SOURCE, False)
    inv = pfg_inventory(form)
    rows = sorted((k, v) for k, v in inv.items() if v)
    print_table("Figure 2: PFG inventory", ["item", "count"], rows)

    assert inv["nodes_cobegin"] == 1 and inv["nodes_coend"] == 1
    assert inv["nodes_lock"] == 2 and inv["nodes_unlock"] == 2
    assert inv["edges_mutex"] == 2
    assert {e.var for e in form.graph.conflict_edges} == {"a", "b"}


def test_figure2_dot_render(benchmark):
    form = analyze_source(FIGURE2_SOURCE, prune=False)
    dot = benchmark(to_dot, form.graph, "Figure 2 PFG")
    assert dot.count("hexagon") == 4
    assert "style=dotted" in dot and "style=dashed" in dot
