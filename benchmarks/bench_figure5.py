"""FIG5 — Figure 5: PDCE (5a) and LICM (5b) on the running example.

Regenerates the figure pair: statements removed by parallel dead-code
elimination and statements moved out of mutex bodies by lock-independent
code motion, CSSA vs CSSAME — plus the semantic check that the final
program still has the paper's outcome set.
"""

from repro.bench import register
from repro.opt.pipeline import optimize
from repro.vm.explore import explore

from benchmarks.common import FIGURE2_SOURCE, print_table, program_of


@register(
    "figure5",
    group="fast",
    summary="Figure 5: PDCE + LICM payoff and outcome-set preservation",
)
def bench_figure5() -> dict:
    cssa = run(use_mutex=False)
    cssame = run(use_mutex=True)
    assert cssame.pdce.total_removed > cssa.pdce.total_removed
    assert cssame.licm.total_moved >= 2
    assert cssame.statement_count() < cssa.statement_count()
    res = explore(cssame.program)
    assert res.outcomes == {
        (("print", (13,)), ("print", (6,))),
        (("print", (13,)), ("print", (14,))),
    }
    return {
        "pdce_removed": {
            "cssa": cssa.pdce.total_removed,
            "cssame": cssame.pdce.total_removed,
        },
        "licm_moved": {
            "cssa": cssa.licm.total_moved,
            "cssame": cssame.licm.total_moved,
        },
        "final_stmts": {
            "cssa": cssa.statement_count(),
            "cssame": cssame.statement_count(),
        },
        "behaviours": len(res.outcomes),
    }


def run(use_mutex: bool):
    program = program_of(FIGURE2_SOURCE)
    report = optimize(program, use_mutex=use_mutex, fold_output_uses=False)
    return report


def test_figure5_pdce_licm(benchmark):
    cssa = run(use_mutex=False)
    cssame = benchmark(run, True)

    print_table(
        "Figure 5: PDCE + LICM",
        ["metric", "CSSA", "CSSAME"],
        [
            ("PDCE statements removed", cssa.pdce.total_removed,
             cssame.pdce.total_removed),
            ("LICM statements moved", cssa.licm.total_moved,
             cssame.licm.total_moved),
            ("final statement count", cssa.statement_count(),
             cssame.statement_count()),
        ],
    )
    # Paper 5a: the dead defs of `a` die only once CSSAME removed the π
    # dependencies; 5b: x0/y0 leave the mutex bodies.
    assert cssame.pdce.total_removed > cssa.pdce.total_removed
    assert cssame.licm.total_moved >= 2
    assert cssame.statement_count() < cssa.statement_count()


def test_figure5_semantics(benchmark):
    report = run(use_mutex=True)
    res = benchmark(explore, report.program)
    assert res.outcomes == {
        (("print", (13,)), ("print", (6,))),
        (("print", (13,)), ("print", (14,))),
    }
