"""VERIF — the execution substrate and what LICM buys at runtime.

* VM throughput and exhaustive-explorer cost on the paper program;
* the LICM payoff measured dynamically: average steps a lock is held
  and average steps threads sit blocked, before vs after optimization.
"""

from repro.bench import register
from repro.ir.structured import clone_program
from repro.opt.pipeline import optimize
from repro.report import critical_section_profile
from repro.synth import licm_loop_padding, licm_padding
from repro.verify import exhaustive_equivalence
from repro.vm.explore import explore
from repro.vm.machine import run_random

from benchmarks.common import FIGURE2_SOURCE, print_table, program_of


@register(
    "vm",
    group="slow",
    repeat=3,
    summary="VM throughput, explorer cost, equivalence check on Figure 2",
)
def bench_vm() -> dict:
    program = program_of(FIGURE2_SOURCE)
    ex = run_random(program, seed=1)
    assert ex.printed[0] == (13,)
    res = explore(program)
    assert res.complete and len(res.outcomes) == 2
    opt_prog = program_of(FIGURE2_SOURCE)
    report = optimize(opt_prog)
    eq = exhaustive_equivalence(report.baseline, opt_prog)
    assert eq.equal
    return {
        "vm_steps": ex.steps,
        "explorer_states": res.states,
        "behaviours": len(res.outcomes),
        "equivalent": eq.equal,
    }


@register(
    "licm_runtime",
    group="slow",
    repeat=2,
    summary="LICM runtime payoff: lock-held and blocked steps drop",
)
def bench_licm_runtime() -> dict:
    payoff = {}
    for label, before_prog in (
        ("straightline", licm_padding(n_threads=2, n_private_stmts=6)),
        ("whole_loop", licm_loop_padding(n_threads=2, loop_iters=4)),
    ):
        after_prog = clone_program(before_prog)
        report = optimize(after_prog, fold_output_uses=False)
        assert report.licm.total_moved > 0
        before = critical_section_profile(before_prog, seeds=range(10))
        after = critical_section_profile(after_prog, seeds=range(10))
        assert after["avg_lock_held_steps"] < before["avg_lock_held_steps"]
        payoff[label] = {
            "moved": report.licm.total_moved,
            "lock_held_before": before["avg_lock_held_steps"],
            "lock_held_after": after["avg_lock_held_steps"],
        }
    return payoff


def test_vm_throughput(benchmark):
    program = program_of(FIGURE2_SOURCE)

    def run():
        return run_random(program, seed=1)

    ex = benchmark(run)
    assert ex.printed[0] == (13,)


def test_explorer_cost(benchmark):
    program = program_of(FIGURE2_SOURCE)
    res = benchmark(explore, program)
    assert res.complete
    assert len(res.outcomes) == 2


def test_equivalence_check_cost(benchmark):
    program = program_of(FIGURE2_SOURCE)
    report = optimize(program)

    def run():
        return exhaustive_equivalence(report.baseline, program)

    res = benchmark(run)
    assert res.equal


def test_licm_lock_hold_reduction(benchmark):
    before_prog = licm_padding(n_threads=2, n_private_stmts=6)
    after_prog = clone_program(before_prog)
    report = optimize(after_prog, fold_output_uses=False)
    assert report.licm.total_moved > 0

    before = critical_section_profile(before_prog, seeds=range(10))
    after = benchmark(critical_section_profile, after_prog, range(10))

    print_table(
        "LICM runtime payoff (avg per run, licm_padding workload)",
        ["metric", "before", "after"],
        [
            ("lock held steps", before["avg_lock_held_steps"],
             after["avg_lock_held_steps"]),
            ("blocked steps", before["avg_lock_blocked_steps"],
             after["avg_lock_blocked_steps"]),
            ("total steps", before["avg_steps"], after["avg_steps"]),
        ],
    )
    assert after["avg_lock_held_steps"] < before["avg_lock_held_steps"]


def test_licm_whole_loop_payoff(benchmark):
    """Region motion: a lock-independent summation loop leaves the
    critical section entirely (the paper's 'whole loop' remark)."""
    before_prog = licm_loop_padding(n_threads=2, loop_iters=4)
    after_prog = clone_program(before_prog)
    report = optimize(after_prog, fold_output_uses=False)
    assert report.licm.total_moved >= 2  # one loop per thread

    before = critical_section_profile(before_prog, seeds=range(10))
    after = benchmark(critical_section_profile, after_prog, range(10))
    print_table(
        "LICM whole-loop motion payoff (licm_loop_padding)",
        ["metric", "before", "after"],
        [
            ("lock held steps", before["avg_lock_held_steps"],
             after["avg_lock_held_steps"]),
            ("blocked steps", before["avg_lock_blocked_steps"],
             after["avg_lock_blocked_steps"]),
        ],
    )
    assert after["avg_lock_held_steps"] < before["avg_lock_held_steps"]
