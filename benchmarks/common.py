"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or a sweep that
quantifies a claim the paper makes qualitatively).  Absolute timings are
ours; the *shape* — which form wins, by how much, where the effect grows
— is what EXPERIMENTS.md compares against the paper.
"""

from __future__ import annotations

from repro.cssame import build_cssame
from repro.ir.lower import lower_program
from repro.ir.structured import ProgramIR, clone_program
from repro.lang.parser import parse
from repro.report import measure_form

FIGURE2_SOURCE = """
a = 0;
b = 0;
cobegin
T0: begin
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) {
        a = a + b;
    }
    x = a;
    unlock(L);
end
T1: begin
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
end
coend
print(x);
print(y);
"""

FIGURE1_SOURCE = """
a = 1;
b = 2;
cobegin
T0: begin
    lock(L);
    a = a + b;
    unlock(L);
end
T1: begin
    f(a);
    lock(L);
    a = 3;
    b = b + g(a);
    unlock(L);
end
coend
print(a, b);
"""


def program_of(source: str) -> ProgramIR:
    return lower_program(parse(source))


def form_metrics(source: str, prune: bool) -> dict:
    program = program_of(source)
    form = build_cssame(program, prune=prune)
    metrics = measure_form(program).as_dict()
    if form.rewrite_stats is not None:
        metrics["args_removed"] = form.rewrite_stats.args_removed
        metrics["pis_deleted"] = form.rewrite_stats.pis_deleted
    return metrics


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render a paper-style table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
