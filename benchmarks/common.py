"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or a sweep that
quantifies a claim the paper makes qualitatively).  Absolute timings are
ours; the *shape* — which form wins, by how much, where the effect grows
— is what EXPERIMENTS.md compares against the paper.
"""

from __future__ import annotations

import json
import os

from repro.cssame import build_cssame
from repro.ir.lower import lower_program
from repro.ir.structured import ProgramIR, clone_program
from repro.lang.parser import parse
from repro.obs.trace import Tracer
from repro.report import measure_form

FIGURE2_SOURCE = """
a = 0;
b = 0;
cobegin
T0: begin
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) {
        a = a + b;
    }
    x = a;
    unlock(L);
end
T1: begin
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
end
coend
print(x);
print(y);
"""

FIGURE1_SOURCE = """
a = 1;
b = 2;
cobegin
T0: begin
    lock(L);
    a = a + b;
    unlock(L);
end
T1: begin
    f(a);
    lock(L);
    a = 3;
    b = b + g(a);
    unlock(L);
end
coend
print(a, b);
"""


def program_of(source: str) -> ProgramIR:
    return lower_program(parse(source))


def form_metrics(source: str, prune: bool) -> dict:
    program = program_of(source)
    form = build_cssame(program, prune=prune)
    metrics = measure_form(program).as_dict()
    if form.rewrite_stats is not None:
        metrics["args_removed"] = form.rewrite_stats.args_removed
        metrics["pis_deleted"] = form.rewrite_stats.pis_deleted
    return metrics


#: the programs behind the paper's figures (Figures 3-5 rework the
#: Figure 2 program, so two sources cover the whole corpus)
FIGURE_CORPUS: dict[str, str] = {
    "figure1": FIGURE1_SOURCE,
    "figure2-5": FIGURE2_SOURCE,
}

#: default output path: repo root, next to EXPERIMENTS.md
BENCH_OBS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs.json",
)


def traced_figure_observation(name: str, source: str) -> dict:
    """Run the full pipeline on one figure under an enabled tracer and
    distill the machine-readable observation: per-phase wall time (from
    the tracer's spans — the same numbers ``repro stats`` prints),
    FormMetrics of the optimized program, and the A.3 decision census.
    """
    from repro.api import optimize_source

    tracer = Tracer()
    report = optimize_source(source, trace=tracer)
    phases = {
        span.name: round(span.duration * 1e3, 6)
        for span in tracer.spans()
    }
    observation = {
        "figure": name,
        "phase_wall_ms": phases,
        "form_metrics": measure_form(report.program).as_dict(),
        "events": {
            kind: len(tracer.events_of_kind(kind))
            for kind in ("mutex-body", "pi-arg-removed", "pi-deleted")
        },
        "counters": tracer.metrics.as_dict()["counters"],
    }
    stats = report.form.rewrite_stats
    if stats is not None:
        observation["rewrite"] = {
            "args_removed": stats.args_removed,
            "pis_deleted": stats.pis_deleted,
        }
    return observation


def emit_bench_obs(path: str = BENCH_OBS_PATH) -> dict:
    """Write ``BENCH_obs.json``: one traced observation per figure.

    This is the benchmark trajectory EXPERIMENTS.md points at — every
    number in it flows through the :mod:`repro.obs` tracer rather than
    ad-hoc ``perf_counter`` calls in each benchmark.
    """
    payload = {
        "schema": "repro.obs/bench-obs/v1",
        "figures": [
            traced_figure_observation(name, source)
            for name, source in FIGURE_CORPUS.items()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render a paper-style table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
