"""SWEEP-PI — quantifying the paper's core claim.

"Understanding mutual exclusion ... allows the compiler to reduce the
number of data dependencies that need to be considered."  The paper
shows this on one example; this sweep measures it across a family of
programs whose fraction of shared accesses under the lock varies from
0% to 100%: the π-argument reduction achieved by Algorithm A.3 grows
with lock coverage.
"""

import pytest

from repro.bench import register
from repro.cssame import build_cssame
from repro.ir.structured import clone_program
from repro.report import measure_form
from repro.synth import lock_density_sweep

from benchmarks.common import print_table

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def sweep_row(fraction: float) -> tuple:
    base = lock_density_sweep(fraction, n_threads=2, n_stmts=8)
    cssa_prog = clone_program(base)
    build_cssame(cssa_prog, prune=False)
    cssa = measure_form(cssa_prog)

    cssame_prog = clone_program(base)
    build_cssame(cssame_prog, prune=True)
    cssame = measure_form(cssame_prog)

    reduction = (
        0.0
        if cssa.pi_args == 0
        else 100.0 * (cssa.pi_args - cssame.pi_args) / cssa.pi_args
    )
    return fraction, cssa.pi_args, cssame.pi_args, f"{reduction:.0f}%"


@register(
    "pi_sweep",
    group="fast",
    summary="π-argument reduction vs lock density and thread count",
)
def bench_pi_sweep() -> dict:
    rows = [sweep_row(f) for f in FRACTIONS]
    reductions = [(r[1] - r[2]) / r[1] if r[1] else 0.0 for r in rows]
    assert reductions[0] == 0.0
    assert all(b >= a - 1e-9 for a, b in zip(reductions, reductions[1:]))
    assert reductions[-1] > 0.5
    threads = {}
    for n in (2, 3, 4):
        base = lock_density_sweep(0.75, n_threads=n, n_stmts=6)
        stats = build_cssame(base, prune=True).rewrite_stats
        assert stats.args_removed > 0
        threads[str(n)] = {
            "args_before": stats.args_before,
            "args_after": stats.args_after,
            "pis_deleted": stats.pis_deleted,
        }
    return {
        "density": [
            {"fraction": r[0], "cssa_args": r[1], "cssame_args": r[2]}
            for r in rows
        ],
        "threads": threads,
    }


def test_pi_reduction_vs_lock_density(benchmark):
    rows = [sweep_row(f) for f in FRACTIONS]
    benchmark(sweep_row, 0.5)
    print_table(
        "π arguments vs fraction of accesses under the lock",
        ["locked fraction", "CSSA π args", "CSSAME π args", "reduction"],
        rows,
    )
    # Shape: reduction is zero with no locking and grows monotonically
    # (weakly) with lock coverage.
    reductions = [
        (r[1] - r[2]) / r[1] if r[1] else 0.0 for r in rows
    ]
    assert reductions[0] == 0.0
    assert all(b >= a - 1e-9 for a, b in zip(reductions, reductions[1:]))
    assert reductions[-1] > 0.5  # full locking removes most arguments


@pytest.mark.parametrize("threads", [2, 3, 4])
def test_pi_reduction_vs_thread_count(benchmark, threads):
    def build(n):
        base = lock_density_sweep(0.75, n_threads=n, n_stmts=6)
        form = build_cssame(base, prune=True)
        return form.rewrite_stats

    stats = benchmark(build, threads)
    assert stats.args_removed > 0
    print_table(
        f"π pruning at {threads} threads",
        ["metric", "value"],
        [
            ("conflict args before", stats.args_before),
            ("conflict args after", stats.args_after),
            ("π terms deleted", stats.pis_deleted),
        ],
    )
