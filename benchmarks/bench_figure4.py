"""FIG4 — Figure 4: constant propagation under CSSA vs CSSAME.

Regenerates the figure's comparison: constants proven, uses folded and
branches eliminated on the running example, per form — and times the
CSCC pass itself.
"""

from repro.bench import register
from repro.cssame import build_cssame
from repro.opt import concurrent_constant_propagation

from benchmarks.common import FIGURE2_SOURCE, print_table, program_of


@register(
    "figure4",
    group="fast",
    summary="Figure 4: CSCC constant propagation, CSSA vs CSSAME",
)
def bench_figure4() -> dict:
    cssa = run(prune=False)
    cssame = run(prune=True)
    assert len(cssa.constants) == 3
    assert len(cssame.constants) >= 7
    assert cssa.branches_folded == 0 and cssame.branches_folded == 1
    return {
        "constants": {"cssa": len(cssa.constants), "cssame": len(cssame.constants)},
        "branches_folded": {
            "cssa": cssa.branches_folded,
            "cssame": cssame.branches_folded,
        },
    }


def run(prune: bool):
    program = program_of(FIGURE2_SOURCE)
    form = build_cssame(program, prune=prune)
    stats = concurrent_constant_propagation(
        program, form.graph, fold_output_uses=False
    )
    return stats


def test_figure4_constant_propagation(benchmark):
    cssa = run(prune=False)
    cssame = benchmark(run, True)

    print_table(
        "Figure 4: CSCC constant propagation",
        ["metric", "CSSA (4a)", "CSSAME (4b)"],
        [
            ("constants proven", len(cssa.constants), len(cssame.constants)),
            ("branches folded", cssa.branches_folded, cssame.branches_folded),
            ("defs made constant", cssa.defs_made_constant,
             cssame.defs_made_constant),
        ],
    )
    # Paper: no constants propagate through T0 under CSSA; the whole
    # thread folds under CSSAME (a1..x0 plus the initialisations).
    assert len(cssa.constants) == 3        # a0, b0, a1 (literals only)
    assert len(cssame.constants) >= 7      # + b1, a2, a3, x0
    assert cssa.branches_folded == 0
    assert cssame.branches_folded == 1
