"""SERVE — the compile service's performance claims, quantified.

Two numbers justify ``repro.serve``'s existence:

1. **The persistent store beats recomputation.**  A *store-warm*
   request — a fresh process whose memory cache is empty but whose
   disk store holds the artifacts — must be at least 2× faster than a
   *cold* single-shot facade call that recomputes the whole stage
   journey.  This is the restart story: a redeployed server answers
   its first request from disk, not from the parser up.
2. **The wire costs little.**  A warm request through a real TCP
   round trip (client → server → worker pool → back) is measured
   against the same warm request in-process; the overhead is reported
   (and sanity-bounded, loosely — CI machines jitter).

Emits ``BENCH_serve.json`` next to ``EXPERIMENTS.md``.
"""

import json
import os
import tempfile
import threading
from time import perf_counter

from repro import api
from repro.bench import register
from repro.serve.client import ServeClient
from repro.serve.server import CompileServer
from repro.serve.store import PersistentStore
from repro.session import Session

from benchmarks.common import FIGURE_CORPUS, print_table

BENCH_SERVE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve.json",
)

_REPEATS = 5
#: the measured journey: every figure through diagnostics + optimized
_STAGES = ("diagnostics", "optimized")


def _best_of(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _journey(session: Session) -> None:
    for source in FIGURE_CORPUS.values():
        for stage in _STAGES:
            result = api.compile_source(source, stage, session=session)
            assert result.stage == stage


def measure_store(store_dir: str) -> dict:
    """Cold recompute vs store-warm (fresh memory, warm disk)."""

    def cold() -> None:
        _journey(Session())

    cold_s = _best_of(cold)

    # Populate the store once, then measure with a fresh memory tier
    # per run — exactly what a restarted server sees.
    _journey(Session(cache=PersistentStore(store_dir)))

    def store_warm() -> None:
        _journey(Session(cache=PersistentStore(store_dir)))

    warm_s = _best_of(store_warm)
    return {
        "cold_ms": round(cold_s * 1e3, 3),
        "store_warm_ms": round(warm_s * 1e3, 3),
        "speedup": round(cold_s / warm_s, 2),
    }


def measure_wire(store_dir: str) -> dict:
    """Warm in-process vs warm over a real TCP round trip."""
    server = CompileServer(port=0, store_dir=store_dir, jobs=2)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.run, args=(lambda h, p: ready.set(),), daemon=True
    )
    thread.start()
    assert ready.wait(timeout=15)
    try:
        with ServeClient(server.host, server.port, timeout=15.0) as client:
            _journey_wire(client)  # warm the server's memory tier

            def wire() -> None:
                _journey_wire(client)

            wire_s = _best_of(wire)
            ops = client.ops()
    finally:
        server.request_drain_threadsafe()
        thread.join(timeout=15)

    warm_session = Session(cache=PersistentStore(store_dir))
    _journey(warm_session)

    def inproc() -> None:
        _journey(warm_session)

    inproc_s = _best_of(inproc)
    requests = len(FIGURE_CORPUS) * len(_STAGES)
    return {
        "warm_inproc_ms": round(inproc_s * 1e3, 3),
        "warm_wire_ms": round(wire_s * 1e3, 3),
        "wire_overhead_ms_per_request": round(
            (wire_s - inproc_s) * 1e3 / requests, 3
        ),
        "server_stage_p50_ms": {
            stage: stats["p50_ms"] for stage, stats in ops["stages"].items()
        },
        "server_requests_ok": ops["requests"]["ok"],
    }


def _journey_wire(client: ServeClient) -> None:
    for source in FIGURE_CORPUS.values():
        for stage in _STAGES:
            result = client.compile(source, stage)
            assert result.stage == stage


@register(
    "serve",
    group="fast",
    repeat=1,
    summary="compile service: store-warm vs cold latency, wire overhead",
    emits=("BENCH_serve.json",),
)
def bench_serve() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        store = measure_store(os.path.join(tmp, "store"))
        wire = measure_wire(os.path.join(tmp, "store"))

    # The acceptance bar: a store-warm request beats cold recompute 2×.
    assert store["speedup"] >= 2.0, (
        f"persistent store speedup {store['speedup']}x < 2x "
        f"(cold {store['cold_ms']}ms, warm {store['store_warm_ms']}ms)"
    )
    assert wire["server_requests_ok"] >= 2 * len(FIGURE_CORPUS) * len(_STAGES)

    payload = {"store": store, "wire": wire}
    with open(BENCH_SERVE_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def main() -> None:
    payload = bench_serve()
    print_table(
        "persistent store: cold vs store-warm (full figure journey)",
        ["metric", "value"],
        sorted(payload["store"].items()),
    )
    print()
    print_table(
        "wire overhead: warm in-process vs warm over TCP",
        ["metric", "value"],
        [
            (k, v)
            for k, v in sorted(payload["wire"].items())
            if not isinstance(v, dict)
        ],
    )
    print(f"\nwrote {BENCH_SERVE_PATH}")


if __name__ == "__main__":
    main()
