"""EVENTS — guaranteed-ordering π pruning (inherited Lee et al. layer).

Quantifies the event-synchronization refinement the paper's framework
inherits: on producer/consumer pipelines, conflict arguments whose
definition is ordered after the protected use disappear, on top of the
mutex pruning of Algorithm A.3.
"""

import pytest

from repro.bench import register
from repro.cssame import build_cssame
from repro.report import measure_form
from repro.synth import GeneratorConfig, generate_program

from benchmarks.common import print_table, program_of


def _pipeline_source(n_stages: int) -> str:
    """Stage i reads the accumulator, then signals stage i+1 which
    overwrites it — every overwrite is ordered after the earlier reads."""
    lines = ["acc = 1;", "cobegin"]
    for s in range(n_stages):
        lines.append(f"S{s}: begin")
        if s > 0:
            lines.append(f"    wait(step{s});")
        lines.append(f"    r{s} = acc + {s};")
        lines.append(f"    acc = r{s} * 2;")
        lines.append(f"    set(step{s + 1});")
        lines.append("end")
    lines.append("coend")
    lines.append("print(" + ", ".join(f"r{s}" for s in range(n_stages)) + ");")
    return "\n".join(lines)


def _pipeline_pi_args(stages: int, enabled: bool) -> tuple[int, int]:
    program = program_of(_pipeline_source(stages))
    form = build_cssame(program, prune_events=enabled)
    metrics = measure_form(program)
    removed = form.ordering_stats.args_removed if form.ordering_stats else 0
    return metrics.pi_args, removed


@register(
    "events",
    group="fast",
    summary="event-ordering π pruning on pipelines and generated programs",
)
def bench_events() -> dict:
    pipelines = {}
    for stages in (2, 3, 4):
        without, _ = _pipeline_pi_args(stages, enabled=False)
        with_events, removed = _pipeline_pi_args(stages, enabled=True)
        assert removed > 0 and with_events < without
        pipelines[str(stages)] = {
            "without": without,
            "with_events": with_events,
            "removed": removed,
        }
    generated_total = 0
    for seed in range(6):
        program = generate_program(
            GeneratorConfig(
                seed=seed, n_threads=3, stmts_per_thread=4,
                n_shared=2, n_events=2,
            )
        )
        form = build_cssame(program)
        generated_total += form.ordering_stats.args_removed
    assert generated_total > 0
    return {"pipelines": pipelines, "generated_removed": generated_total}


@pytest.mark.parametrize("stages", [2, 3, 4])
def test_event_pruning_on_pipelines(benchmark, stages):
    def run(enabled: bool):
        program = program_of(_pipeline_source(stages))
        form = build_cssame(program, prune_events=enabled)
        metrics = measure_form(program)
        removed = (
            form.ordering_stats.args_removed if form.ordering_stats else 0
        )
        return metrics.pi_args, removed

    without, _ = run(False)
    with_events, removed = benchmark(run, True)
    print_table(
        f"{stages}-stage pipeline: π arguments",
        ["configuration", "π args", "removed by ordering"],
        [
            ("mutex pruning only", without, 0),
            ("+ event ordering", with_events, removed),
        ],
    )
    assert removed > 0
    assert with_events < without


def test_event_pruning_on_generated(benchmark):
    def run():
        total = 0
        for seed in range(6):
            program = generate_program(
                GeneratorConfig(
                    seed=seed, n_threads=3, stmts_per_thread=4,
                    n_shared=2, n_events=2,
                )
            )
            form = build_cssame(program)
            total += form.ordering_stats.args_removed
        return total

    total = benchmark(run)
    print_table(
        "event pruning across 6 generated programs",
        ["metric", "value"],
        [("conflict args removed", total)],
    )
    assert total > 0
