#!/usr/bin/env python
"""Section 7 extensions in action: ``doall`` + barriers.

A two-phase parallel reduction:

* phase 1 — a ``doall`` loop where each iteration computes a partial value
  and publishes it under a lock;
* a ``barrier`` separating the phases inside a cobegin (each worker must
  see every partial before combining);
* phase 2 — workers combine the partials.

Shows the static doall expansion, the optimizer running unchanged over
the expanded code, and the explorer proving the result is schedule
independent.

Run:  python examples/parallel_reduction.py
"""

from repro.api import front_end, listing
from repro.opt.pipeline import optimize
from repro.vm.explore import explore

DOALL_SOURCE = """
sum = 0;
doall i = 1 to 4 {
    private square = 0;
    square = i * i;
    lock(ACC);
    sum = sum + square;
    unlock(ACC);
}
print(sum);
"""

BARRIER_SOURCE = """
p0 = 0; p1 = 0;
cobegin
W0: begin
    p0 = 10 + 2;
    barrier(PHASE);
    r0 = p0 + p1;
end
W1: begin
    p1 = 20 + 3;
    barrier(PHASE);
    r1 = p1 + p0;
end
coend
print(r0, r1);
"""


def main() -> None:
    print("=" * 60)
    print("doall i = 1 to 4 — static expansion")
    print("=" * 60)
    program = front_end(DOALL_SOURCE)
    print(listing(program))

    result = explore(program)
    print(f"explorer: {len(result.outcomes)} behaviour(s): "
          f"{sorted(result.outcomes)}")
    assert result.outcomes == {(("print", (30,)),)}  # 1+4+9+16

    report = optimize(program)
    print("\nafter optimization:")
    print(report.listings["final"])
    assert explore(program).outcomes == {(("print", (30,)),)}

    print("=" * 60)
    print("two-phase computation with a barrier")
    print("=" * 60)
    program = front_end(BARRIER_SOURCE)
    result = explore(program)
    print(f"explorer: {sorted(result.outcomes)}")
    # The barrier guarantees both workers see both partials: 12+23 = 35.
    assert result.outcomes == {(("print", (35, 35)),)}
    print("both workers always compute 35 — the barrier makes the "
          "cross-thread reads deterministic")


if __name__ == "__main__":
    main()
