#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Parses the Figure 2 program, builds its CSSAME form, runs the full
optimization pipeline (constant propagation → parallel DCE → lock
independent code motion), verifies semantic preservation over *every*
schedule, and prints each intermediate listing — reproducing Figures
3b, 4b, 5a and 5b of the paper.

Run:  python examples/quickstart.py
"""

from repro.api import optimize_source
from repro.verify import exhaustive_equivalence

SOURCE = """
a = 0;
b = 0;
cobegin
T0: begin
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) {
        a = a + b;
    }
    x = a;
    unlock(L);
end
T1: begin
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
end
coend
print(x);
print(y);
"""


def main() -> None:
    report = optimize_source(SOURCE, fold_output_uses=False)

    print("=" * 60)
    print("CSSAME form (paper Figure 3b)")
    print("=" * 60)
    print(report.listings["cssame"])

    print("=" * 60)
    print("after concurrent constant propagation (Figure 4b)")
    print("=" * 60)
    print(report.listings["constprop"])

    print("=" * 60)
    print("after parallel dead code elimination (Figure 5a)")
    print("=" * 60)
    print(report.listings["pdce"])

    print("=" * 60)
    print("after lock independent code motion (Figure 5b)")
    print("=" * 60)
    print(report.listings["licm"])

    print("=" * 60)
    print("pass statistics")
    print("=" * 60)
    print(f"  CSSAME:   {report.form.rewrite_stats}")
    print(f"  constprop: {report.constprop}")
    print(f"  PDCE:      {report.pdce}")
    print(f"  LICM:      {report.licm}")

    result = exhaustive_equivalence(report.baseline, report.program)
    print()
    print(
        f"semantic check over every schedule: "
        f"{'EQUAL' if result.equal else 'DIFFERENT'} "
        f"({result.original_count} behaviours)"
    )
    assert result.equal


if __name__ == "__main__":
    main()
