#!/usr/bin/env python
"""Section 6 in action: auditing synchronization structure.

Runs the compiler's diagnostics over a set of programs with planted
synchronization bugs — unmatched lock operations, improperly nested
locks, and shared variables protected by inconsistent locks — and
confirms each report with the exhaustive schedule explorer where
possible (e.g. showing an actual racy outcome pair, or an actual
deadlock schedule for a lock-ordering bug).

Run:  python examples/race_audit.py
"""

from repro.api import diagnose_source, front_end
from repro.vm.explore import explore

PROGRAMS = {
    "clean (paper Figure 2)": """
        a = 0; b = 0;
        cobegin
        T0: begin lock(L); a = 5; b = a + 3; x = a; unlock(L); end
        T1: begin lock(L); a = b + 6; y = a; unlock(L); end
        coend
        print(x); print(y);
    """,
    "forgotten unlock": """
        cobegin
        T0: begin lock(L); v = 1; end
        T1: begin lock(L); v = 2; unlock(L); end
        coend
    """,
    "improper nesting": """
        lock(A); lock(B); x = 1; unlock(A); y = 2; unlock(B);
    """,
    "inconsistent locks": """
        cobegin
        T0: begin lock(A); v = v + 1; unlock(A); end
        T1: begin lock(B); v = v + 1; unlock(B); end
        coend
        print(v);
    """,
    "bare data race": """
        v = 0;
        cobegin
        T0: begin t0 = v; v = t0 + 1; end
        T1: begin t1 = v; v = t1 + 1; end
        coend
        print(v);
    """,
    "lock-order deadlock": """
        cobegin
        T0: begin lock(A); lock(B); x = 1; unlock(B); unlock(A); end
        T1: begin lock(B); lock(A); y = 2; unlock(A); unlock(B); end
        coend
        print(1);
    """,
}


def main() -> None:
    for name, source in PROGRAMS.items():
        print("=" * 64)
        print(name)
        print("=" * 64)
        warnings, races = diagnose_source(source)
        if not warnings and not races:
            print("  static analysis: clean")
        for w in warnings:
            print(f"  warning [{w.kind}]: {w.message}")
        for r in races:
            print(f"  race: {r.message()}")

        result = explore(front_end(source), max_states=100_000)
        if not result.complete:
            print("  (state space too large to explore exhaustively)")
            continue
        finals = {
            o for o in result.outcomes
        }
        print(f"  explorer: {len(finals)} distinct behaviours"
              f"{', CAN DEADLOCK' if result.can_deadlock else ''}")
        if name == "bare data race":
            printed = sorted(
                o[-1][1][0] for o in result.outcomes if o and o[-1][0] == "print"
            )
            print(f"  observed final counter values: {printed} "
                  "(the lost update is real)")
        if name == "lock-order deadlock":
            assert result.can_deadlock


if __name__ == "__main__":
    main()
