#!/usr/bin/env python
"""Case study: a miniature job-queue server, end to end.

A dispatcher enqueues jobs under a queue lock and signals the workers;
two workers drain the queue, keep private bookkeeping inside the
critical section (LICM fodder), and meet at a barrier before a combiner
publishes the result.  The walk-through exercises the whole system:

1. Section 6 diagnostics (clean),
2. static deadlock check (clean),
3. CSSAME construction with mutex + event pruning statistics,
4. the full optimization pipeline,
5. exhaustive verification that the optimized server has exactly the
   original behaviour set,
6. a dynamic before/after lock-contention profile.

Run:  python examples/case_study_server.py
"""

from repro.api import diagnose_source, front_end, listing
from repro.cssame import build_cssame
from repro.ir.structured import clone_program
from repro.opt.pipeline import optimize
from repro.report import critical_section_profile, measure_form
from repro.verify import exhaustive_equivalence
from repro.vm.explore import explore

SERVER = """
queued = 0;
done0 = 0; done1 = 0;
result = 0;
cobegin
dispatcher: begin
    lock(Q);
    queued = 3;
    unlock(Q);
    set(jobs_ready);
end
worker0: begin
    wait(jobs_ready);
    private taken = 0;
    private overhead = 7;
    lock(Q);
    overhead = overhead * 2;
    taken = queued - 1;
    queued = 1;
    unlock(Q);
    done0 = taken + overhead;
    barrier(drained);
end
worker1: begin
    wait(jobs_ready);
    private taken = 0;
    private overhead = 3;
    lock(Q);
    overhead = overhead + 1;
    taken = queued;
    queued = queued - taken;
    unlock(Q);
    done1 = taken + overhead;
    barrier(drained);
end
combiner: begin
    barrier(drained);
    lock(Q);
    result = done0 + done1;
    unlock(Q);
end
coend
print(result, queued);
"""


def main() -> None:
    print("== 1. diagnostics ==")
    warnings, races = diagnose_source(SERVER)
    for w in warnings:
        print(f"  warning: {w.message}")
    for r in races:
        print(f"  race: {r.message()}")
    if not warnings and not races:
        print("  clean: consistent locking, no deadlock risks")

    print("\n== 2. CSSAME construction ==")
    program = front_end(SERVER)
    original = clone_program(program)
    form = build_cssame(program)
    metrics = measure_form(program)
    print(f"  mutex bodies: {len(form.mutex_bodies())}")
    print(f"  A.3 removed {form.rewrite_stats.args_removed} conflict args, "
          f"deleted {form.rewrite_stats.pis_deleted} pi terms")
    print(f"  event ordering removed {form.ordering_stats.args_removed} more")
    print(f"  remaining: {metrics.pi_terms} pi terms, {metrics.phi_terms} phis")

    print("\n== 3. optimization ==")
    baseline = clone_program(program)
    from repro.opt import (
        concurrent_constant_propagation,
        local_value_numbering,
        lock_independent_code_motion,
        parallel_dead_code_elimination,
    )

    cp = concurrent_constant_propagation(program, form.graph)
    vn = local_value_numbering(program)
    dce = parallel_dead_code_elimination(program)
    licm = lock_independent_code_motion(program)
    print(f"  constants: {len(cp.constants)}  reused exprs: "
          f"{vn.expressions_replaced}  removed: {dce.total_removed}  "
          f"moved out of locks: {licm.total_moved}")
    print("\noptimized server:")
    print(listing(program))

    print("== 4. verification over every schedule ==")
    res = exhaustive_equivalence(baseline, program, max_states=400_000)
    print(f"  behaviours: {res.original_count}  equal: {res.equal}  "
          f"complete: {res.complete}")
    assert res.equal and res.complete

    outcomes = explore(program, max_states=400_000)
    finals = sorted(o[-1][1] for o in outcomes.outcomes)
    print(f"  final (result, queued) values: {finals}")

    print("\n== 5. lock contention before/after ==")
    before = critical_section_profile(original, seeds=range(12))
    after = critical_section_profile(program, seeds=range(12))
    print(f"  lock held steps: {before['avg_lock_held_steps']:.1f} -> "
          f"{after['avg_lock_held_steps']:.1f}")
    print(f"  blocked steps:   {before['avg_lock_blocked_steps']:.1f} -> "
          f"{after['avg_lock_blocked_steps']:.1f}")


if __name__ == "__main__":
    main()
