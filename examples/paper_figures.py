#!/usr/bin/env python
"""Regenerate every figure of the paper as text listings.

Prints, side by side with the paper's numbering:

* Figure 1 — the reaching-definition claim, checked by Algorithm A.4;
* Figure 2 — the PFG inventory of the running example;
* Figure 3 — CSSA (3a) vs CSSAME (3b) listings;
* Figure 4 — constant propagation under both forms (4a/4b);
* Figure 5 — PDCE (5a) and LICM (5b) results.

Run:  python examples/paper_figures.py
"""

from repro.api import analyze_source, front_end, optimize_source
from repro.cssame import build_cssame, parallel_reaching_definitions
from repro.ir.printer import format_ir
from repro.ir.stmts import SAssign
from repro.ir.structured import iter_statements
from repro.report import measure_form, pfg_inventory

FIGURE1 = """
a = 1;
b = 2;
cobegin
T0: begin
    lock(L);
    a = a + b;
    unlock(L);
end
T1: begin
    f(a);
    lock(L);
    a = 3;
    b = b + g(a);
    unlock(L);
end
coend
print(a, b);
"""

FIGURE2 = """
a = 0;
b = 0;
cobegin
T0: begin
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) {
        a = a + b;
    }
    x = a;
    unlock(L);
end
T1: begin
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
end
coend
print(x);
print(y);
"""


def banner(text: str) -> None:
    print("\n" + "#" * 66)
    print(f"# {text}")
    print("#" * 66)


def figure1() -> None:
    banner("Figure 1: mutual exclusion reduces data dependencies")
    program = front_end(FIGURE1)
    build_cssame(program)
    info = parallel_reaching_definitions(program)
    g_holder = next(
        s for s, _ in iter_statements(program)
        if isinstance(s, SAssign) and s.target == "b" and s.version == 1
    )
    reaching = set()
    for use in g_holder.uses():
        for d in info.defs(use):
            if getattr(d, "target", None) == "a":
                reaching.add(f"{d.target}{d.version} = {d.value!r}")
    print(format_ir(program))
    print("definitions of 'a' reaching 'b = b + g(a)':")
    for d in sorted(reaching):
        print(f"  {d}")
    print("-> T0's 'a = a + b' is NOT among them (Theorem 2): g(a) always"
          " runs with a = 3.")


def figure2() -> None:
    banner("Figure 2: the Parallel Flow Graph")
    form = analyze_source(FIGURE2, prune=False)
    for key, value in sorted(pfg_inventory(form).items()):
        if value:
            print(f"  {key:20s} {value}")


def figure3() -> None:
    banner("Figure 3a: CSSA form")
    program = front_end(FIGURE2)
    build_cssame(program, prune=False)
    print(format_ir(program))
    m = measure_form(program)
    print(f"π terms: {m.pi_terms}, π arguments: {m.pi_args}")

    banner("Figure 3b: CSSAME form")
    program = front_end(FIGURE2)
    form = build_cssame(program, prune=True)
    print(format_ir(program))
    m = measure_form(program)
    print(f"π terms: {m.pi_terms}, π arguments: {m.pi_args} "
          f"(Algorithm A.3 removed {form.rewrite_stats.args_removed} "
          f"arguments and deleted {form.rewrite_stats.pis_deleted} π terms)")


def figures4and5() -> None:
    cssa = optimize_source(FIGURE2, use_mutex=False, fold_output_uses=False)
    cssame = optimize_source(FIGURE2, use_mutex=True, fold_output_uses=False)

    banner("Figure 4a: constant propagation with CSSA")
    print(cssa.listings["constprop"])
    banner("Figure 4b: constant propagation with CSSAME")
    print(cssame.listings["constprop"])
    banner("Figure 5a: after parallel dead code elimination")
    print(cssame.listings["pdce"])
    banner("Figure 5b: after lock independent code motion")
    print(cssame.listings["licm"])


def main() -> None:
    figure1()
    figure2()
    figure3()
    figures4and5()


if __name__ == "__main__":
    main()
