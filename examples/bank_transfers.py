#!/usr/bin/env python
"""A realistic lock-heavy workload: concurrent bank transfers.

Several teller threads transfer money between two accounts under one
bank lock.  Each critical section also carries thread-private
bookkeeping (fees, running totals) — exactly the lock-independent code
the paper's LICM targets.

The example shows:

1. the optimizer shrinking the critical sections,
2. the dynamic payoff measured with the VM's lock instrumentation
   (steps the lock is held, steps tellers sit blocked),
3. the money-conservation invariant surviving optimization.

Run:  python examples/bank_transfers.py
"""

from repro.api import front_end, listing
from repro.ir.structured import clone_program
from repro.opt.pipeline import optimize
from repro.report import critical_section_profile
from repro.vm.machine import run_random


def bank_source(n_threads: int = 3, n_transfers: int = 3) -> str:
    lines = ["balance0 = 100;", "balance1 = 100;", "cobegin"]
    for t in range(n_threads):
        lines.append(f"T{t}: begin")
        lines.append(f"    private fee = {t + 1};")
        lines.append("    private total = 0;")
        for k in range(n_transfers):
            amount = (t * 7 + k * 3) % 11 + 1
            lines += [
                "    lock(BANK);",
                f"    total = total + {amount};",
                f"    fee = fee + {k};",
                f"    balance0 = balance0 - {amount};",
                f"    balance1 = balance1 + {amount};",
                "    unlock(BANK);",
            ]
        lines.append("end")
    lines.append("coend")
    lines.append("print(balance0, balance1);")
    return "\n".join(lines)


def main() -> None:
    program = front_end(bank_source())
    original = clone_program(program)

    report = optimize(program, fold_output_uses=False)
    print("optimized program:")
    print(listing(program))
    print(f"LICM moved {report.licm.total_moved} statements out of the "
          f"critical sections (hoisted {report.licm.hoisted}, "
          f"sunk {report.licm.sunk})")

    before = critical_section_profile(original, seeds=range(16))
    after = critical_section_profile(program, seeds=range(16))
    print("\ndynamic lock profile (average per run, 16 seeds):")
    print(f"  lock held steps:    {before['avg_lock_held_steps']:.1f} -> "
          f"{after['avg_lock_held_steps']:.1f}")
    print(f"  blocked steps:      {before['avg_lock_blocked_steps']:.1f} -> "
          f"{after['avg_lock_blocked_steps']:.1f}")

    print("\nmoney conservation across random schedules:")
    for seed in range(5):
        ex = run_random(program, seed=seed)
        b0, b1 = ex.printed[-1]
        status = "ok" if b0 + b1 == 200 else "VIOLATED"
        print(f"  seed {seed}: balances {b0:4d} + {b1:4d} = {b0 + b1}  [{status}]")
        assert b0 + b1 == 200


if __name__ == "__main__":
    main()
