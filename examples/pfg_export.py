#!/usr/bin/env python
"""Export Parallel Flow Graphs to Graphviz DOT (the paper used VCG).

Writes ``figure2_pfg.dot`` for the paper's running example plus a DOT
file for a producer/consumer pipeline, and prints the PFG inventory
(node and edge counts per kind) the way Figure 2's legend describes.

Render with:  dot -Tpng figure2_pfg.dot -o figure2_pfg.png

Run:  python examples/pfg_export.py [output-dir]
"""

import sys
from pathlib import Path

from repro.api import analyze_source
from repro.cfg.dot import to_dot
from repro.report import pfg_inventory

FIGURE2 = """
a = 0;
b = 0;
cobegin
T0: begin
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) {
        a = a + b;
    }
    x = a;
    unlock(L);
end
T1: begin
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
end
coend
print(x);
print(y);
"""

PIPELINE = """
data = 0;
cobegin
producer: begin
    lock(Q);
    data = 42;
    unlock(Q);
    set(ready);
end
consumer: begin
    wait(ready);
    lock(Q);
    out = data * 2;
    unlock(Q);
end
coend
print(out);
"""


def export(name: str, source: str, out_dir: Path) -> None:
    form = analyze_source(source, prune=False)
    dot = to_dot(form.graph, title=name)
    path = out_dir / f"{name}.dot"
    path.write_text(dot)
    print(f"wrote {path}")
    inventory = pfg_inventory(form)
    for key, value in sorted(inventory.items()):
        if value:
            print(f"  {key:20s} {value}")
    print()


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    export("figure2_pfg", FIGURE2, out_dir)
    export("pipeline_pfg", PIPELINE, out_dir)


if __name__ == "__main__":
    main()
