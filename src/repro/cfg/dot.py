"""DOT (Graphviz) export of Parallel Flow Graphs.

The paper rendered PFGs with the VCG tool; DOT is today's equivalent.
Edge styling follows Figure 2's legend: solid = control flow, dashed =
conflict edges (labelled with the variable and D/U roles), dotted =
mutex synchronization edges, bold = directed sync edges.
"""

from __future__ import annotations

from repro.cfg.blocks import NodeKind
from repro.cfg.graph import FlowGraph

__all__ = ["to_dot"]

_SHAPES = {
    NodeKind.ENTRY: "oval",
    NodeKind.EXIT: "oval",
    NodeKind.COBEGIN: "trapezium",
    NodeKind.COEND: "invtrapezium",
    NodeKind.LOCK: "hexagon",
    NodeKind.UNLOCK: "hexagon",
    NodeKind.SET: "diamond",
    NodeKind.WAIT: "diamond",
    NodeKind.BARRIER: "doubleoctagon",
    NodeKind.BLOCK: "box",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\l")


def _node_body(graph: FlowGraph, block_id: int) -> str:
    block = graph.blocks[block_id]
    if block.kind is NodeKind.ENTRY:
        return "ENTRY"
    if block.kind is NodeKind.EXIT:
        return "EXIT"
    if block.kind is NodeKind.COBEGIN:
        return "cobegin"
    if block.kind is NodeKind.COEND:
        return "coend"
    lines = [f"B{block.id}"]
    for phi in block.phis:
        lines.append(phi.to_str())
    for stmt in block.stmts:
        lines.append(stmt.to_str())
    return "\\l".join(_escape(line) for line in lines) + "\\l"


def to_dot(graph: FlowGraph, title: str = "PFG") -> str:
    """Render the PFG as a DOT digraph string."""
    out = [f'digraph "{_escape(title)}" {{']
    out.append("  node [fontname=monospace fontsize=10];")
    out.append(f'  label="{_escape(title)}";')
    for block in graph.blocks:
        shape = _SHAPES[block.kind]
        out.append(f'  n{block.id} [shape={shape} label="{_node_body(graph, block.id)}"];')
    for block in graph.blocks:
        for succ in block.succs:
            out.append(f"  n{block.id} -> n{succ};")
    for edge in graph.conflict_edges:
        label = f"{edge.var} ({edge.kind})"
        out.append(
            f'  n{edge.src_block} -> n{edge.dst_block} '
            f'[style=dashed color=red constraint=false label="{_escape(label)}"];'
        )
    for medge in graph.mutex_edges:
        out.append(
            f"  n{medge.lock_block} -> n{medge.unlock_block} "
            f'[style=dotted dir=none color=blue constraint=false '
            f'label="{_escape(medge.lock_name)}"];'
        )
    for sedge in graph.sync_edges:
        out.append(
            f"  n{sedge.set_block} -> n{sedge.wait_block} "
            f'[style=bold color=darkgreen constraint=false '
            f'label="{_escape(sedge.event_name)}"];'
        )
    out.append("}")
    return "\n".join(out) + "\n"
