"""Parallel Flow Graph (PFG) substrate.

The PFG (paper Definition 1) extends a sequential CFG with:

* **parallel basic blocks** — ``cobegin``/``coend`` become dedicated
  nodes; every child thread is a subgraph between them;
* **Lock/Unlock nodes** — each mutual-exclusion operation is its own
  flow-graph node;
* **conflict edges** — directed def→use / def→def edges between
  concurrent accesses to shared variables;
* **mutex synchronization edges** — undirected edges joining Lock and
  Unlock nodes on the same lock variable in concurrent threads;
* **directed synchronization edges** — ``set``/``wait`` pairs.

Dominance and post-dominance (used throughout the paper) are computed on
*control edges only* (Definition 2).
"""

from repro.cfg.blocks import BasicBlock, NodeKind
from repro.cfg.graph import ConflictEdge, FlowGraph, MutexEdge, SyncEdge
from repro.cfg.builder import build_flow_graph
from repro.cfg.dominance import DominatorTree, compute_dominators, compute_postdominators
from repro.cfg.concurrency import may_happen_in_parallel, thread_paths_diverge
from repro.cfg.conflicts import (
    AccessSite,
    add_conflict_edges,
    add_mutex_edges,
    add_sync_edges,
    collect_access_sites,
    shared_variables,
)
from repro.cfg.dot import to_dot

__all__ = [
    "AccessSite",
    "BasicBlock",
    "ConflictEdge",
    "DominatorTree",
    "FlowGraph",
    "MutexEdge",
    "NodeKind",
    "SyncEdge",
    "add_conflict_edges",
    "add_mutex_edges",
    "add_sync_edges",
    "build_flow_graph",
    "collect_access_sites",
    "compute_dominators",
    "compute_postdominators",
    "may_happen_in_parallel",
    "shared_variables",
    "thread_paths_diverge",
    "to_dot",
]
