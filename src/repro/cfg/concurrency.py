"""May-happen-in-parallel (MHP) relation.

Two PFG nodes may execute concurrently iff their cobegin-branch paths
*diverge*: there is some cobegin region that contains both nodes but in
different child threads.  Code before a ``cobegin`` or after the matching
``coend`` is never concurrent with the spawned threads, and two nodes in
the same branch are ordered by control flow.

This structural relation is conservative with respect to event
synchronization: a ``set``/``wait`` pair can order two statically
concurrent nodes, but ignoring that only *adds* conflict edges, never
removes real ones, so every analysis built on MHP stays safe.  (The
paper inherits its event-ordering refinements from Lee et al.; its own
contribution — mutex-based pruning — is implemented in
:mod:`repro.cssame`.)
"""

from __future__ import annotations

from functools import lru_cache

from repro.cfg.blocks import BasicBlock
from repro.cfg.graph import FlowGraph

__all__ = ["may_happen_in_parallel", "thread_paths_diverge", "concurrent_blocks"]


@lru_cache(maxsize=65536)
def thread_paths_diverge(path_a: tuple, path_b: tuple) -> bool:
    """True when the two thread paths put their owners in different
    branches of some common cobegin.

    Memoized: a graph has only a handful of distinct thread paths but
    analyses compare them millions of times.
    """
    if not path_a or not path_b:
        return False
    map_b = dict(path_b)
    for cobegin_uid, branch in path_a:
        other = map_b.get(cobegin_uid)
        if other is not None and other != branch:
            return True
    return False


def may_happen_in_parallel(a: BasicBlock, b: BasicBlock) -> bool:
    """MHP on PFG nodes (structural, cobegin-based)."""
    return thread_paths_diverge(a.thread_path, b.thread_path)


def concurrent_blocks(graph: FlowGraph, block: BasicBlock) -> list[BasicBlock]:
    """All blocks that may happen in parallel with ``block``."""
    return [
        other
        for other in graph.blocks
        if other.id != block.id and may_happen_in_parallel(block, other)
    ]
