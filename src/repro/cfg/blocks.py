"""Parallel basic blocks — the nodes of the PFG."""

from __future__ import annotations

import enum
from typing import Optional

from repro.ir.stmts import IRStmt, Phi

__all__ = ["BasicBlock", "NodeKind", "PhiAnchor"]


class NodeKind(enum.Enum):
    """What a PFG node represents.

    Per paper Definition 1, ``Lock`` and ``Unlock`` operations get their
    own nodes; we give ``set``/``wait`` their own nodes too so directed
    synchronization edges have precise endpoints.
    """

    ENTRY = "entry"
    EXIT = "exit"
    BLOCK = "block"
    COBEGIN = "cobegin"
    COEND = "coend"
    LOCK = "lock"
    UNLOCK = "unlock"
    SET = "set"
    WAIT = "wait"
    BARRIER = "barrier"


class PhiAnchor:
    """Where φ terms of a join block materialize in the structured tree.

    ``kind`` is ``"after"`` (insert after ``region`` in ``body`` — used
    for if-joins and coend nodes) or ``"header"`` (append to
    ``region.header_phis`` — used for loop headers).
    """

    __slots__ = ("kind", "body", "region")

    def __init__(self, kind: str, body: object, region: object) -> None:
        self.kind = kind
        self.body = body
        self.region = region


class BasicBlock:
    """A node of the PFG.

    Attributes
    ----------
    id:
        Dense integer id, index into the graph's block table.
    kind:
        The :class:`NodeKind`.
    stmts:
        Statements in execution order.  A branch (:class:`SBranch`) can
        only be the final statement.  LOCK/UNLOCK/SET/WAIT nodes hold
        exactly their one synchronization statement.
    phis:
        φ terms at the head of the block (conceptually executed before
        ``stmts``).
    preds / succs:
        Control-flow neighbours (block ids).  For a block ending in a
        branch, ``succs[0]`` is the true edge and ``succs[1]`` the false
        edge.
    thread_path:
        Tuple of ``(cobegin_uid, thread_index)`` pairs recording which
        cobegin branches enclose this node; the basis of the
        may-happen-in-parallel relation.
    phi_anchor:
        For join blocks, where φs materialize structurally.
    """

    __slots__ = (
        "id",
        "kind",
        "stmts",
        "phis",
        "preds",
        "succs",
        "thread_path",
        "phi_anchor",
    )

    def __init__(
        self,
        block_id: int,
        kind: NodeKind,
        thread_path: tuple = (),
    ) -> None:
        self.id = block_id
        self.kind = kind
        self.stmts: list[IRStmt] = []
        self.phis: list[Phi] = []
        self.preds: list[int] = []
        self.succs: list[int] = []
        self.thread_path = thread_path
        self.phi_anchor: Optional[PhiAnchor] = None

    @property
    def thread_map(self) -> dict:
        """``thread_path`` as a dict cobegin_uid → thread index."""
        return dict(self.thread_path)

    def label(self) -> str:
        """Short human-readable label for graph dumps."""
        if self.kind is NodeKind.BLOCK:
            if not self.stmts:
                return f"B{self.id} (empty)"
            return f"B{self.id}"
        return f"B{self.id} [{self.kind.value}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label()} stmts={len(self.stmts)}>"
