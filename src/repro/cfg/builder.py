"""Structured IR → Parallel Flow Graph.

The builder walks the structured tree and emits parallel basic blocks:

* every ``lock``/``unlock``/``set``/``wait`` statement becomes its own
  node (paper Definition 1);
* ``cobegin``/``coend`` become dedicated COBEGIN/COEND nodes with one
  subgraph per child thread between them, and the COEND's predecessor
  list is ordered by thread index;
* branch blocks order their successors ``[true, false]``;
* join blocks (if-joins, loop headers, coend nodes) record a
  :class:`~repro.cfg.blocks.PhiAnchor` telling SSA construction where φ
  terms materialize in the structured tree.

The builder accepts programs in any form: φ/π statements already present
in the tree (a program that has been through SSA construction and some
transformations) are placed as ordinary statements, which is exactly what
the position-based analyses need on a rebuild.
"""

from __future__ import annotations

from repro.errors import CFGError
from repro.cfg.blocks import BasicBlock, NodeKind, PhiAnchor
from repro.cfg.graph import FlowGraph
from repro.ir.stmts import IRStmt, SBarrier, SLock, SSetEvent, SUnlock, SWaitEvent
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    WhileRegion,
)

__all__ = ["build_flow_graph"]

_SYNC_KINDS = {
    SLock: NodeKind.LOCK,
    SUnlock: NodeKind.UNLOCK,
    SSetEvent: NodeKind.SET,
    SWaitEvent: NodeKind.WAIT,
    SBarrier: NodeKind.BARRIER,
}


class _Builder:
    def __init__(self) -> None:
        self.graph = FlowGraph()

    def run(self, program: ProgramIR) -> FlowGraph:
        g = self.graph
        entry = g.new_block(NodeKind.ENTRY)
        g.entry_id = entry.id
        last = self._build_body(program.body, entry, ())
        exit_block = g.new_block(NodeKind.EXIT)
        g.exit_id = exit_block.id
        g.add_edge(last.id, exit_block.id)
        g.reindex_statements()
        g.validate()
        return g

    # ------------------------------------------------------------------

    def _ensure_block(self, cur: BasicBlock, thread_path: tuple) -> BasicBlock:
        """Return a BLOCK node statements can be appended to."""
        if cur.kind is NodeKind.BLOCK and not self._is_terminated(cur):
            return cur
        block = self.graph.new_block(NodeKind.BLOCK, thread_path)
        self.graph.add_edge(cur.id, block.id)
        return block

    @staticmethod
    def _is_terminated(block: BasicBlock) -> bool:
        from repro.ir.stmts import SBranch

        return bool(block.stmts) and isinstance(block.stmts[-1], SBranch)

    def _build_body(self, body: Body, cur: BasicBlock, thread_path: tuple) -> BasicBlock:
        for item in body.items:
            if isinstance(item, IRStmt):
                cur = self._build_stmt(item, cur, thread_path)
            elif isinstance(item, IfRegion):
                cur = self._build_if(item, cur, thread_path)
            elif isinstance(item, WhileRegion):
                cur = self._build_while(item, cur, thread_path)
            elif isinstance(item, CobeginRegion):
                cur = self._build_cobegin(item, cur, thread_path)
            else:  # pragma: no cover - defensive
                raise CFGError(f"unknown body item {item!r}")
        return cur

    def _build_stmt(self, stmt: IRStmt, cur: BasicBlock, thread_path: tuple) -> BasicBlock:
        sync_kind = _SYNC_KINDS.get(type(stmt))
        if sync_kind is not None:
            node = self.graph.new_block(sync_kind, thread_path)
            node.stmts.append(stmt)
            self.graph.add_edge(cur.id, node.id)
            return node
        block = self._ensure_block(cur, thread_path)
        block.stmts.append(stmt)
        return block

    def _build_if(self, region: IfRegion, cur: BasicBlock, thread_path: tuple) -> BasicBlock:
        g = self.graph
        branch_block = self._ensure_block(cur, thread_path)
        branch_block.stmts.append(region.branch)
        g.branch_blocks[region.branch.uid] = branch_block.id

        then_entry = g.new_block(NodeKind.BLOCK, thread_path)
        g.add_edge(branch_block.id, then_entry.id)  # succs[0] = true
        then_exit = self._build_body(region.then_body, then_entry, thread_path)

        else_entry = g.new_block(NodeKind.BLOCK, thread_path)
        g.add_edge(branch_block.id, else_entry.id)  # succs[1] = false
        else_exit = self._build_body(region.else_body, else_entry, thread_path)

        join = g.new_block(NodeKind.BLOCK, thread_path)
        g.add_edge(then_exit.id, join.id)
        g.add_edge(else_exit.id, join.id)
        if region.parent is not None:
            join.phi_anchor = PhiAnchor("after", region.parent, region)
        return join

    def _build_while(self, region: WhileRegion, cur: BasicBlock, thread_path: tuple) -> BasicBlock:
        g = self.graph
        header = g.new_block(NodeKind.BLOCK, thread_path)
        g.add_edge(cur.id, header.id)
        header.phi_anchor = PhiAnchor("header", None, region)
        # Pre-existing loop-header φ/π terms (rebuild of an SSA-form
        # program) become ordinary leading statements of the header.
        for stmt in region.header_phis:
            header.stmts.append(stmt)
        header.stmts.append(region.branch)
        g.branch_blocks[region.branch.uid] = header.id

        body_entry = g.new_block(NodeKind.BLOCK, thread_path)
        g.add_edge(header.id, body_entry.id)  # succs[0] = true
        body_exit = self._build_body(region.body, body_entry, thread_path)
        g.add_edge(body_exit.id, header.id)  # back edge

        after = g.new_block(NodeKind.BLOCK, thread_path)
        g.add_edge(header.id, after.id)  # succs[1] = false
        return after

    def _build_cobegin(
        self, region: CobeginRegion, cur: BasicBlock, thread_path: tuple
    ) -> BasicBlock:
        g = self.graph
        cobegin = g.new_block(NodeKind.COBEGIN, thread_path)
        g.add_edge(cur.id, cobegin.id)
        thread_exits = []
        for index, thread in enumerate(region.threads):
            child_path = thread_path + ((region.uid, index),)
            thread_entry = g.new_block(NodeKind.BLOCK, child_path)
            g.add_edge(cobegin.id, thread_entry.id)
            thread_exit = self._build_body(thread.body, thread_entry, child_path)
            thread_exits.append(thread_exit)
        # The COEND node is allocated after the thread subgraphs so that
        # SSA renaming (dominator-tree preorder, ordered by block id)
        # numbers thread definitions before the coend φ terms — matching
        # the paper's source-order version numbering.  Its preds are
        # added in thread order for φ-argument attribution.
        coend = g.new_block(NodeKind.COEND, thread_path)
        for thread_exit in thread_exits:
            g.add_edge(thread_exit.id, coend.id)
        if region.parent is not None:
            coend.phi_anchor = PhiAnchor("after", region.parent, region)
        g.cobegin_nodes[region.uid] = (cobegin.id, coend.id)
        return coend


def build_flow_graph(program: ProgramIR) -> FlowGraph:
    """Build a fresh PFG for ``program`` (control edges only; conflict,
    mutex and sync edges are added by :mod:`repro.cfg.conflicts`)."""
    graph = _Builder().run(program)
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "pfg",
            blocks=len(graph.blocks),
            edges=sum(len(b.succs) for b in graph.blocks),
            statements=sum(len(b.stmts) for b in graph.blocks),
        )
    return graph
