"""Dominators, post-dominators and dominance frontiers.

Uses the Cooper–Harvey–Kennedy iterative algorithm over reverse
postorder.  Per paper Definition 2, dominance is computed on *control
paths only*, which is exactly what the block ``preds``/``succs`` lists
contain (conflict/mutex/sync edges live in separate lists).

Post-dominance is the same computation on the reversed control graph,
rooted at the exit node.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import CFGError
from repro.cfg.graph import FlowGraph

__all__ = ["DominatorTree", "compute_dominators", "compute_postdominators"]


class DominatorTree:
    """An (immediate-)dominator tree with O(1) dominance queries.

    ``idom[b]`` is the immediate dominator of block ``b`` (``None`` for
    the root and for unreachable blocks).  Queries use Euler-interval
    numbering over the tree.
    """

    def __init__(self, root: int, idom: list[Optional[int]]) -> None:
        self.root = root
        self.idom = idom
        n = len(idom)
        self.children: list[list[int]] = [[] for _ in range(n)]
        for block, parent in enumerate(idom):
            if parent is not None and block != root:
                self.children[parent].append(block)
        self._tin = [-1] * n
        self._tout = [-1] * n
        self._number()

    def _number(self) -> None:
        clock = 0
        stack: list[tuple[int, int]] = [(self.root, 0)]
        self._tin[self.root] = clock
        clock += 1
        while stack:
            node, child_idx = stack[-1]
            kids = self.children[node]
            if child_idx < len(kids):
                stack[-1] = (node, child_idx + 1)
                child = kids[child_idx]
                self._tin[child] = clock
                clock += 1
                stack.append((child, 0))
            else:
                self._tout[node] = clock
                clock += 1
                stack.pop()

    def is_reachable(self, block: int) -> bool:
        return self._tin[block] >= 0

    def dominates(self, a: int, b: int) -> bool:
        """True when every path from the root to ``b`` passes through
        ``a`` (reflexive: a block dominates itself)."""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def dominated_by(self, a: int) -> list[int]:
        """All blocks dominated by ``a`` (including ``a``), preorder."""
        out: list[int] = []
        stack = [a]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self.children[node])
        return out

    def walk_preorder(self) -> list[int]:
        return self.dominated_by(self.root)


def _iterative_idoms(
    n_blocks: int,
    root: int,
    succs: Callable[[int], Sequence[int]],
    preds: Callable[[int], Sequence[int]],
) -> list[Optional[int]]:
    """Cooper–Harvey–Kennedy: intersect along RPO until fixpoint."""
    # Reverse postorder from the root following `succs`.
    seen = [False] * n_blocks
    post: list[int] = []
    stack: list[tuple[int, int]] = [(root, 0)]
    seen[root] = True
    while stack:
        node, child_idx = stack[-1]
        nexts = succs(node)
        if child_idx < len(nexts):
            stack[-1] = (node, child_idx + 1)
            succ = nexts[child_idx]
            if not seen[succ]:
                seen[succ] = True
                stack.append((succ, 0))
        else:
            post.append(node)
            stack.pop()
    rpo = list(reversed(post))
    rpo_index = {b: i for i, b in enumerate(rpo)}

    idom: list[Optional[int]] = [None] * n_blocks
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block == root:
                continue
            new_idom: Optional[int] = None
            for pred in preds(block):
                if pred in rpo_index and idom[pred] is not None:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(new_idom, pred)
            if new_idom is not None and idom[block] != new_idom:
                idom[block] = new_idom
                changed = True

    idom[root] = None  # conventional: the root has no idom
    return idom


def compute_dominators(graph: FlowGraph) -> DominatorTree:
    """Dominator tree rooted at the entry node."""
    n = len(graph.blocks)
    idom = _iterative_idoms(
        n,
        graph.entry_id,
        lambda b: graph.blocks[b].succs,
        lambda b: graph.blocks[b].preds,
    )
    return DominatorTree(graph.entry_id, idom)


def compute_postdominators(graph: FlowGraph) -> DominatorTree:
    """Post-dominator tree rooted at the exit node (reversed edges)."""
    n = len(graph.blocks)
    idom = _iterative_idoms(
        n,
        graph.exit_id,
        lambda b: graph.blocks[b].preds,
        lambda b: graph.blocks[b].succs,
    )
    return DominatorTree(graph.exit_id, idom)


def dominance_frontiers(graph: FlowGraph, domtree: DominatorTree) -> list[set[int]]:
    """Cooper's dominance-frontier computation (forward direction)."""
    n = len(graph.blocks)
    frontiers: list[set[int]] = [set() for _ in range(n)]
    for block in graph.blocks:
        if len(block.preds) < 2:
            continue
        target_idom = domtree.idom[block.id]
        if target_idom is None and block.id != domtree.root:
            continue  # unreachable join
        for pred in block.preds:
            runner = pred
            while runner != target_idom and runner is not None:
                if not domtree.is_reachable(runner):
                    break
                frontiers[runner].add(block.id)
                runner = domtree.idom[runner]
    return frontiers


def postdominance_frontiers(graph: FlowGraph, pdomtree: DominatorTree) -> list[set[int]]:
    """Dominance frontiers on the reversed graph.

    ``b ∈ pdf(a)`` means ``a`` is control dependent on ``b`` in the
    classical Ferrante–Ottenstein–Warren sense.
    """
    n = len(graph.blocks)
    frontiers: list[set[int]] = [set() for _ in range(n)]
    for block in graph.blocks:
        preds_rev = block.succs  # predecessors in the reversed graph
        if len(preds_rev) < 2:
            continue
        target_idom = pdomtree.idom[block.id]
        for pred in preds_rev:
            runner = pred
            while runner != target_idom and runner is not None:
                if not pdomtree.is_reachable(runner):
                    break
                frontiers[runner].add(block.id)
                runner = pdomtree.idom[runner]
    return frontiers


def verify_mutex_pair(
    domtree: DominatorTree, pdomtree: DominatorTree, n: int, x: int
) -> bool:
    """Condition 2 of paper Definition 3: ``n DOM x`` and ``x PDOM n``."""
    return domtree.dominates(n, x) and pdomtree.dominates(x, n)


def check_single_exit(graph: FlowGraph) -> None:
    """Sanity check used by tests: every block must reach the exit."""
    pdom = compute_postdominators(graph)
    for block in graph.blocks:
        if not pdom.is_reachable(block.id):
            raise CFGError(f"block B{block.id} cannot reach the exit node")
