"""Shared-variable detection and the non-control PFG edge sets.

*Access sites* are statement-position-precise records of every variable
definition and use in the graph.  From them we derive:

* the set of **shared variables** — accessed by two MHP sites, at least
  one a write;
* **conflict edges** (def→use ``DU`` and write-write ``DD``) between
  concurrent blocks, as drawn in the paper's Figure 2;
* **mutex edges** between ``Lock``/``Unlock`` nodes of the same lock in
  concurrent threads;
* **directed sync edges** from ``set(e)`` to ``wait(e)``.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.blocks import NodeKind
from repro.cfg.concurrency import may_happen_in_parallel
from repro.cfg.graph import ConflictEdge, FlowGraph, MutexEdge, SyncEdge
from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt, Phi, Pi, SAssign

__all__ = [
    "AccessSite",
    "add_conflict_edges",
    "add_mutex_edges",
    "add_sync_edges",
    "collect_access_sites",
    "is_memory_access",
    "shared_variables",
]


def is_memory_access(site: "AccessSite") -> bool:
    """True when the site is a *runtime* memory operation.

    φ terms and π conflict arguments are SSA bookkeeping: they read and
    write nothing when the program runs.  A π's control argument stands
    for the original (rewritten) read, in the same block.  Filtering
    matters both for precision (no phantom unprotected reads at join
    blocks) and for cost: π conflict arguments grow quadratically with
    the def count, and conflict-edge computation is a def × access
    product.
    """
    stmt = site.stmt
    if isinstance(stmt, Phi):
        return False
    if isinstance(stmt, Pi):
        if site.is_def:
            return False  # π temporaries are thread-local
        return site.evar is stmt.control
    return True


class AccessSite:
    """One definition or use of a variable at a precise position.

    ``index`` is the statement's position within its block; φ terms have
    negative indices so they order before ordinary statements.
    ``is_real_def`` distinguishes genuine assignments from φ/π defs —
    π conflict arguments and the theorems of Section 4 only consider
    real definitions.
    """

    __slots__ = ("var", "block_id", "index", "stmt", "is_def", "is_real_def", "evar")

    def __init__(
        self,
        var: str,
        block_id: int,
        index: int,
        stmt: IRStmt,
        is_def: bool,
        is_real_def: bool,
        evar: Optional[EVar],
    ) -> None:
        self.var = var
        self.block_id = block_id
        self.index = index
        self.stmt = stmt
        self.is_def = is_def
        self.is_real_def = is_real_def
        self.evar = evar

    def __repr__(self) -> str:  # pragma: no cover
        role = "def" if self.is_def else "use"
        return f"AccessSite({self.var}, B{self.block_id}@{self.index}, {role})"


def collect_access_sites(graph: FlowGraph) -> dict[str, list[AccessSite]]:
    """Every access site in the graph, grouped by base variable name."""
    sites: dict[str, list[AccessSite]] = {}

    def add(site: AccessSite) -> None:
        sites.setdefault(site.var, []).append(site)

    for block in graph.blocks:
        nphis = len(block.phis)
        for i, phi in enumerate(block.phis):
            index = i - nphis
            add(AccessSite(phi.target, block.id, index, phi, True, False, None))
            for arg in phi.args:
                add(AccessSite(arg.var.name, block.id, index, phi, False, False, arg.var))
        for i, stmt in enumerate(block.stmts):
            target = stmt.def_name()
            if target is not None:
                is_real = isinstance(stmt, SAssign)
                add(AccessSite(target, block.id, i, stmt, True, is_real, None))
            for var in stmt.uses():
                add(AccessSite(var.name, block.id, i, stmt, False, False, var))
    return sites


def shared_variables(
    graph: FlowGraph,
    sites: Optional[dict[str, list[AccessSite]]] = None,
) -> set[str]:
    """Variables with two MHP accesses, at least one of them a write."""
    if sites is None:
        sites = collect_access_sites(graph)
    shared: set[str] = set()
    for var, all_accesses in sites.items():
        def_blocks: set[int] = set()
        access_blocks: set[int] = set()
        for s in all_accesses:
            if not is_memory_access(s):
                continue
            if s.is_real_def:
                def_blocks.add(s.block_id)
            access_blocks.add(s.block_id)
        if not def_blocks:
            continue
        found = False
        for d_id in def_blocks:
            d_block = graph.blocks[d_id]
            for a_id in access_blocks:
                if may_happen_in_parallel(d_block, graph.blocks[a_id]):
                    found = True
                    break
            if found:
                break
        if found:
            shared.add(var)
    return shared


def add_conflict_edges(
    graph: FlowGraph,
    sites: Optional[dict[str, list[AccessSite]]] = None,
) -> list[ConflictEdge]:
    """Populate ``graph.conflict_edges`` (block granularity, deduped)."""
    if sites is None:
        sites = collect_access_sites(graph)
    edges: list[ConflictEdge] = []
    for var, all_accesses in sites.items():
        # Edges are block-granular, so collapse sites to block-id sets
        # first — the def × access product is then bounded by the block
        # count, not the (much larger) site count.
        def_blocks: set[int] = set()
        use_blocks: set[int] = set()
        for s in all_accesses:
            if not is_memory_access(s):
                continue
            if s.is_real_def:
                def_blocks.add(s.block_id)
            elif not s.is_def:
                use_blocks.add(s.block_id)
        if not def_blocks:
            continue
        for d_id in sorted(def_blocks):
            d_block = graph.blocks[d_id]
            for u_id in sorted(use_blocks):
                if may_happen_in_parallel(d_block, graph.blocks[u_id]):
                    edges.append(ConflictEdge(d_id, u_id, var, "DU"))
            for d2_id in sorted(def_blocks):
                if d2_id <= d_id:
                    continue  # emit write-write pairs once
                if may_happen_in_parallel(d_block, graph.blocks[d2_id]):
                    edges.append(ConflictEdge(d_id, d2_id, var, "DD"))
    graph.conflict_edges = edges
    return graph.conflict_edges


def add_mutex_edges(graph: FlowGraph) -> list[MutexEdge]:
    """Undirected mutex edges between concurrent Lock/Unlock nodes that
    operate on the same lock variable (paper Definition 1)."""
    locks = graph.nodes_of_kind(NodeKind.LOCK)
    unlocks = graph.nodes_of_kind(NodeKind.UNLOCK)
    edges: list[MutexEdge] = []
    for ln in locks:
        lock_name = ln.stmts[0].lock_name  # type: ignore[attr-defined]
        for un in unlocks:
            if un.stmts[0].lock_name != lock_name:  # type: ignore[attr-defined]
                continue
            if may_happen_in_parallel(ln, un):
                edges.append(MutexEdge(ln.id, un.id, lock_name))
    graph.mutex_edges = edges
    return edges


def add_sync_edges(graph: FlowGraph) -> list[SyncEdge]:
    """Directed sync edges from every ``set(e)`` to every concurrent
    ``wait(e)``."""
    sets = graph.nodes_of_kind(NodeKind.SET)
    waits = graph.nodes_of_kind(NodeKind.WAIT)
    edges: list[SyncEdge] = []
    for sn in sets:
        event = sn.stmts[0].event_name  # type: ignore[attr-defined]
        for wn in waits:
            if wn.stmts[0].event_name != event:  # type: ignore[attr-defined]
                continue
            if may_happen_in_parallel(sn, wn):
                edges.append(SyncEdge(sn.id, wn.id, event))
    graph.sync_edges = edges
    return edges
