"""The Parallel Flow Graph container.

Holds the block table, the typed non-control edge sets (conflict, mutex,
directed sync) and a statement-location index used by position-sensitive
analyses (mutex-body exposure, LICM).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CFGError
from repro.cfg.blocks import BasicBlock, NodeKind
from repro.ir.stmts import IRStmt

__all__ = ["ConflictEdge", "FlowGraph", "MutexEdge", "SyncEdge"]


class ConflictEdge:
    """A directed conflict edge between concurrent accesses (Def. 1).

    ``kind`` labels the memory operations at each end, as in the paper's
    figures: ``"DU"`` (def reaches use), ``"DD"`` (write-write) or
    ``"UD"`` (use before overwrite).
    """

    __slots__ = ("src_block", "dst_block", "var", "kind")

    def __init__(self, src_block: int, dst_block: int, var: str, kind: str) -> None:
        self.src_block = src_block
        self.dst_block = dst_block
        self.var = var
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConflictEdge(B{self.src_block}->B{self.dst_block}, {self.var}, {self.kind})"


class MutexEdge:
    """An undirected mutex synchronization edge between a Lock node and
    an Unlock node on the same lock variable in concurrent threads."""

    __slots__ = ("lock_block", "unlock_block", "lock_name")

    def __init__(self, lock_block: int, unlock_block: int, lock_name: str) -> None:
        self.lock_block = lock_block
        self.unlock_block = unlock_block
        self.lock_name = lock_name

    def __repr__(self) -> str:  # pragma: no cover
        return f"MutexEdge(B{self.lock_block}--B{self.unlock_block}, {self.lock_name})"


class SyncEdge:
    """A directed synchronization edge from ``set(e)`` to ``wait(e)``."""

    __slots__ = ("set_block", "wait_block", "event_name")

    def __init__(self, set_block: int, wait_block: int, event_name: str) -> None:
        self.set_block = set_block
        self.wait_block = wait_block
        self.event_name = event_name

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyncEdge(B{self.set_block}->B{self.wait_block}, {self.event_name})"


class FlowGraph:
    """A PFG over shared statement objects.

    ``blocks`` is dense: ``blocks[i].id == i``.  Control flow lives in
    each block's ``preds``/``succs``; the other edge kinds live in the
    ``conflict_edges`` / ``mutex_edges`` / ``sync_edges`` lists.
    """

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry_id: int = -1
        self.exit_id: int = -1
        self.conflict_edges: list[ConflictEdge] = []
        self.mutex_edges: list[MutexEdge] = []
        self.sync_edges: list[SyncEdge] = []
        #: stmt uid → (block_id, index within block.stmts); φ terms are
        #: indexed with negative positions (-len(phis)..-1) so that any
        #: φ orders before any ordinary statement of the same block.
        self.stmt_locations: dict[int, tuple[int, int]] = {}
        #: branch stmt uid → block id (block whose terminator it is)
        self.branch_blocks: dict[int, int] = {}
        #: cobegin region uid → (cobegin node id, coend node id)
        self.cobegin_nodes: dict[int, tuple[int, int]] = {}

    # -- construction ----------------------------------------------------

    def new_block(self, kind: NodeKind, thread_path: tuple = ()) -> BasicBlock:
        block = BasicBlock(len(self.blocks), kind, thread_path)
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.append(dst)
        self.blocks[dst].preds.append(src)

    # -- queries -----------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def block_of(self, stmt: IRStmt) -> BasicBlock:
        loc = self.stmt_locations.get(stmt.uid)
        if loc is None:
            raise CFGError(f"statement not in graph: {stmt!r}")
        return self.blocks[loc[0]]

    def location_of(self, stmt: IRStmt) -> tuple[int, int]:
        loc = self.stmt_locations.get(stmt.uid)
        if loc is None:
            raise CFGError(f"statement not in graph: {stmt!r}")
        return loc

    def contains_stmt(self, stmt: IRStmt) -> bool:
        return stmt.uid in self.stmt_locations

    def iter_blocks(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def nodes_of_kind(self, kind: NodeKind) -> list[BasicBlock]:
        return [b for b in self.blocks if b.kind is kind]

    # -- maintenance -------------------------------------------------------

    def reindex_statements(self) -> None:
        """Rebuild ``stmt_locations`` after statements were inserted or
        removed from blocks."""
        self.stmt_locations.clear()
        for block in self.blocks:
            nphis = len(block.phis)
            for i, phi in enumerate(block.phis):
                self.stmt_locations[phi.uid] = (block.id, i - nphis)
            for i, stmt in enumerate(block.stmts):
                self.stmt_locations[stmt.uid] = (block.id, i)

    def reverse_postorder(self) -> list[int]:
        """Block ids in reverse postorder from the entry (control edges)."""
        seen = [False] * len(self.blocks)
        order: list[int] = []
        # Iterative DFS with an explicit stack (graphs can be deep).
        stack: list[tuple[int, int]] = [(self.entry_id, 0)]
        seen[self.entry_id] = True
        while stack:
            node, child_idx = stack[-1]
            succs = self.blocks[node].succs
            if child_idx < len(succs):
                stack[-1] = (node, child_idx + 1)
                succ = succs[child_idx]
                if not seen[succ]:
                    seen[succ] = True
                    stack.append((succ, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def validate(self) -> None:
        """Internal consistency checks; raises :class:`CFGError`."""
        for block in self.blocks:
            for succ in block.succs:
                if block.id not in self.blocks[succ].preds:
                    raise CFGError(f"edge B{block.id}->B{succ} missing back-link")
            for pred in block.preds:
                if block.id not in self.blocks[pred].succs:
                    raise CFGError(f"edge B{pred}->B{block.id} missing forward-link")
        if self.entry_id < 0 or self.exit_id < 0:
            raise CFGError("graph missing entry or exit")
        if self.entry.preds:
            raise CFGError("entry block has predecessors")
        if self.exit.succs:
            raise CFGError("exit block has successors")
