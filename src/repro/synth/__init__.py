"""Synthetic workloads.

* :mod:`repro.synth.generator` — a seeded random generator of
  well-formed explicitly parallel programs (configurable thread count,
  lock density, branching, bounded loops, shared/private mix).  Used by
  the property-based tests and the scalability benchmarks.
* :mod:`repro.synth.workloads` — named program families: the paper's
  figures plus realistic lock-heavy scenarios (bank accounts, shared
  counters, producer/consumer-style event pipelines) used by the
  benchmark harness.
"""

from repro.synth.generator import GeneratorConfig, generate_program, generate_source
from repro.synth.workloads import (
    bank_accounts,
    event_pipeline,
    lock_density_sweep,
    licm_loop_padding,
    licm_padding,
    paper_figure1,
    paper_figure2,
    shared_counters,
)

__all__ = [
    "GeneratorConfig",
    "bank_accounts",
    "event_pipeline",
    "generate_program",
    "generate_source",
    "licm_loop_padding",
    "licm_padding",
    "lock_density_sweep",
    "paper_figure1",
    "paper_figure2",
    "shared_counters",
]
