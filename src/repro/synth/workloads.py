"""Named workload families for examples, tests and benchmarks."""

from __future__ import annotations

from repro.ir.lower import lower_program
from repro.ir.structured import ProgramIR
from repro.lang.parser import parse

__all__ = [
    "bank_accounts",
    "event_pipeline",
    "licm_padding",
    "lock_density_sweep",
    "paper_figure1",
    "paper_figure2",
    "shared_counters",
]


def _program(source: str) -> ProgramIR:
    return lower_program(parse(source))


def paper_figure1() -> ProgramIR:
    """The paper's Figure 1: mutual exclusion kills a cross-thread def."""
    return _program(
        """
        a = 1;
        b = 2;
        cobegin
        T0: begin
            lock(L);
            a = a + b;
            unlock(L);
        end
        T1: begin
            f(a);
            lock(L);
            a = 3;
            b = b + g(a);
            unlock(L);
        end
        coend
        print(a, b);
        """
    )


def paper_figure2() -> ProgramIR:
    """The paper's Figure 2 / running example of Sections 4–5."""
    return _program(paper_figure2_source())


def paper_figure2_source() -> str:
    return """
        a = 0;
        b = 0;
        cobegin
        T0: begin
            lock(L);
            a = 5;
            b = a + 3;
            if (b > 4) {
                a = a + b;
            }
            x = a;
            unlock(L);
        end
        T1: begin
            lock(L);
            a = b + 6;
            y = a;
            unlock(L);
        end
        coend
        print(x);
        print(y);
        """


def bank_accounts(n_threads: int = 3, n_transfers: int = 3) -> ProgramIR:
    """Threads transferring between two balances under one lock.

    Each critical section also computes thread-private bookkeeping
    (fees, running totals) that is lock independent — LICM fodder.
    """
    lines = ["balance0 = 100;", "balance1 = 100;", "cobegin"]
    for t in range(n_threads):
        lines.append(f"T{t}: begin")
        lines.append(f"    private fee = {t + 1};")
        lines.append("    private total = 0;")
        for k in range(n_transfers):
            amount = (t * 7 + k * 3) % 11 + 1
            lines += [
                "    lock(BANK);",
                f"    total = total + {amount};",
                f"    fee = fee + {k};",
                f"    balance0 = balance0 - {amount};",
                f"    balance1 = balance1 + {amount};",
                "    unlock(BANK);",
            ]
        lines.append("end")
    lines.append("coend")
    lines.append("print(balance0, balance1);")
    return _program("\n".join(lines))


def shared_counters(n_threads: int = 2, n_counters: int = 2, n_incr: int = 3) -> ProgramIR:
    """Per-counter locks; every increment properly protected."""
    lines = [f"c{i} = 0;" for i in range(n_counters)]
    lines.append("cobegin")
    for t in range(n_threads):
        lines.append(f"T{t}: begin")
        for k in range(n_incr):
            c = (t + k) % n_counters
            lines += [
                f"    lock(L{c});",
                f"    c{c} = c{c} + 1;",
                f"    unlock(L{c});",
            ]
        lines.append("end")
    lines.append("coend")
    lines.append("print(" + ", ".join(f"c{i}" for i in range(n_counters)) + ");")
    return _program("\n".join(lines))


def event_pipeline(n_stages: int = 3) -> ProgramIR:
    """A set/wait pipeline: stage i produces data for stage i+1."""
    lines = ["data0 = 1;", "cobegin"]
    for s in range(n_stages):
        lines.append(f"S{s}: begin")
        if s > 0:
            lines.append(f"    wait(ev{s});")
        lines.append(f"    data{s + 1} = data{s} * 2 + {s};")
        lines.append(f"    set(ev{s + 1});")
        lines.append("end")
    lines.append("coend")
    lines.append(f"print(data{n_stages});")
    return _program("\n".join(lines))


def licm_padding(n_threads: int = 2, n_private_stmts: int = 4) -> ProgramIR:
    """Critical sections padded with lock-independent private work.

    All the private computation inside the lock is movable; only the
    single shared update must stay.  The LICM benchmark measures how
    many statements leave the critical section and how lock hold time
    shrinks.
    """
    lines = ["acc = 0;", "cobegin"]
    for t in range(n_threads):
        lines.append(f"T{t}: begin")
        lines.append(f"    private w = {t};")
        lines.append("    lock(M);")
        for k in range(n_private_stmts):
            lines.append(f"    w = w * 3 + {k};")
        lines.append("    acc = acc + 1;")
        for k in range(n_private_stmts):
            lines.append(f"    out{t}_{k} = w + {k};")
        lines.append("    unlock(M);")
        lines.append("end")
    lines.append("coend")
    lines.append("print(acc);")
    for t in range(n_threads):
        lines.append(f"print(out{t}_0);")
    return _program("\n".join(lines))


def licm_loop_padding(n_threads: int = 2, loop_iters: int = 3) -> ProgramIR:
    """Critical sections containing a whole lock-independent loop.

    Exercises the paper's "unless the whole loop is lock independent"
    motion: the private summation loop can leave the critical section
    entirely, leaving only the shared update inside.
    """
    lines = ["acc = 0;", "cobegin"]
    for t in range(n_threads):
        lines += [
            f"T{t}: begin",
            f"    private w = {t};",
            "    private i = 0;",
            "    lock(M);",
            f"    while (i < {loop_iters}) {{ w = w + i; i = i + 1; }}",
            "    acc = acc + w;",
            "    unlock(M);",
            "end",
        ]
    lines.append("coend")
    lines.append("print(acc);")
    return _program("\n".join(lines))


def lock_density_sweep(fraction_locked: float, n_threads: int = 2,
                       n_stmts: int = 8) -> ProgramIR:
    """Programs whose fraction of shared accesses under the lock varies.

    The SWEEP-PI benchmark runs CSSA vs CSSAME over this family: the
    more accesses are protected, the more π arguments Algorithm A.3
    removes — quantifying the paper's core claim.
    """
    n_locked = round(n_stmts * fraction_locked)
    lines = ["v = 0;", "cobegin"]
    for t in range(n_threads):
        lines.append(f"T{t}: begin")
        if n_locked:
            lines.append("    lock(D);")
            lines.append("    v = 1;")  # every path through the body kills v
            for k in range(n_locked - 1):
                lines.append(f"    v = v + {t + k + 1};")
            lines.append(f"    r{t} = v;")
            lines.append("    unlock(D);")
        for k in range(n_stmts - n_locked):
            lines.append(f"    v = v - {t + k + 1};")
        lines.append("end")
    lines.append("coend")
    lines.append("print(" + ", ".join(f"r{t}" for t in range(n_threads)) + ");")
    return _program("\n".join(lines))
