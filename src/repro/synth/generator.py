"""Seeded random generation of well-formed explicitly parallel programs.

The generator emits *source text* (exercising the front end too) with
these guarantees:

* lock/unlock pairs are properly nested and always matched (so every
  critical section forms a mutex body);
* loops are bounded (a fresh private counter drives each one), keeping
  programs terminating — a requirement of the exhaustive explorer;
* with ``race_free=True`` every shared variable is assigned a protecting
  lock and only ever touched inside that lock's critical sections, so
  all cross-thread conflicts are serialized.

The program shape is: shared-variable initialisation, one ``cobegin``
with ``n_threads`` threads of random statement sequences, and a final
``print`` of every shared variable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.structured import ProgramIR
from repro.ir.lower import lower_program
from repro.lang.parser import parse

__all__ = ["GeneratorConfig", "generate_program", "generate_source"]


@dataclass
class GeneratorConfig:
    """Knobs for the random program generator."""

    seed: int = 0
    n_threads: int = 2
    stmts_per_thread: int = 6
    n_shared: int = 3
    n_private: int = 1
    n_locks: int = 1
    #: probability that a generated segment is a critical section
    p_critical: float = 0.5
    #: probability of an if statement (per slot, within depth budget)
    p_if: float = 0.15
    #: probability of a bounded loop (per slot, within depth budget)
    p_while: float = 0.0
    #: max iterations a generated loop runs
    loop_bound: int = 2
    max_depth: int = 2
    expr_depth: int = 2
    #: restrict shared accesses to each variable's assigned lock section
    race_free: bool = False
    #: include opaque calls (observable events)
    p_call: float = 0.0
    #: number of all-thread barriers separating phases (0 = none).
    #: Barriers are emitted unconditionally at thread top level, outside
    #: any lock, so generated programs never barrier-deadlock.
    n_barriers: int = 0
    #: number of set/wait event pairs (0 = none).  Every ``set`` is the
    #: producer thread's first statement and every ``wait`` sits at the
    #: consumer's top level, so waits always eventually unblock.
    n_events: int = 0

    def shared_vars(self) -> list[str]:
        return [f"s{i}" for i in range(self.n_shared)]

    def locks(self) -> list[str]:
        return [f"LK{i}" for i in range(self.n_locks)]


class _SourceGenerator:
    def __init__(self, config: GeneratorConfig) -> None:
        self.cfg = config
        self.rng = random.Random(config.seed)
        self.shared = config.shared_vars()
        self.locks = config.locks()
        #: race-free mode: shared var → its protecting lock
        self.protector = {
            var: self.locks[i % len(self.locks)] if self.locks else None
            for i, var in enumerate(self.shared)
        }
        self._loop_counter = 0

    # -- expressions --------------------------------------------------------

    def expr(self, readable: list[str], depth: int | None = None) -> str:
        if depth is None:
            depth = self.cfg.expr_depth
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4 or not readable:
            if readable and rng.random() < 0.6:
                return rng.choice(readable)
            return str(rng.randint(-4, 9))
        op = rng.choice(["+", "-", "*", "+", "-"])
        return f"({self.expr(readable, depth - 1)} {op} {self.expr(readable, depth - 1)})"

    def cond(self, readable: list[str]) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{self.expr(readable, 1)} {op} {self.expr(readable, 1)}"

    # -- statements -----------------------------------------------------------

    def assign(self, writable: list[str], readable: list[str]) -> str:
        target = self.rng.choice(writable)
        return f"{target} = {self.expr(readable)};"

    def stmts(
        self,
        count: int,
        privates: list[str],
        depth: int,
        held_lock: str | None,
        indent: str,
    ) -> list[str]:
        """Generate ``count`` statement slots for one thread context."""
        cfg = self.cfg
        rng = self.rng
        out: list[str] = []
        for _ in range(count):
            roll = rng.random()
            shared_ok = self._accessible_shared(held_lock)
            writable = shared_ok + privates
            readable = shared_ok + privates
            if roll < cfg.p_if and depth > 0:
                inner = self.stmts(
                    max(1, count // 2), privates, depth - 1, held_lock, indent + "    "
                )
                cond = self.cond(readable)
                block = "\n".join(indent + "    " + line for line in inner)
                out.append(f"if ({cond}) {{\n{block}\n{indent}}}")
            elif roll < cfg.p_if + cfg.p_while and depth > 0:
                counter = f"it{self._loop_counter}"
                self._loop_counter += 1
                inner = self.stmts(
                    max(1, count // 2), privates, depth - 1, held_lock, indent + "    "
                )
                inner.append(f"{counter} = {counter} + 1;")
                block = "\n".join(indent + "    " + line for line in inner)
                out.append(f"private {counter} = 0;")
                out.append(
                    f"while ({counter} < {cfg.loop_bound}) {{\n{block}\n{indent}}}"
                )
            elif (
                held_lock is None
                and self.locks
                and roll < cfg.p_if + cfg.p_while + cfg.p_critical
            ):
                lock = rng.choice(self.locks)
                inner = self.stmts(
                    max(1, count // 2), privates, depth, lock, indent + "    "
                )
                block = "\n".join(indent + "    " + line for line in inner)
                out.append(f"lock({lock});\n{block}\n{indent}unlock({lock});")
            elif rng.random() < cfg.p_call:
                args = ", ".join(
                    self.expr(readable, 1) for _ in range(rng.randint(1, 2))
                )
                out.append(f"work({args});")
            elif writable:
                out.append(self.assign(writable, readable))
        return out

    def _accessible_shared(self, held_lock: str | None) -> list[str]:
        if not self.cfg.race_free:
            return list(self.shared)
        if held_lock is None:
            return []
        return [v for v in self.shared if self.protector[v] == held_lock]

    # -- whole program -----------------------------------------------------------

    def generate(self) -> str:
        cfg = self.cfg
        lines: list[str] = []
        for i, var in enumerate(self.shared):
            lines.append(f"{var} = {self.rng.randint(0, 9)};")
        lines.append("cobegin")
        # Event plumbing: the producer sets at the *end* of its body and
        # the consumer waits at the *start* of its own, so the producer's
        # work is ordered before the consumer's (the pattern event
        # pruning exploits).  Producer index < consumer index keeps the
        # wait graph acyclic — no generated program can event-deadlock.
        sets_by_thread: dict[int, list[str]] = {}
        waits_by_thread: dict[int, list[str]] = {}
        if cfg.n_threads >= 2:
            for k in range(cfg.n_events):
                producer = self.rng.randrange(cfg.n_threads - 1)
                consumer = self.rng.randrange(producer + 1, cfg.n_threads)
                sets_by_thread.setdefault(producer, []).append(f"ev{k}")
                waits_by_thread.setdefault(consumer, []).append(f"ev{k}")

        phases = max(cfg.n_barriers + 1, 1)
        for t in range(cfg.n_threads):
            privates = [f"p{t}_{i}" for i in range(cfg.n_private)]
            lines.append(f"T{t}: begin")
            for event in waits_by_thread.get(t, []):
                lines.append(f"    wait({event});")
            for p in privates:
                lines.append(f"    private {p} = {self.rng.randint(0, 5)};")
            per_phase = max(cfg.stmts_per_thread // phases, 1)
            for phase in range(phases):
                if phase > 0:
                    # Unconditional, top-level, outside any lock: every
                    # thread reaches every barrier, so no deadlock.
                    lines.append(f"    barrier(BR{phase});")
                body = self.stmts(per_phase, privates, cfg.max_depth, None, "    ")
                for stmt in body:
                    lines.append("    " + stmt)
            for event in sets_by_thread.get(t, []):
                lines.append(f"    set({event});")
            lines.append("end")
        lines.append("coend")
        args = ", ".join(self.shared)
        lines.append(f"print({args});")
        return "\n".join(lines) + "\n"


def generate_source(config: GeneratorConfig) -> str:
    """Generate program source text for ``config`` (deterministic)."""
    return _SourceGenerator(config).generate()


def generate_program(config: GeneratorConfig) -> ProgramIR:
    """Generate, parse and lower a program for ``config``."""
    return lower_program(parse(generate_source(config)))
