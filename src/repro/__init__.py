"""repro — a full reproduction of *Concurrent SSA Form in the Presence of
Mutual Exclusion* (Novillo, Unrau, Schaeffer — ICPP 1998).

The package implements the paper's whole stack:

* a small explicitly parallel language (:mod:`repro.lang`),
* the Parallel Flow Graph (:mod:`repro.cfg`),
* sequential SSA with factored use-def chains (:mod:`repro.ssa`),
* CSSA π terms (:mod:`repro.cssa`),
* mutex structures — Algorithm A.1 (:mod:`repro.mutex`),
* the CSSAME form — Theorems 1–2, Algorithms A.2–A.4
  (:mod:`repro.cssame`),
* optimizations: concurrent constant propagation, parallel dead-code
  elimination and lock-independent code motion (:mod:`repro.opt`),
* an interleaving virtual machine with a random scheduler and an
  exhaustive schedule explorer (:mod:`repro.vm`),
* semantic-equivalence checkers (:mod:`repro.verify`) and a random
  program generator (:mod:`repro.synth`).

Quickstart::

    from repro.session import Session

    session = Session()
    result = session.optimize(source_text)
    print(result.listing())

The one-shot facade returns typed, wire-ready results (the same
payloads ``repro serve`` puts on the network)::

    from repro import api
    result = api.optimize(source_text)
    print(result.listing)
"""

from repro._version import __version__

__all__ = ["api", "session", "__version__"]

from repro import api, session  # noqa: E402  (re-exported surfaces)
