"""Vector clocks and the online happens-before race detector.

Definition 1 of the paper orders two statements when one reaches the
other through control flow *or* synchronization; at runtime the same
relation is the classic Lamport happens-before, and a vector clock per
thread makes it decidable online.  The tracker mirrors the paper's
ordering mechanisms exactly:

* **lock release → acquire** (per lock variable): an ``unlock(L)``
  publishes the releasing thread's clock into ``L``'s release clock;
  the next ``lock(L)`` joins it — mutual exclusion edges, Section 4;
* **set → wait** (per event): ``set(e)`` publishes into ``e``'s event
  clock (sticky events join across multiple sets), ``wait(e)`` joins
  it — the guaranteed-ordering edges of the event refinement;
* **fork / join** (``cobegin``/``coend``): children inherit a copy of
  the parent's clock; the parent joins each child's clock as it ends;
* **barrier**: when a barrier releases, every participant's clock is
  replaced by the join of all participants' clocks.

Race detection is FastTrack-style: per shared variable we keep the
last write as an *epoch* ``(tid, clock[tid], pc, step)`` and the last
read epoch per thread.  An access by thread ``t`` races with a prior
epoch ``(u, c)`` iff ``u != t`` and ``clock_t[u] < c`` — the two
accesses are incomparable under happens-before.  Each detected race
records the variable, the two thread ids and PCs, and the **schedule
prefix** up to the detection point, which :meth:`VirtualMachine.replay
<repro.vm.machine.VirtualMachine.replay>` turns back into the exact
interleaving (the witness).

Scope: the detector monitors *memory statements* — assignment targets,
assignment right-hand sides, and branch conditions.  Arguments of
observable events (``print`` and opaque call statements) are excluded:
the VM treats those statements as atomic external actions, and the
static lockset report classifies races that only involve them
separately (see ``repro.dynamic.audit``).  Tracking is opt-in
(``VirtualMachine(..., hb=HBTracker(program))``); a VM without a
tracker pays one attribute read and a branch per step.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.expr import iter_expr_vars
from repro.ir.structured import ProgramIR
from repro.obs.events import DynamicRaceObserved, HappensBeforeEdge
from repro.obs.trace import get_tracer
from repro.vm.bytecode import Instr, Op, VMProgram
from repro.vm.compile import compile_program

__all__ = ["DynamicRace", "HBTracker", "VectorClock"]


class VectorClock:
    """A mapping thread-id → logical time, with join/compare helpers.

    Thread ids are the VM's spawn-path tuples; components absent from
    the mapping are 0.  Clocks are mutable — :meth:`copy` before
    publishing one into shared tracker state.
    """

    __slots__ = ("times",)

    def __init__(self, times: Optional[dict] = None) -> None:
        self.times: dict[tuple, int] = dict(times) if times else {}

    def tick(self, tid: tuple) -> int:
        """Advance ``tid``'s own component; returns the new value."""
        value = self.times.get(tid, 0) + 1
        self.times[tid] = value
        return value

    def get(self, tid: tuple) -> int:
        return self.times.get(tid, 0)

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place (the happens-before merge)."""
        times = self.times
        for tid, value in other.times.items():
            if times.get(tid, 0) < value:
                times[tid] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self.times)

    def leq(self, other: "VectorClock") -> bool:
        """Componentwise ≤ — true iff this clock happens-before-or-equals."""
        return all(other.times.get(tid, 0) >= v for tid, v in self.times.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def as_dict(self) -> dict[str, int]:
        from repro.obs.events import tid_str

        return {tid_str(tid): v for tid, v in sorted(self.times.items())}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {t: v for t, v in self.times.items() if v} == {
            t: v for t, v in other.times.items() if v
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorClock({self.as_dict()})"


class _Epoch:
    """One access, compressed to FastTrack's ``tid@clock`` plus locus."""

    __slots__ = ("tid", "clock", "pc", "step")

    def __init__(self, tid: tuple, clock: int, pc: int, step: int) -> None:
        self.tid = tid
        self.clock = clock
        self.pc = pc
        self.step = step


class DynamicRace:
    """Two conflicting accesses with incomparable vector clocks.

    ``a`` is the earlier access (by global step), ``b`` the one at
    whose execution the race was detected.  ``witness`` is the schedule
    prefix (thread ids, step order) ending with ``b``'s step — replay
    it to reproduce the race deterministically.
    """

    __slots__ = (
        "var", "kind",
        "tid_a", "pc_a", "step_a",
        "tid_b", "pc_b", "step_b",
        "witness",
    )

    def __init__(
        self,
        var: str,
        kind: str,
        tid_a: tuple,
        pc_a: int,
        step_a: int,
        tid_b: tuple,
        pc_b: int,
        step_b: int,
        witness: list,
    ) -> None:
        self.var = var
        #: "write-write" or "write-read" (matching the static report)
        self.kind = kind
        self.tid_a = tid_a
        self.pc_a = pc_a
        self.step_a = step_a
        self.tid_b = tid_b
        self.pc_b = pc_b
        self.step_b = step_b
        self.witness = witness

    def pair_key(self) -> tuple:
        """Program-location identity (dedup key across runs)."""
        a, b = sorted((self.pc_a, self.pc_b))
        return (self.var, a, b, self.kind)

    def message(self) -> str:
        from repro.obs.events import tid_str

        return (
            f"dynamic {self.kind} race on '{self.var}': "
            f"{tid_str(self.tid_a)}@pc{self.pc_a} (step {self.step_a}) vs "
            f"{tid_str(self.tid_b)}@pc{self.pc_b} (step {self.step_b}), "
            f"clocks incomparable"
        )

    def as_dict(self) -> dict:
        from repro.obs.events import tid_str

        return {
            "var": self.var,
            "kind": self.kind,
            "tid_a": tid_str(self.tid_a),
            "pc_a": self.pc_a,
            "step_a": self.step_a,
            "tid_b": tid_str(self.tid_b),
            "pc_b": self.pc_b,
            "step_b": self.step_b,
            "witness": [list(t) for t in self.witness],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicRace({self.message()})"


class HBTracker:
    """Per-run happens-before state, driven by the VM's step hooks.

    One tracker observes one execution (create a fresh one per run);
    aggregate across runs with :meth:`merge_orderings` or via
    :mod:`repro.dynamic.audit`.  All bookkeeping costs are paid only
    when a tracker is attached — the VM's default path is untouched.
    """

    def __init__(self, program: Union[VMProgram, ProgramIR]) -> None:
        if isinstance(program, ProgramIR):
            program = compile_program(program)
        self.program = program
        #: pc → (reads tuple, write-or-None) for memory statements
        self.accesses: list[tuple[tuple, Optional[str]]] = [
            _instr_accesses(instr) for instr in program.instrs
        ]
        self.clocks: dict[tuple, VectorClock] = {(): VectorClock()}
        self.release_clock: dict[str, VectorClock] = {}
        self.event_clock: dict[str, VectorClock] = {}
        self.last_write: dict[str, _Epoch] = {}
        self.last_reads: dict[str, dict[tuple, _Epoch]] = {}
        #: the schedule so far (thread id per step) — witness source
        self.schedule: list[tuple] = []
        self.races: list[DynamicRace] = []
        self._race_keys: set[tuple] = set()
        #: (var, pc_lo, pc_hi) → set of "ab"/"ba" orders exercised
        self.orderings: dict[tuple, set[str]] = {}
        self._last_access: dict[str, tuple] = {}  # var → (tid, pc, is_write)
        #: deterministic work counters (see repro.obs.prof conventions)
        self.checks = 0
        self.joins = 0
        self.tracer = get_tracer()

    # -- clock maintenance (called from VirtualMachine._step) ---------------

    def on_step(self, tid: tuple, pc: int, instr: Instr) -> None:
        """Advance ``tid``'s clock across one instruction.

        Pre-merges (lock acquire, wait) happen before the tick so the
        acquired ordering covers the acquiring action itself; publishes
        (unlock, set) happen after so the published clock includes it.
        """
        clock = self.clocks[tid]
        op = instr.op
        step = len(self.schedule)
        self.schedule.append(tid)

        if op is Op.LOCK:
            released = self.release_clock.get(instr.name)
            if released is not None:
                clock.join(released)
                self.joins += 1
                self._edge(step, "release-acquire", released, tid, instr.name)
        elif op is Op.WAIT:
            published = self.event_clock.get(instr.name)
            if published is not None:
                clock.join(published)
                self.joins += 1
                self._edge(step, "set-wait", published, tid, instr.name)

        clock.tick(tid)

        if op is Op.UNLOCK:
            self.release_clock[instr.name] = clock.copy()
        elif op is Op.SET:
            published = self.event_clock.get(instr.name)
            if published is None:
                self.event_clock[instr.name] = clock.copy()
            else:
                published.join(clock)  # sticky events join across sets
        elif op is Op.ASSIGN or op is Op.BRANCH:
            reads, write = self.accesses[pc]
            for var in reads:
                self._on_read(var, tid, clock, pc, step)
            if write is not None:
                self._on_write(write, tid, clock, pc, step)

    def on_spawn(self, parent: tuple, children: tuple) -> None:
        """``cobegin``: each child starts with a copy of the parent clock."""
        clock = self.clocks[parent]
        step = len(self.schedule) - 1
        for child in children:
            self.clocks[child] = clock.copy()
            self.joins += 1
            self._edge_tids(step, "fork", parent, child)

    def on_thread_end(self, child: tuple, parent: tuple) -> None:
        """``coend`` join: the parent's clock absorbs the ending child's."""
        self.clocks[parent].join(self.clocks[child])
        self.joins += 1
        self._edge_tids(len(self.schedule) - 1, "join", child, parent)

    def on_barrier_release(self, name: str, tids: list[tuple]) -> None:
        """All participants leave with the join of all their clocks."""
        merged = VectorClock()
        for tid in tids:
            merged.join(self.clocks[tid])
        self.joins += len(tids)
        step = len(self.schedule) - 1
        for tid in tids:
            self.clocks[tid] = merged.copy()
            self._edge_tids(step, "barrier", tid, tid, name)

    # -- race checks ----------------------------------------------------------

    def _on_read(self, var: str, tid: tuple, clock: VectorClock, pc: int, step: int) -> None:
        self.checks += 1
        write = self.last_write.get(var)
        if write is not None and write.tid != tid and clock.get(write.tid) < write.clock:
            self._report(var, "write-read", write, tid, pc, step)
        reads = self.last_reads.get(var)
        if reads is None:
            reads = self.last_reads[var] = {}
        reads[tid] = _Epoch(tid, clock.get(tid), pc, step)
        self._order(var, tid, pc, is_write=False)

    def _on_write(self, var: str, tid: tuple, clock: VectorClock, pc: int, step: int) -> None:
        self.checks += 1
        write = self.last_write.get(var)
        if write is not None and write.tid != tid and clock.get(write.tid) < write.clock:
            self._report(var, "write-write", write, tid, pc, step)
        for read in self.last_reads.get(var, {}).values():
            if read.tid != tid and clock.get(read.tid) < read.clock:
                self._report(var, "write-read", read, tid, pc, step)
        self.last_write[var] = _Epoch(tid, clock.get(tid), pc, step)
        self._order(var, tid, pc, is_write=True)

    def _report(
        self, var: str, kind: str, prior: _Epoch, tid: tuple, pc: int, step: int
    ) -> None:
        race = DynamicRace(
            var, kind,
            prior.tid, prior.pc, prior.step,
            tid, pc, step,
            witness=[],
        )
        key = race.pair_key()
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        race.witness = list(self.schedule)  # prefix ending at this access
        self.races.append(race)
        if self.tracer.enabled:
            self.tracer.event(
                DynamicRaceObserved(step, var, kind, prior.tid, prior.pc, tid, pc)
            )
            self.tracer.counter("hb.races").inc()

    # -- ordering coverage ----------------------------------------------------

    def _order(self, var: str, tid: tuple, pc: int, is_write: bool) -> None:
        last = self._last_access.get(var)
        self._last_access[var] = (tid, pc, is_write)
        if last is None:
            return
        l_tid, l_pc, l_write = last
        if l_tid == tid or not (l_write or is_write):
            return  # same thread, or read/read — not a conflict pair
        if l_pc <= pc:
            key, order = (var, l_pc, pc), "ab"
        else:
            key, order = (var, pc, l_pc), "ba"
        self.orderings.setdefault(key, set()).add(order)

    def merge_orderings(self, into: dict[tuple, set[str]]) -> None:
        """Accumulate this run's conflict orderings into ``into``."""
        for key, orders in self.orderings.items():
            into.setdefault(key, set()).update(orders)

    # -- event emission -------------------------------------------------------

    def _edge(
        self, step: int, mechanism: str, published: VectorClock, dst: tuple, name: str
    ) -> None:
        if not self.tracer.enabled:
            return
        # The publishing thread is the one whose own component tops the
        # published clock — deterministic because publishes copy the
        # publisher's clock right after its tick.
        src = max(
            published.times, key=lambda t: (published.times[t], t), default=dst
        )
        self.tracer.event(HappensBeforeEdge(step, mechanism, src, dst, name))
        self.tracer.counter(f"hb.edges.{mechanism}").inc()

    def _edge_tids(
        self, step: int, mechanism: str, src: tuple, dst: tuple, name: str = ""
    ) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.event(HappensBeforeEdge(step, mechanism, src, dst, name))
        self.tracer.counter(f"hb.edges.{mechanism}").inc()

    # -- summary --------------------------------------------------------------

    def race_vars(self) -> set[str]:
        return {race.var for race in self.races}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HBTracker(threads={len(self.clocks)}, races={len(self.races)}, "
            f"checks={self.checks})"
        )


def _instr_accesses(instr: Instr) -> tuple[tuple, Optional[str]]:
    """(read variable names, written variable name or None) of one
    instruction — the monitored-access map (see module docstring for
    why print/call arguments are excluded)."""
    if instr.op is Op.ASSIGN:
        reads = tuple(
            dict.fromkeys(var.name for var in iter_expr_vars(instr.expr))
        )
        return reads, instr.name
    if instr.op is Op.BRANCH:
        reads = tuple(
            dict.fromkeys(var.name for var in iter_expr_vars(instr.expr))
        )
        return reads, None
    return (), None
