"""Dynamic concurrency analysis — the runtime half of the observatory.

The static side of this repository (CSSAME, locksets, Section 6
diagnostics) reasons about *every* execution; this package observes
*actual* executions and checks the two against each other:

* :mod:`repro.dynamic.hb` — per-thread **vector clocks** maintained by
  the interleaving VM, advanced on every step and merged across the
  paper's ordering mechanisms (lock release→acquire, ``set``→``wait``,
  ``cobegin``/``coend`` fork–join, barriers), plus the online
  happens-before **race detector** with replayable witness schedules;
* :mod:`repro.dynamic.coverage` — schedule-coverage metrics: outcome
  classes sampled vs. explored, conflicting-statement orderings
  exercised;
* :mod:`repro.dynamic.audit` — the ``repro audit`` driver: N seeded
  runs + optional bounded exploration, cross-validated against the
  static :func:`repro.mutex.races.detect_races` report.
"""

from repro.dynamic.audit import AuditReport, audit_program, audit_source
from repro.dynamic.coverage import ScheduleCoverage
from repro.dynamic.hb import DynamicRace, HBTracker, VectorClock

__all__ = [
    "AuditReport",
    "DynamicRace",
    "HBTracker",
    "ScheduleCoverage",
    "VectorClock",
    "audit_program",
    "audit_source",
]
