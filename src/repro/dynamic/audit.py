"""Static ↔ dynamic cross-validation: the ``repro audit`` driver.

The lockset report (:func:`repro.mutex.races.detect_races`) is a *may*
analysis: it over-approximates, so every real race should appear in it,
but not every reported race need be feasible.  The happens-before
detector is the opposite: it only reports races an actual execution
exhibited, each with a replayable witness schedule.  Auditing runs both
and compares:

* **confirmed** — a static race whose variable the dynamic detector
  also flagged; the finding carries a witness schedule whose replay
  reproduces the race deterministically;
* **unconfirmed** — a static race no sampled schedule exhibited:
  possibly infeasible, possibly under-sampled (read the coverage
  block before celebrating), or — ``scope == "observable-args"`` —
  involving only observable-event arguments, which the dynamic monitor
  deliberately excludes (see :mod:`repro.dynamic.hb`);
* **dynamic-only** — a dynamic race on a variable the static report
  missed.  This should be impossible while the analysis is sound, so
  an audit with dynamic-only findings **fails** regardless of flags:
  it is a soundness check on the CSSAME analysis itself.

``audit_source`` samples ``runs`` seeded schedules with a fresh
:class:`~repro.dynamic.hb.HBTracker` each, optionally adds bounded
exhaustive exploration as the coverage yardstick, verifies every
witness by replaying it, and reports deterministic ``work.audit.*``
counters (:func:`repro.obs.prof.record_work`) so the benchmark gate
covers the subsystem.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.cfg.conflicts import collect_access_sites, is_memory_access
from repro.errors import StepLimitExceeded
from repro.ir.stmts import Pi, SCallStmt, SPrint
from repro.ir.structured import ProgramIR
from repro.mutex.races import RaceReport, detect_races
from repro.obs.prof import record_work
from repro.obs.trace import get_tracer
from repro.dynamic.coverage import ScheduleCoverage
from repro.dynamic.hb import DynamicRace, HBTracker
from repro.vm.compile import compile_program
from repro.vm.explore import explore
from repro.vm.machine import VirtualMachine

__all__ = [
    "AuditReport",
    "StaticRaceFinding",
    "audit_program",
    "audit_source",
]

#: classification vocabulary for static findings
CONFIRMED = "confirmed"
UNCONFIRMED = "unconfirmed"
#: scope of an unconfirmed static race
SCOPE_MONITORED = "monitored"
SCOPE_OBSERVABLE = "observable-args"


class StaticRaceFinding:
    """One static race report, judged against the dynamic evidence."""

    __slots__ = ("report", "status", "scope", "dynamic", "witness_verified")

    def __init__(
        self,
        report: RaceReport,
        status: str,
        scope: str,
        dynamic: Optional[DynamicRace] = None,
        witness_verified: bool = False,
    ) -> None:
        self.report = report
        self.status = status  # CONFIRMED | UNCONFIRMED
        self.scope = scope  # SCOPE_MONITORED | SCOPE_OBSERVABLE
        #: the matching dynamic race (carries the witness schedule)
        self.dynamic = dynamic
        self.witness_verified = witness_verified

    def message(self) -> str:
        if self.status == CONFIRMED:
            verified = "replay-verified" if self.witness_verified else "unverified"
            return (
                f"confirmed: {self.report.message()} — witness of "
                f"{len(self.dynamic.witness)} step(s), {verified}"
            )
        if self.scope == SCOPE_OBSERVABLE:
            return (
                f"unconfirmed (observable-event arguments; outside the "
                f"dynamic monitor): {self.report.message()}"
            )
        return f"unconfirmed (possibly infeasible): {self.report.message()}"

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "scope": self.scope,
            "race": self.report.as_dict(),
            "dynamic": None if self.dynamic is None else self.dynamic.as_dict(),
            "witness_verified": self.witness_verified,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticRaceFinding({self.message()})"


class AuditReport:
    """The full result of one audit."""

    def __init__(self) -> None:
        self.findings: list[StaticRaceFinding] = []
        #: distinct dynamic races across all runs (by program location)
        self.dynamic: list[DynamicRace] = []
        #: dynamic races on variables the static report missed
        self.dynamic_only: list[DynamicRace] = []
        self.coverage = ScheduleCoverage()
        self.seeds: list[int] = []

    @property
    def confirmed(self) -> list[StaticRaceFinding]:
        return [f for f in self.findings if f.status == CONFIRMED]

    @property
    def unconfirmed(self) -> list[StaticRaceFinding]:
        return [f for f in self.findings if f.status == UNCONFIRMED]

    @property
    def sound(self) -> bool:
        """No dynamic-only races — the static analysis held up."""
        return not self.dynamic_only

    def exit_code(self, strict: bool = False) -> int:
        """The CLI exit-code contract.

        * 1 — soundness failure (dynamic-only race), always; or, under
          ``strict``, a confirmed race (real, replayable);
        * 2 — a sampled run (or exploration) deadlocked, and nothing
          above applies;
        * 0 — otherwise (unconfirmed static races do not gate).
        """
        if self.dynamic_only:
            return 1
        if strict and self.confirmed:
            return 1
        if self.coverage.deadlock_runs:
            return 2
        return 0

    def as_dict(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "confirmed": [f.as_dict() for f in self.confirmed],
            "unconfirmed": [f.as_dict() for f in self.unconfirmed],
            "dynamic_only": [r.as_dict() for r in self.dynamic_only],
            "dynamic_races": [r.as_dict() for r in self.dynamic],
            "sound": self.sound,
            "coverage": self.coverage.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditReport(confirmed={len(self.confirmed)}, "
            f"unconfirmed={len(self.unconfirmed)}, "
            f"dynamic_only={len(self.dynamic_only)})"
        )


def _consumers(graph, block_id: int, temp: str) -> list:
    """Statements of ``block_id`` reading the single-assignment ``temp``."""
    return [
        stmt
        for stmt in graph.blocks[block_id].stmts
        if any(use.name == temp and use.version is None for use in stmt.uses())
    ]


def _observable_only(graph, sites: dict, var: str, block_id: int) -> bool:
    """True when every monitored access of ``var`` in ``block_id`` feeds
    only observable-event statements (print / opaque call).

    In CSSA form a protected use is routed through a π term, so the
    access site sits on the :class:`Pi`; the judgement follows the π
    target to its consuming statement(s) in the block.
    """
    found = False
    for site in sites.get(var, []):
        if site.block_id != block_id or not is_memory_access(site):
            continue
        stmts = [site.stmt]
        if isinstance(site.stmt, Pi):
            stmts = _consumers(graph, block_id, site.stmt.target) or stmts
        for stmt in stmts:
            if not isinstance(stmt, (SPrint, SCallStmt)):
                return False
        found = True
    return found


def audit_program(
    program: ProgramIR,
    static_races: list[RaceReport],
    runs: int = 16,
    seed_base: int = 0,
    fuel: int = 1_000_000,
    functions: Optional[Callable[[str, list[int]], int]] = None,
    explore_states: int = 20_000,
    do_explore: bool = True,
    graph=None,
    access_sites: Optional[dict] = None,
    conflict_vars: Iterable[str] = (),
) -> AuditReport:
    """Cross-validate ``static_races`` against ``runs`` traced schedules.

    The dynamic/static match is at variable granularity: a static race
    on ``v`` is *confirmed* by any dynamic race on ``v`` (block ids and
    PCs index different program representations, so finer matching
    would be spuriously precise).  Witnesses are verified by replay
    before the report claims them.
    """
    tracer = get_tracer()
    report = AuditReport()
    report.coverage.static_conflict_vars = set(conflict_vars)
    compiled = compile_program(program)

    dynamic: dict[tuple, DynamicRace] = {}
    total_checks = 0
    total_joins = 0
    total_steps = 0
    with tracer.span("audit-runs", runs=runs) as span:
        for seed in range(seed_base, seed_base + runs):
            report.seeds.append(seed)
            hb = HBTracker(compiled)
            vm = VirtualMachine(
                compiled, seed=seed, functions=functions, fuel=fuel, hb=hb
            )
            try:
                execution = vm.run(raise_on_deadlock=False)
            except StepLimitExceeded:
                continue  # fuel-bounded run: no outcome to record
            report.coverage.runs += 1
            if execution.deadlocked:
                report.coverage.deadlock_runs += 1
            report.coverage.sampled_outcomes.add(execution.output_key())
            hb.merge_orderings(report.coverage.orderings)
            for race in hb.races:
                dynamic.setdefault(race.pair_key(), race)
            total_checks += hb.checks
            total_joins += hb.joins
            total_steps += execution.steps
        span.set(dynamic_races=len(dynamic))
    report.dynamic = [dynamic[key] for key in sorted(dynamic)]

    if do_explore:
        result = explore(compiled, functions=functions, max_states=explore_states)
        report.coverage.explored_outcomes = result.outcomes
        report.coverage.explored_states = result.states
        report.coverage.explore_complete = result.complete

    # Witness verification: replaying the recorded schedule prefix on a
    # fresh tracker must re-detect the same race at the same locations.
    verified: set[tuple] = set()
    for race in report.dynamic:
        hb = HBTracker(compiled)
        vm = VirtualMachine(compiled, functions=functions, hb=hb)
        try:
            vm.replay(list(race.witness))
        except Exception:  # noqa: BLE001 - an unreplayable witness is a bug
            continue
        if race.pair_key() in {r.pair_key() for r in hb.races}:
            verified.add(race.pair_key())

    dynamic_vars = {race.var for race in report.dynamic}
    static_vars = set()
    for static in static_races:
        static_vars.add(static.var)
        match = next(
            (r for r in report.dynamic if r.var == static.var), None
        )
        if match is not None:
            report.findings.append(
                StaticRaceFinding(
                    static,
                    CONFIRMED,
                    SCOPE_MONITORED,
                    dynamic=match,
                    witness_verified=match.pair_key() in verified,
                )
            )
            continue
        scope = SCOPE_MONITORED
        if graph is not None and access_sites is not None and (
            _observable_only(graph, access_sites, static.var, static.block_a)
            or _observable_only(graph, access_sites, static.var, static.block_b)
        ):
            scope = SCOPE_OBSERVABLE
        report.findings.append(StaticRaceFinding(static, UNCONFIRMED, scope))
    report.dynamic_only = [r for r in report.dynamic if r.var not in static_vars]

    record_work(
        "audit",
        runs=report.coverage.runs,
        steps=total_steps,
        access_checks=total_checks,
        clock_joins=total_joins,
        dynamic_races=len(report.dynamic),
        static_races=len(static_races),
        confirmed=len(report.confirmed),
    )
    return report


def audit_source(
    source: str,
    runs: int = 16,
    seed_base: int = 0,
    fuel: int = 1_000_000,
    functions: Optional[Callable[[str, list[int]], int]] = None,
    explore_states: int = 20_000,
    do_explore: bool = True,
    static_races: Optional[list[RaceReport]] = None,
    session=None,
) -> AuditReport:
    """Audit a source program end to end.

    Builds the unpruned CSSA form, runs the Section 6 lockset analysis
    (unless ``static_races`` overrides it — the soundness tests inject
    fabricated reports that way), then delegates to
    :func:`audit_program`.
    """
    from repro.session.session import Session

    session = session if session is not None else Session()
    form = session.analyze(source, prune=False)
    if static_races is None:
        static_races = detect_races(form.graph, form.structures)
    sites = collect_access_sites(form.graph)
    conflict_vars = {edge.var for edge in form.graph.conflict_edges}
    return audit_program(
        session.front_end(source),
        static_races,
        runs=runs,
        seed_base=seed_base,
        fuel=fuel,
        functions=functions,
        explore_states=explore_states,
        do_explore=do_explore,
        graph=form.graph,
        access_sites=sites,
        conflict_vars=conflict_vars,
    )
