"""Schedule-coverage metrics — how much of the behaviour space a set
of sampled runs actually visited.

Sampling N seeded schedules proves nothing by itself: the interesting
interleaving may simply never have been drawn.  These metrics quantify
the sample against two yardsticks:

* the **outcome space** — the exhaustive explorer's outcome classes
  (when bounded exploration ran): which fraction did the sampled runs
  reproduce, overall and reduced to print-level classes;
* the **conflict-ordering space** — for every pair of conflicting
  memory statements observed executing from different threads (at
  least one a write), the two possible execution orders: a sample that
  only ever saw the write first has not exercised the racy order, no
  matter how many runs it made.  The static side of the same coin is
  the PFG's conflict-edge variable set: ``conflict_var_coverage`` is
  the fraction of statically conflicting variables the runs observed
  in a dynamic conflict at all.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ScheduleCoverage"]


class ScheduleCoverage:
    """Aggregated coverage of one audit's sampled runs."""

    def __init__(self) -> None:
        self.runs = 0
        self.deadlock_runs = 0
        #: full outcome keys sampled (``Execution.output_key()``)
        self.sampled_outcomes: set[tuple] = set()
        #: (var, pc_lo, pc_hi) → subset of {"ab", "ba"} orders exercised
        self.orderings: dict[tuple, set[str]] = {}
        #: variables with at least one static PFG conflict edge
        self.static_conflict_vars: set[str] = set()
        #: exploration yardstick (None when exploration did not run)
        self.explored_outcomes: Optional[frozenset] = None
        self.explored_states: Optional[int] = None
        self.explore_complete: Optional[bool] = None

    # -- outcome coverage ---------------------------------------------------

    @staticmethod
    def _print_classes(outcomes) -> frozenset:
        return frozenset(
            tuple(
                e
                for e in o
                if e[0] in ("print", "deadlock", "error", "livelock")
            )
            for o in outcomes
        )

    @property
    def sampled_classes(self) -> int:
        """Distinct full outcome classes the sampled runs produced."""
        return len(self.sampled_outcomes)

    @property
    def sampled_print_classes(self) -> int:
        """Distinct print-level outcome classes sampled."""
        return len(self._print_classes(self.sampled_outcomes))

    @property
    def outcome_coverage(self) -> Optional[float]:
        """Fraction of explored outcome classes the sample reproduced."""
        if not self.explored_outcomes:
            return None
        hit = len(self.sampled_outcomes & self.explored_outcomes)
        return hit / len(self.explored_outcomes)

    # -- conflict-ordering coverage ------------------------------------------

    @property
    def conflict_pairs(self) -> int:
        """Conflicting statement pairs observed across all runs."""
        return len(self.orderings)

    @property
    def orderings_exercised(self) -> int:
        return sum(len(orders) for orders in self.orderings.values())

    @property
    def ordering_coverage(self) -> Optional[float]:
        """Exercised orders / (2 × observed conflict pairs)."""
        if not self.orderings:
            return None
        return self.orderings_exercised / (2 * len(self.orderings))

    @property
    def dynamic_conflict_vars(self) -> set[str]:
        return {var for var, _lo, _hi in self.orderings}

    @property
    def conflict_var_coverage(self) -> Optional[float]:
        """Statically conflicting variables seen in a dynamic conflict."""
        if not self.static_conflict_vars:
            return None
        hit = self.static_conflict_vars & self.dynamic_conflict_vars
        return len(hit) / len(self.static_conflict_vars)

    # -- rendering ------------------------------------------------------------

    def as_dict(self) -> dict:
        def _round(x: Optional[float]) -> Optional[float]:
            return None if x is None else round(x, 4)

        return {
            "runs": self.runs,
            "deadlock_runs": self.deadlock_runs,
            "sampled_outcome_classes": self.sampled_classes,
            "sampled_print_classes": self.sampled_print_classes,
            "explored_outcome_classes": (
                None
                if self.explored_outcomes is None
                else len(self.explored_outcomes)
            ),
            "explored_states": self.explored_states,
            "explore_complete": self.explore_complete,
            "outcome_coverage": _round(self.outcome_coverage),
            "conflict_pairs": self.conflict_pairs,
            "orderings_exercised": self.orderings_exercised,
            "ordering_coverage": _round(self.ordering_coverage),
            "static_conflict_vars": sorted(self.static_conflict_vars),
            "dynamic_conflict_vars": sorted(self.dynamic_conflict_vars),
            "conflict_var_coverage": _round(self.conflict_var_coverage),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScheduleCoverage({self.as_dict()})"
