"""Typed results — the frozen dataclasses every compile journey returns.

The redesigned facade (:mod:`repro.api`) and the compile service
(:mod:`repro.serve`) share one result vocabulary:

* :class:`CompileResult` — the generic shape: which stage ran, its
  JSON-ready ``artifacts`` payload, any ``diagnostics`` frames, the
  deterministic ``work`` counters the run cost, and the cache
  :class:`Provenance` that produced it.
* :class:`DiagnoseResult` — Section 6 findings (warnings + races) as
  diagnostics frames, with typed accessors.
* :class:`OptimizeResult` — the optimized listing plus pass statistics.

``as_dict()`` of a result **is** the server's wire payload: the
``result`` object of a successful response frame is bit-identical to
what the in-process facade returns, which is what the golden parity
suite in ``tests/serve`` asserts.  :func:`result_from_dict` rebuilds
the typed view on the client side.

Everything inside a result is plain JSON-serializable data (strings,
numbers, lists, dicts) — never live compiler objects.  Callers who
need the real :class:`~repro.cssame.builder.CSSAMEForm` or
:class:`~repro.opt.pipeline.OptimizationReport` hold a
:class:`~repro.session.session.Session` and ask it directly; results
are for transport, comparison, and rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro._version import __version__

__all__ = [
    "CompileResult",
    "DiagnoseResult",
    "OptimizeResult",
    "Provenance",
    "result_from_dict",
]


@dataclass(frozen=True)
class Provenance:
    """Where a result came from: keys, cache traffic, and version.

    ``cache_hits`` / ``cache_misses`` count the stage lookups of *this
    request only* (a warm request is all hits; a cold one all misses),
    so a client can tell a cached answer from a computed one without
    the two differing in payload.
    """

    source_key: str
    stage: str
    #: key of the terminal stage artifact (``None`` for journeys that
    #: are not a single stage-graph walk, e.g. ``audit``)
    artifact_key: Optional[str]
    cache_hits: int
    cache_misses: int
    version: str = __version__

    def as_dict(self) -> dict:
        return {
            "source_key": self.source_key,
            "stage": self.stage,
            "artifact_key": self.artifact_key,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Provenance":
        return cls(
            source_key=data["source_key"],
            stage=data["stage"],
            artifact_key=data.get("artifact_key"),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
            version=data.get("version", __version__),
        )


@dataclass(frozen=True)
class CompileResult:
    """One stage's outcome, ready for the wire.

    ``artifacts`` is the stage-specific payload (listings, DOT text,
    form metrics, ...); ``diagnostics`` is a tuple of finding frames
    (each a dict with at least ``kind`` and ``message``); ``work`` maps
    deterministic ``work.*`` counter names to operation counts.
    """

    stage: str
    artifacts: Mapping[str, Any]
    provenance: Provenance
    diagnostics: tuple = ()
    work: Mapping[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The exact ``result`` object of a server response frame."""
        return {
            "stage": self.stage,
            "artifacts": _plain(self.artifacts),
            "diagnostics": [dict(frame) for frame in self.diagnostics],
            "work": dict(self.work),
            "provenance": self.provenance.as_dict(),
        }

    @property
    def total_work(self) -> int:
        return sum(self.work.values())


@dataclass(frozen=True)
class DiagnoseResult(CompileResult):
    """Section 6 diagnostics: every finding is a frame in ``diagnostics``."""

    @property
    def warnings(self) -> list[dict]:
        """Sync-structure warning frames (everything that is not a race)."""
        return [f for f in self.diagnostics if f["kind"] != "race"]

    @property
    def races(self) -> list[dict]:
        return [f for f in self.diagnostics if f["kind"] == "race"]

    @property
    def clean(self) -> bool:
        """True when the program has no findings at all."""
        return not self.diagnostics


@dataclass(frozen=True)
class OptimizeResult(CompileResult):
    """The optimization pipeline's outcome."""

    @property
    def listing(self) -> str:
        return self.artifacts["listing"]

    @property
    def constants(self) -> int:
        return self.artifacts["constants"]

    @property
    def removed(self) -> int:
        return self.artifacts["removed"]

    @property
    def moved(self) -> int:
        return self.artifacts["moved"]


#: wire stage name → typed result class
_RESULT_CLASSES: dict[str, type] = {
    "diagnostics": DiagnoseResult,
    "optimized": OptimizeResult,
}


def result_class_for(stage: str) -> type:
    """The result dataclass a stage's payload decodes into."""
    return _RESULT_CLASSES.get(stage, CompileResult)


def result_from_dict(data: Mapping[str, Any]) -> CompileResult:
    """Rebuild a typed result from its wire payload (client side)."""
    stage = data["stage"]
    return result_class_for(stage)(
        stage=stage,
        artifacts=dict(data["artifacts"]),
        provenance=Provenance.from_dict(data["provenance"]),
        diagnostics=tuple(dict(f) for f in data.get("diagnostics", ())),
        work=dict(data.get("work", {})),
    )


def _plain(value: Any) -> Any:
    """Deep-copy ``value`` into plain dict/list/scalar JSON shapes."""
    if isinstance(value, Mapping):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value
