"""Algorithm A.1 — identification of mutex structures.

Phases, exactly as in the paper:

1. collect the ``Lock(L)`` / ``Unlock(L)`` nodes per lock variable;
2. build dominator and post-dominator trees;
3. pair every ``(n, x)`` with ``n DOM x`` and ``x PDOM n`` as a
   candidate mutex body;
4. discard candidates that contain another ``Lock(L)``/``Unlock(L)``
   node (condition 3 of Definition 3).

Ill-formed synchronization (unmatched locks, etc.) simply produces fewer
mutex bodies, which keeps every downstream analysis conservative — this
is the paper's deliberate deviation from Masticola's strict intervals.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.blocks import NodeKind
from repro.cfg.dominance import (
    DominatorTree,
    compute_dominators,
    compute_postdominators,
)
from repro.cfg.graph import FlowGraph
from repro.mutex.structures import MutexBody, MutexStructure

__all__ = ["identify_mutex_structures"]


def _body_nodes(
    graph: FlowGraph,
    domtree: DominatorTree,
    pdomtree: DominatorTree,
    n: int,
    x: int,
) -> frozenset[int]:
    """``SDOM⁻¹(n) ∩ PDOM⁻¹(x)``: strictly dominated by the Lock node
    and post-dominated by the Unlock node."""
    members = set()
    for block_id in domtree.dominated_by(n):
        if block_id == n:
            continue
        if pdomtree.dominates(x, block_id):
            members.add(block_id)
    return frozenset(members)


def identify_mutex_structures(
    graph: FlowGraph,
    domtree: Optional[DominatorTree] = None,
    pdomtree: Optional[DominatorTree] = None,
) -> dict[str, MutexStructure]:
    """Run Algorithm A.1; returns lock name → :class:`MutexStructure`."""
    if domtree is None:
        domtree = compute_dominators(graph)
    if pdomtree is None:
        pdomtree = compute_postdominators(graph)

    # Phase 1: lock/unlock nodes per lock variable.
    plock: dict[str, list[int]] = {}
    punlock: dict[str, list[int]] = {}
    for block in graph.nodes_of_kind(NodeKind.LOCK):
        plock.setdefault(block.stmts[0].lock_name, []).append(block.id)
    for block in graph.nodes_of_kind(NodeKind.UNLOCK):
        punlock.setdefault(block.stmts[0].lock_name, []).append(block.id)

    structures: dict[str, MutexStructure] = {}
    lock_vars = sorted(set(plock) | set(punlock))
    pairs_examined = 0
    for lock_name in lock_vars:
        structure = MutexStructure(lock_name)
        locks = plock.get(lock_name, [])
        unlocks = punlock.get(lock_name, [])
        all_ops = locks + unlocks

        # Phase 2: candidate pairing (Definition 3, conditions 1–2).
        candidates: list[tuple[int, int]] = []
        for n in locks:
            for x in unlocks:
                pairs_examined += 1
                if domtree.dominates(n, x) and pdomtree.dominates(x, n):
                    candidates.append((n, x))

        # Phase 3: drop candidates containing other Lock/Unlock(L) ops
        # (Definition 3, condition 3 / A.1 lines 19–26).
        for n, x in candidates:
            illegal = False
            for m in all_ops:
                if m == n or m == x:
                    continue
                if domtree.dominates(n, m) and pdomtree.dominates(x, m):
                    illegal = True
                    break
            if not illegal:
                nodes = _body_nodes(graph, domtree, pdomtree, n, x)
                structure.add(MutexBody(lock_name, n, x, nodes))
        structures[lock_name] = structure
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "identify-mutex",
            lock_vars=len(lock_vars),
            pairs_examined=pairs_examined,
            bodies=sum(len(s) for s in structures.values()),
            body_nodes=sum(
                len(b.nodes) for s in structures.values() for b in s.bodies
            ),
        )
    return structures
