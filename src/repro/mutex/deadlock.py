"""Static lock-order deadlock detection.

Masticola and Ryder's non-concurrency analysis — the basis of the
paper's mutex structures — was originally built for deadlock detection;
this module closes the circle with the classic lock-order-graph check:

* node = lock variable;
* edge ``L → M`` = some ``Lock(M)`` node executes while ``L`` is held
  (its lockset contains ``L``);
* a cycle whose edges can actually interleave (two witnesses in
  may-happen-in-parallel blocks) is a potential deadlock: thread A can
  hold ``L`` wanting ``M`` while thread B holds ``M`` wanting ``L``.

The exhaustive explorer (:mod:`repro.vm.explore`) can then *prove* the
risk real by producing a deadlocking schedule witness.
"""

from __future__ import annotations

from repro.cfg.blocks import NodeKind
from repro.cfg.concurrency import may_happen_in_parallel
from repro.cfg.graph import FlowGraph
from repro.mutex.lockset import compute_locksets
from repro.mutex.structures import MutexStructure

__all__ = ["DeadlockRisk", "detect_lock_order_cycles"]


class DeadlockRisk:
    """A potential deadlock: a lock-order cycle with concurrent witnesses."""

    __slots__ = ("cycle", "witnesses")

    def __init__(self, cycle: tuple[str, ...], witnesses: dict) -> None:
        #: lock names in acquisition-cycle order, e.g. ("A", "B")
        self.cycle = cycle
        #: (held, wanted) → acquiring block ids demonstrating the edge
        self.witnesses = witnesses

    def message(self) -> str:
        chain = " -> ".join(self.cycle + (self.cycle[0],))
        return (
            f"potential deadlock: lock acquisition cycle {chain} "
            f"(concurrent witnesses: "
            + ", ".join(
                f"hold {h} want {w} at B{bs[0]}"
                for (h, w), bs in sorted(self.witnesses.items())
            )
            + ")"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"DeadlockRisk({self.message()})"


def _order_edges(
    graph: FlowGraph,
    structures: dict[str, MutexStructure],
) -> dict[tuple[str, str], list[int]]:
    """(held, wanted) → blocks acquiring `wanted` while holding `held`."""
    locksets = compute_locksets(graph, structures)
    edges: dict[tuple[str, str], list[int]] = {}
    for block in graph.nodes_of_kind(NodeKind.LOCK):
        wanted = block.stmts[0].lock_name
        for held in locksets[block.id]:
            if held != wanted:
                edges.setdefault((held, wanted), []).append(block.id)
    return edges


def detect_lock_order_cycles(
    graph: FlowGraph,
    structures: dict[str, MutexStructure],
) -> list[DeadlockRisk]:
    """Find lock-order cycles whose edges can interleave."""
    edges = _order_edges(graph, structures)
    adjacency: dict[str, set[str]] = {}
    for held, wanted in edges:
        adjacency.setdefault(held, set()).add(wanted)

    risks: list[DeadlockRisk] = []
    reported: set[frozenset[str]] = set()

    # Enumerate simple cycles with a bounded DFS (lock graphs are tiny).
    def dfs(start: str, node: str, path: list[str]) -> None:
        for succ in sorted(adjacency.get(node, ())):
            if succ == start and len(path) >= 2:
                cycle = tuple(path)
                key = frozenset(cycle)
                if key in reported:
                    continue
                witnesses = {
                    (cycle[i], cycle[(i + 1) % len(cycle)]): edges[
                        (cycle[i], cycle[(i + 1) % len(cycle)])
                    ]
                    for i in range(len(cycle))
                }
                if _cycle_can_interleave(graph, witnesses):
                    reported.add(key)
                    risks.append(DeadlockRisk(cycle, witnesses))
            elif succ not in path and succ > start:
                # `succ > start` canonicalizes cycle enumeration.
                dfs(start, succ, path + [succ])

    for start in sorted(adjacency):
        dfs(start, start, [start])
    return risks


def _cycle_can_interleave(graph: FlowGraph, witnesses: dict) -> bool:
    """At least two distinct edges must have MHP witnesses — otherwise
    the nesting is sequential and cannot deadlock."""
    items = list(witnesses.items())
    for i, (_edge_a, blocks_a) in enumerate(items):
        for _edge_b, blocks_b in items[i + 1 :]:
            for a in blocks_a:
                for b in blocks_b:
                    if may_happen_in_parallel(graph.blocks[a], graph.blocks[b]):
                        return True
    return False
