"""Section 6 synchronization diagnostics.

The paper's prototype reports warnings for unsafe synchronization
structure discovered as a by-product of Algorithm A.1:

* ``Lock``/``Unlock`` nodes that are not part of any mutex body
  (unmatched or irreducible locking);
* improperly nested mutex bodies of *different* locks (bodies that
  overlap without one containing the other, e.g.
  ``lock(A); lock(B); unlock(A); unlock(B)``).
"""

from __future__ import annotations

from repro.cfg.blocks import NodeKind
from repro.cfg.graph import FlowGraph
from repro.mutex.structures import MutexStructure

__all__ = ["SyncWarning", "check_synchronization"]


class SyncWarning:
    """One diagnostic: a kind tag, a message, and the blocks involved."""

    __slots__ = ("kind", "message", "blocks")

    def __init__(self, kind: str, message: str, blocks: tuple[int, ...]) -> None:
        #: "unmatched-lock" | "unmatched-unlock" | "improper-nesting"
        self.kind = kind
        self.message = message
        self.blocks = blocks

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyncWarning({self.kind}: {self.message})"


def check_synchronization(
    graph: FlowGraph,
    structures: dict[str, MutexStructure],
) -> list[SyncWarning]:
    """Run all synchronization-structure checks; returns the warnings."""
    warnings: list[SyncWarning] = []
    warnings.extend(_unmatched_ops(graph, structures))
    warnings.extend(_improper_nesting(structures))
    return warnings


def _unmatched_ops(
    graph: FlowGraph, structures: dict[str, MutexStructure]
) -> list[SyncWarning]:
    matched_locks: set[int] = set()
    matched_unlocks: set[int] = set()
    for structure in structures.values():
        for body in structure.bodies:
            matched_locks.add(body.lock_node)
            matched_unlocks.add(body.unlock_node)

    out: list[SyncWarning] = []
    for block in graph.nodes_of_kind(NodeKind.LOCK):
        if block.id not in matched_locks:
            name = block.stmts[0].lock_name
            out.append(
                SyncWarning(
                    "unmatched-lock",
                    f"lock({name}) at B{block.id} does not delimit any mutex body",
                    (block.id,),
                )
            )
    for block in graph.nodes_of_kind(NodeKind.UNLOCK):
        if block.id not in matched_unlocks:
            name = block.stmts[0].lock_name
            out.append(
                SyncWarning(
                    "unmatched-unlock",
                    f"unlock({name}) at B{block.id} does not delimit any mutex body",
                    (block.id,),
                )
            )
    return out


def _improper_nesting(structures: dict[str, MutexStructure]) -> list[SyncWarning]:
    out: list[SyncWarning] = []
    items = sorted(structures.items())
    for i, (name_a, struct_a) in enumerate(items):
        for name_b, struct_b in items[i + 1 :]:
            for body_a in struct_a.bodies:
                # Compare the *full* protected regions (lock node + body).
                region_a = body_a.nodes | {body_a.lock_node}
                for body_b in struct_b.bodies:
                    region_b = body_b.nodes | {body_b.lock_node}
                    overlap = region_a & region_b
                    if not overlap:
                        continue
                    if region_a <= region_b or region_b <= region_a:
                        continue
                    out.append(
                        SyncWarning(
                            "improper-nesting",
                            f"mutex bodies of {name_a} (B{body_a.lock_node}) and "
                            f"{name_b} (B{body_b.lock_node}) overlap without nesting",
                            (body_a.lock_node, body_b.lock_node),
                        )
                    )
    return out
