"""Mutual exclusion analysis (paper Section 3).

* :mod:`repro.mutex.structures` — mutex bodies and mutex structures
  (Definitions 3–4).
* :mod:`repro.mutex.identify` — Algorithm A.1: identify all mutex
  structures in the PFG.
* :mod:`repro.mutex.lockset` — locks guaranteed held at each node.
* :mod:`repro.mutex.warnings` — Section 6 diagnostics: unmatched
  Lock/Unlock operations, improperly nested mutex bodies.
* :mod:`repro.mutex.races` — lockset-style detection of shared
  variables protected inconsistently (potential data races).
"""

from repro.mutex.structures import MutexBody, MutexStructure
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.lockset import compute_locksets
from repro.mutex.warnings import SyncWarning, check_synchronization
from repro.mutex.races import RaceReport, detect_races
from repro.mutex.deadlock import DeadlockRisk, detect_lock_order_cycles

__all__ = [
    "MutexBody",
    "DeadlockRisk",
    "MutexStructure",
    "RaceReport",
    "SyncWarning",
    "check_synchronization",
    "compute_locksets",
    "detect_lock_order_cycles",
    "detect_races",
    "identify_mutex_structures",
]
