"""Lockset-style data race detection (paper Section 6).

"If modifications to a variable are not always protected by the same
lock, the compiler will warn the user about a potential data race."

For every shared variable we examine each pair of may-happen-in-parallel
accesses with at least one write.  If the locksets held at the two
accesses are disjoint, no common lock serializes them — a potential
race.  (If they share a lock, the pair is serialized by mutual
exclusion.)
"""

from __future__ import annotations

from repro.cfg.concurrency import may_happen_in_parallel
from repro.cfg.conflicts import (
    collect_access_sites,
    is_memory_access,
    shared_variables,
)
from repro.cfg.graph import FlowGraph
from repro.mutex.lockset import compute_locksets
from repro.mutex.structures import MutexStructure

__all__ = ["RaceReport", "detect_races"]


class RaceReport:
    """A potential data race on ``var`` between two concurrent accesses."""

    __slots__ = ("var", "block_a", "block_b", "kind", "locks_a", "locks_b")

    def __init__(
        self,
        var: str,
        block_a: int,
        block_b: int,
        kind: str,
        locks_a: frozenset[str],
        locks_b: frozenset[str],
    ) -> None:
        self.var = var
        self.block_a = block_a
        self.block_b = block_b
        #: "write-write" or "write-read"
        self.kind = kind
        self.locks_a = locks_a
        self.locks_b = locks_b

    def message(self) -> str:
        return (
            f"potential {self.kind} race on '{self.var}': "
            f"B{self.block_a} holds {set(self.locks_a) or '{}'} while "
            f"B{self.block_b} holds {set(self.locks_b) or '{}'} (no common lock)"
        )

    def key(self) -> tuple:
        """Stable identity (variable, ordered blocks, kind) — what the
        dynamic audit joins dynamic findings against."""
        a, b = sorted((self.block_a, self.block_b))
        return (self.var, a, b, self.kind)

    def as_dict(self) -> dict:
        """JSON-serializable form (``repro audit --json``)."""
        return {
            "var": self.var,
            "block_a": self.block_a,
            "block_b": self.block_b,
            "kind": self.kind,
            "locks_a": sorted(self.locks_a),
            "locks_b": sorted(self.locks_b),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"RaceReport({self.message()})"


def detect_races(
    graph: FlowGraph,
    structures: dict[str, MutexStructure],
    use_ordering: bool = True,
) -> list[RaceReport]:
    """Report every MHP conflicting access pair with disjoint locksets.

    Works on plain or CSSA-form graphs: SSA merge terms are ignored
    (see :func:`repro.cfg.conflicts.is_memory_access`).  With
    ``use_ordering`` (default), pairs serialized by event or one-shot
    barrier synchronization — the must-happen-before relation of
    :class:`repro.cssame.ordering.EventOrdering` — are not reported.
    """
    locksets = compute_locksets(graph, structures)
    sites = collect_access_sites(graph)
    shared = shared_variables(graph, sites)

    ordering = None
    if use_ordering:
        from repro.cssame.ordering import EventOrdering

        candidate = EventOrdering(graph)
        if candidate.set_nodes or candidate.barrier_nodes:
            ordering = candidate

    reports: list[RaceReport] = []
    seen: set[tuple[str, int, int, str]] = set()
    for var in sorted(shared):
        accesses = [s for s in sites.get(var, []) if is_memory_access(s)]
        writes = [s for s in accesses if s.is_real_def]
        for w in writes:
            w_block = graph.blocks[w.block_id]
            for other in accesses:
                if other.stmt is w.stmt and other.is_def:
                    continue
                if not may_happen_in_parallel(w_block, graph.blocks[other.block_id]):
                    continue
                if locksets[w.block_id] & locksets[other.block_id]:
                    continue  # serialized by a common lock
                if ordering is not None and (
                    ordering.must_precede(w.block_id, other.block_id)
                    or ordering.must_precede(other.block_id, w.block_id)
                ):
                    continue  # serialized by events/barriers
                kind = "write-write" if other.is_def else "write-read"
                a, b = sorted((w.block_id, other.block_id))
                key = (var, a, b, kind)
                if key in seen:
                    continue
                seen.add(key)
                reports.append(
                    RaceReport(
                        var,
                        w.block_id,
                        other.block_id,
                        kind,
                        locksets[w.block_id],
                        locksets[other.block_id],
                    )
                )
    return reports
