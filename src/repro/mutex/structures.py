"""Mutex bodies and mutex structures (paper Definitions 3–4)."""

from __future__ import annotations

from typing import Iterator

from repro.obs.events import MutexBodyDiscovered
from repro.obs.trace import get_tracer

__all__ = ["MutexBody", "MutexStructure"]


class MutexBody:
    """A single-entry single-exit region protected by one lock.

    ``B_L(n, x)`` with ``n = Lock(L)`` and ``x = Unlock(L)``:

    * ``n`` dominates ``x`` and ``x`` post-dominates ``n``;
    * ``nodes`` = blocks strictly dominated by ``n`` and post-dominated
      by ``x`` — so ``x ∈ nodes`` and ``n ∉ nodes``;
    * no other ``Lock(L)``/``Unlock(L)`` node lies inside.
    """

    __slots__ = ("lock_name", "lock_node", "unlock_node", "nodes")

    def __init__(
        self,
        lock_name: str,
        lock_node: int,
        unlock_node: int,
        nodes: frozenset[int],
    ) -> None:
        self.lock_name = lock_name
        self.lock_node = lock_node
        self.unlock_node = unlock_node
        self.nodes = nodes

    def contains(self, block_id: int) -> bool:
        return block_id in self.nodes

    def interior_nodes(self) -> frozenset[int]:
        """Body nodes excluding the Unlock node itself."""
        return self.nodes - {self.unlock_node}

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MutexBody({self.lock_name}, lock=B{self.lock_node}, "
            f"unlock=B{self.unlock_node}, |nodes|={len(self.nodes)})"
        )


class MutexStructure:
    """All mutex bodies for one lock variable (Definition 4)."""

    __slots__ = ("lock_name", "bodies", "_block_index")

    def __init__(self, lock_name: str) -> None:
        self.lock_name = lock_name
        self.bodies: list[MutexBody] = []
        self._block_index: dict[int, MutexBody] | None = None

    def add(self, body: MutexBody) -> None:
        self.bodies.append(body)
        self._block_index = None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                MutexBodyDiscovered(
                    body.lock_name,
                    body.lock_node,
                    body.unlock_node,
                    len(body.nodes),
                )
            )
            tracer.counter("mutex.bodies_discovered").inc()

    def body_of_block(self, block_id: int) -> MutexBody | None:
        """The body containing ``block_id``, if any.

        Bodies of the same lock are pairwise disjoint (overlap would put
        one body's Lock/Unlock node inside the other, which Algorithm
        A.1 rejects), so at most one body matches.  The block → body
        index is cached (Algorithm A.3 queries it per π argument).
        """
        if self._block_index is None:
            self._block_index = {
                block_id: body
                for body in self.bodies
                for block_id in body.nodes
            }
        return self._block_index.get(block_id)

    def __iter__(self) -> Iterator[MutexBody]:
        return iter(self.bodies)

    def __len__(self) -> int:
        return len(self.bodies)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MutexStructure({self.lock_name}, bodies={len(self.bodies)})"
