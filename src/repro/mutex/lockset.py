"""Locks guaranteed held at each PFG node.

A node holds lock ``L`` when it belongs to some mutex body of ``L``'s
mutex structure.  Because mutex bodies are single-entry/single-exit
regions whose Lock dominates and Unlock post-dominates every member,
membership is a *must* property: every execution reaching the node holds
the lock.
"""

from __future__ import annotations

from repro.cfg.graph import FlowGraph
from repro.mutex.structures import MutexStructure

__all__ = ["compute_locksets"]


def compute_locksets(
    graph: FlowGraph,
    structures: dict[str, MutexStructure],
) -> list[frozenset[str]]:
    """Per block id, the set of lock names guaranteed held there.

    The Unlock node itself is *not* counted as holding the lock (it is
    the release point), while the Lock node is (the paper's mutex body
    excludes ``n`` but execution inside ``n`` already owns the lock;
    for diagnostics what matters is the protected interior, so we count
    the body's interior nodes plus the Lock node itself).
    """
    locksets: list[set[str]] = [set() for _ in graph.blocks]
    for lock_name, structure in structures.items():
        for body in structure.bodies:
            locksets[body.lock_node].add(lock_name)
            for block_id in body.nodes:
                if block_id != body.unlock_node:
                    locksets[block_id].add(lock_name)
    return [frozenset(s) for s in locksets]
