"""Recursive-descent parser for the toy parallel language.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = option)::

    program    = { stmt } EOF
    stmt       = decl | assign | if | while | cobegin | lock | unlock
               | set | wait | print | callstmt | skip
    decl       = "private" IDENT [ "=" expr ] ";"
    assign     = IDENT "=" expr ";"
    if         = "if" "(" expr ")" block [ "else" block ]
    while      = "while" "(" expr ")" block
    block      = "{" { stmt } "}" | "begin" { stmt } "end" | stmt
    cobegin    = "cobegin" thread { thread } "coend"
    thread     = [ IDENT ":" ] "begin" { stmt } "end"
               | [ IDENT ":" ] "{" { stmt } "}"
    lock       = "lock" "(" IDENT ")" ";"
    unlock     = "unlock" "(" IDENT ")" ";"
    set        = "set" "(" IDENT ")" ";"
    wait       = "wait" "(" IDENT ")" ";"
    print      = "print" "(" expr { "," expr } ")" ";"
    callstmt   = IDENT "(" [ expr { "," expr } ] ")" ";"
    skip       = "skip" ";"

    expr       = or
    or         = and { "||" and }
    and        = cmp { "&&" cmp }
    cmp        = add [ ("=="|"!="|"<"|"<="|">"|">=") add ]
    add        = mul { ("+"|"-") mul }
    mul        = unary { ("*"|"/"|"%") unary }
    unary      = ("-"|"!") unary | primary
    primary    = INT | IDENT | IDENT "(" [ expr { "," expr } ] ")"
               | "(" expr ")"

Operator semantics are C-like over integers; comparisons and logical
operators yield 0/1.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import Lexer, Token
from repro.lang.tokens import TokenKind as T

__all__ = ["Parser", "parse"]

_CMP_OPS = {T.EQ, T.NE, T.LT, T.LE, T.GT, T.GE}
_ADD_OPS = {T.PLUS, T.MINUS}
_MUL_OPS = {T.STAR, T.SLASH, T.PERCENT}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, source: str) -> None:
        self._tokens = list(Lexer(source).tokens())
        self._pos = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _at(self, *kinds: T) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not T.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: T, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.value
            raise ParseError(
                f"expected {expected!r}, found {tok.text or tok.kind.value!r}",
                tok.location,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the whole buffer; raises :class:`ParseError` on junk."""
        loc = self._peek().location
        stmts: list[ast.Stmt] = []
        while not self._at(T.EOF):
            stmts.append(self.parse_stmt())
        return ast.Program(ast.Block(stmts, loc), loc)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        kind = tok.kind
        if kind is T.KW_PRIVATE:
            return self._parse_decl()
        if kind is T.KW_IF:
            return self._parse_if()
        if kind is T.KW_WHILE:
            return self._parse_while()
        if kind is T.KW_COBEGIN:
            return self._parse_cobegin()
        if kind is T.KW_LOCK:
            return self._parse_sync(ast.LockStmt)
        if kind is T.KW_UNLOCK:
            return self._parse_sync(ast.UnlockStmt)
        if kind is T.KW_SET:
            return self._parse_sync(ast.SetStmt)
        if kind is T.KW_WAIT:
            return self._parse_sync(ast.WaitStmt)
        if kind is T.KW_BARRIER:
            return self._parse_sync(ast.BarrierStmt)
        if kind is T.KW_DOALL:
            return self._parse_doall()
        if kind is T.KW_PRINT:
            return self._parse_print()
        if kind is T.KW_SKIP:
            self._advance()
            self._expect(T.SEMI)
            return ast.Skip(tok.location)
        if kind is T.IDENT:
            if self._peek(1).kind is T.ASSIGN:
                return self._parse_assign()
            if self._peek(1).kind is T.LPAREN:
                return self._parse_call_stmt()
            raise ParseError(
                f"expected '=' or '(' after identifier {tok.text!r}",
                self._peek(1).location,
            )
        raise ParseError(
            f"unexpected token {tok.text or tok.kind.value!r} at statement start",
            tok.location,
        )

    def _parse_decl(self) -> ast.VarDecl:
        loc = self._expect(T.KW_PRIVATE).location
        name = self._expect(T.IDENT, "variable name").text
        init = None
        if self._at(T.ASSIGN):
            self._advance()
            init = self.parse_expr()
        self._expect(T.SEMI)
        return ast.VarDecl(name, init, loc)

    def _parse_assign(self) -> ast.Assign:
        name_tok = self._expect(T.IDENT)
        self._expect(T.ASSIGN)
        value = self.parse_expr()
        self._expect(T.SEMI)
        return ast.Assign(name_tok.text, value, name_tok.location)

    def _parse_if(self) -> ast.IfStmt:
        loc = self._expect(T.KW_IF).location
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        then_block = self._parse_block()
        else_block = None
        if self._at(T.KW_ELSE):
            self._advance()
            else_block = self._parse_block()
        return ast.IfStmt(cond, then_block, else_block, loc)

    def _parse_while(self) -> ast.WhileStmt:
        loc = self._expect(T.KW_WHILE).location
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        body = self._parse_block()
        return ast.WhileStmt(cond, body, loc)

    def _parse_block(self) -> ast.Block:
        """Brace block, begin/end block, or a single statement."""
        tok = self._peek()
        if tok.kind is T.LBRACE:
            self._advance()
            stmts = []
            while not self._at(T.RBRACE):
                if self._at(T.EOF):
                    raise ParseError("unterminated '{' block", tok.location)
                stmts.append(self.parse_stmt())
            self._advance()
            return ast.Block(stmts, tok.location)
        if tok.kind is T.KW_BEGIN:
            self._advance()
            stmts = []
            while not self._at(T.KW_END):
                if self._at(T.EOF):
                    raise ParseError("unterminated 'begin' block", tok.location)
                stmts.append(self.parse_stmt())
            self._advance()
            return ast.Block(stmts, tok.location)
        stmt = self.parse_stmt()
        return ast.Block([stmt], stmt.location)

    def _parse_cobegin(self) -> ast.Cobegin:
        loc = self._expect(T.KW_COBEGIN).location
        threads: list[ast.ThreadBlock] = []
        while not self._at(T.KW_COEND):
            if self._at(T.EOF):
                raise ParseError("unterminated 'cobegin'", loc)
            threads.append(self._parse_thread())
        self._advance()
        if not threads:
            raise ParseError("cobegin must contain at least one thread", loc)
        return ast.Cobegin(threads, loc)

    def _parse_thread(self) -> ast.ThreadBlock:
        tok = self._peek()
        label = None
        if tok.kind is T.IDENT and self._peek(1).kind is T.COLON:
            label = self._advance().text
            self._advance()  # ':'
        body_tok = self._peek()
        if body_tok.kind not in (T.KW_BEGIN, T.LBRACE):
            raise ParseError(
                "expected 'begin' or '{' to start a cobegin thread",
                body_tok.location,
            )
        body = self._parse_block()
        return ast.ThreadBlock(label, body, tok.location)

    def _parse_doall(self) -> ast.DoAll:
        """``doall i = <int> to <int> block`` — bounds must be literals
        (possibly negated), since the front-end expands the loop
        statically into a cobegin."""
        loc = self._expect(T.KW_DOALL).location
        var = self._expect(T.IDENT, "loop variable").text
        self._expect(T.ASSIGN)
        low = self._parse_int_literal()
        self._expect(T.KW_TO)
        high = self._parse_int_literal()
        body = self._parse_block()
        return ast.DoAll(var, low, high, body, loc)

    def _parse_int_literal(self) -> int:
        negative = False
        if self._at(T.MINUS):
            self._advance()
            negative = True
        tok = self._expect(T.INT, "integer literal (doall bounds are static)")
        value = int(tok.text)
        return -value if negative else value

    def _parse_sync(self, ctor) -> ast.Stmt:
        tok = self._advance()
        self._expect(T.LPAREN)
        name = self._expect(T.IDENT, "synchronization variable").text
        self._expect(T.RPAREN)
        self._expect(T.SEMI)
        return ctor(name, tok.location)

    def _parse_print(self) -> ast.PrintStmt:
        loc = self._expect(T.KW_PRINT).location
        self._expect(T.LPAREN)
        args = [self.parse_expr()]
        while self._at(T.COMMA):
            self._advance()
            args.append(self.parse_expr())
        self._expect(T.RPAREN)
        self._expect(T.SEMI)
        return ast.PrintStmt(args, loc)

    def _parse_call_stmt(self) -> ast.CallStmt:
        name_tok = self._expect(T.IDENT)
        args = self._parse_call_args()
        self._expect(T.SEMI)
        return ast.CallStmt(name_tok.text, args, name_tok.location)

    def _parse_call_args(self) -> list[ast.Expr]:
        self._expect(T.LPAREN)
        args: list[ast.Expr] = []
        if not self._at(T.RPAREN):
            args.append(self.parse_expr())
            while self._at(T.COMMA):
                self._advance()
                args.append(self.parse_expr())
        self._expect(T.RPAREN)
        return args

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(T.OR):
            op = self._advance()
            right = self._parse_and()
            left = ast.BinOp("||", left, right, op.location)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_cmp()
        while self._at(T.AND):
            op = self._advance()
            right = self._parse_cmp()
            left = ast.BinOp("&&", left, right, op.location)
        return left

    def _parse_cmp(self) -> ast.Expr:
        left = self._parse_add()
        if self._peek().kind in _CMP_OPS:
            op = self._advance()
            right = self._parse_add()
            return ast.BinOp(op.text, left, right, op.location)
        return left

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while self._peek().kind in _ADD_OPS:
            op = self._advance()
            right = self._parse_mul()
            left = ast.BinOp(op.text, left, right, op.location)
        return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in _MUL_OPS:
            op = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(op.text, left, right, op.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (T.MINUS, T.NOT):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(tok.text, operand, tok.location)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is T.INT:
            self._advance()
            return ast.IntLit(int(tok.text), tok.location)
        if tok.kind is T.IDENT:
            self._advance()
            if self._at(T.LPAREN):
                args = self._parse_call_args()
                return ast.CallExpr(tok.text, args, tok.location)
            return ast.Name(tok.text, tok.location)
        if tok.kind is T.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(T.RPAREN)
            return inner
        raise ParseError(
            f"unexpected token {tok.text or tok.kind.value!r} in expression",
            tok.location,
        )


def parse(source: str) -> ast.Program:
    """Parse ``source`` into an AST :class:`~repro.lang.ast_nodes.Program`."""
    return Parser(source).parse_program()
