"""Front-end for the explicitly parallel toy language.

The paper's prototype used the SUIF C front-end with ``cobegin/coend``
macros.  We build an equivalent stand-alone front-end: a small imperative
language with integer variables, structured control flow, ``cobegin /
coend`` parallel sections, mutex synchronization (``lock``/``unlock``),
event synchronization (``set``/``wait``) and opaque calls.

Public surface:

* :func:`repro.lang.parse` — source text to AST.
* :class:`repro.lang.Parser`, :class:`repro.lang.Lexer` — the machinery.
* :mod:`repro.lang.ast_nodes` — the AST node classes.
* :func:`repro.lang.pretty.format_program` — AST back to source.
"""

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Block,
    CallExpr,
    CallStmt,
    Cobegin,
    IntLit,
    LockStmt,
    Name,
    PrintStmt,
    Program,
    SetStmt,
    Skip,
    ThreadBlock,
    UnaryOp,
    UnlockStmt,
    VarDecl,
    WaitStmt,
    WhileStmt,
    IfStmt,
)
from repro.lang.lexer import Lexer, Token, TokenKind
from repro.lang.parser import Parser, parse
from repro.lang.pretty import format_expr, format_program

__all__ = [
    "Assign",
    "BinOp",
    "Block",
    "CallExpr",
    "CallStmt",
    "Cobegin",
    "IfStmt",
    "IntLit",
    "Lexer",
    "LockStmt",
    "Name",
    "Parser",
    "PrintStmt",
    "Program",
    "SetStmt",
    "Skip",
    "ThreadBlock",
    "Token",
    "TokenKind",
    "UnaryOp",
    "UnlockStmt",
    "VarDecl",
    "WaitStmt",
    "WhileStmt",
    "format_expr",
    "format_program",
    "parse",
]
