"""Hand-written lexer for the toy parallel language.

The lexer is a single forward scan producing :class:`Token` objects with
1-based source positions.  Comments come in two forms, matching the
paper's listings: ``/* ... */`` block comments and ``// ...`` line
comments.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, ONE_CHAR_OPS, TWO_CHAR_OPS, TokenKind

__all__ = ["Lexer", "Token", "TokenKind", "tokenize"]


class Token:
    """A single lexeme with its kind, text and source location."""

    __slots__ = ("kind", "text", "location")

    def __init__(self, kind: TokenKind, text: str, location: SourceLocation) -> None:
        self.kind = kind
        self.text = text
        self.location = location

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.location})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.kind == other.kind
            and self.text == other.text
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.text))


class Lexer:
    """Tokenizes a source string.

    Usage::

        tokens = list(Lexer("a = 1;").tokens())
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level scanning helpers ------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return "\0"

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and both comment styles."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    # -- public API -----------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with a single EOF."""
        while True:
            self._skip_trivia()
            loc = self._location()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", loc)
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._lex_int(loc)
            elif ch.isalpha() or ch == "_":
                yield self._lex_word(loc)
            else:
                yield self._lex_operator(loc)

    def _lex_int(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        text = self.source[start : self.pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(f"malformed number starting with {text!r}", loc)
        return Token(TokenKind.INT, text, loc)

    def _lex_word(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text.lower())
        if kind is not None:
            return Token(kind, text, loc)
        return Token(TokenKind.IDENT, text, loc)

    def _lex_operator(self, loc: SourceLocation) -> Token:
        two = self.source[self.pos : self.pos + 2]
        if two in TWO_CHAR_OPS:
            self._advance(2)
            return Token(TWO_CHAR_OPS[two], two, loc)
        one = self._peek()
        if one in ONE_CHAR_OPS:
            self._advance()
            return Token(ONE_CHAR_OPS[one], one, loc)
        raise LexError(f"unexpected character {one!r}", loc)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper returning the full token list (EOF included)."""
    return list(Lexer(source).tokens())
