"""Pretty printer: AST back to concrete syntax.

``parse(format_program(parse(src)))`` is the identity up to whitespace,
which the test suite checks property-style.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

__all__ = ["format_expr", "format_program", "format_stmt"]

#: Binding strength of each binary operator; higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}
_UNARY_PRECEDENCE = 6

#: Operators the grammar does not chain: ``a < b < c`` is a parse error.
_NON_ASSOCIATIVE = {"==", "!=", "<", "<=", ">", ">="}


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression, adding parentheses only where required."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.UnaryOp):
        inner = format_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        if parent_prec > _UNARY_PRECEDENCE:
            return f"({text})"
        return text
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        # Comparisons are non-associative in the grammar (`a < b < c`
        # does not parse), so both operands need parens at equal
        # precedence; other operators are left-associative, so only the
        # right side does.
        left_prec = prec + 1 if expr.op in _NON_ASSOCIATIVE else prec
        left = format_expr(expr.left, left_prec)
        right = format_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node: {expr!r}")


def _format_block(block: ast.Block, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    lines.append(pad + "{")
    for stmt in block.stmts:
        _format_stmt(stmt, indent + 1, lines)
    lines.append(pad + "}")


def _format_stmt(stmt: ast.Stmt, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            lines.append(f"{pad}private {stmt.ident} = {format_expr(stmt.init)};")
        else:
            lines.append(f"{pad}private {stmt.ident};")
    elif isinstance(stmt, ast.Assign):
        lines.append(f"{pad}{stmt.target} = {format_expr(stmt.value)};")
    elif isinstance(stmt, ast.IfStmt):
        lines.append(f"{pad}if ({format_expr(stmt.cond)})")
        _format_block(stmt.then_block, indent, lines)
        if stmt.else_block is not None:
            lines.append(f"{pad}else")
            _format_block(stmt.else_block, indent, lines)
    elif isinstance(stmt, ast.WhileStmt):
        lines.append(f"{pad}while ({format_expr(stmt.cond)})")
        _format_block(stmt.body, indent, lines)
    elif isinstance(stmt, ast.Cobegin):
        lines.append(f"{pad}cobegin")
        for i, thread in enumerate(stmt.threads):
            label = thread.label if thread.label is not None else f"T{i}"
            lines.append(f"{pad}{label}: begin")
            for s in thread.body.stmts:
                _format_stmt(s, indent + 1, lines)
            lines.append(f"{pad}end")
        lines.append(f"{pad}coend")
    elif isinstance(stmt, ast.LockStmt):
        lines.append(f"{pad}lock({stmt.lock_name});")
    elif isinstance(stmt, ast.UnlockStmt):
        lines.append(f"{pad}unlock({stmt.lock_name});")
    elif isinstance(stmt, ast.SetStmt):
        lines.append(f"{pad}set({stmt.event_name});")
    elif isinstance(stmt, ast.WaitStmt):
        lines.append(f"{pad}wait({stmt.event_name});")
    elif isinstance(stmt, ast.PrintStmt):
        args = ", ".join(format_expr(a) for a in stmt.args)
        lines.append(f"{pad}print({args});")
    elif isinstance(stmt, ast.CallStmt):
        args = ", ".join(format_expr(a) for a in stmt.args)
        lines.append(f"{pad}{stmt.func}({args});")
    elif isinstance(stmt, ast.BarrierStmt):
        lines.append(f"{pad}barrier({stmt.barrier_name});")
    elif isinstance(stmt, ast.DoAll):
        lines.append(f"{pad}doall {stmt.var} = {stmt.low} to {stmt.high}")
        _format_block(stmt.body, indent, lines)
    elif isinstance(stmt, ast.Skip):
        lines.append(f"{pad}skip;")
    else:
        raise TypeError(f"unknown statement node: {stmt!r}")


def format_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render a single statement (and any nested blocks)."""
    lines: list[str] = []
    _format_stmt(stmt, indent, lines)
    return "\n".join(lines)


def format_program(program: ast.Program) -> str:
    """Render a whole program as re-parseable source text."""
    lines: list[str] = []
    for stmt in program.body.stmts:
        _format_stmt(stmt, 0, lines)
    return "\n".join(lines) + "\n"
