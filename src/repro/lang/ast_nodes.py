"""AST node classes for the toy parallel language.

The AST is the immutable front-end output.  Analyses and optimizations
never run on it directly; :mod:`repro.ir.lower` converts it into the
mutable structured IR.

Expression nodes
    :class:`IntLit`, :class:`Name`, :class:`BinOp`, :class:`UnaryOp`,
    :class:`CallExpr`.

Statement nodes
    :class:`VarDecl`, :class:`Assign`, :class:`IfStmt`,
    :class:`WhileStmt`, :class:`Cobegin` (with :class:`ThreadBlock`
    children), :class:`LockStmt`, :class:`UnlockStmt`, :class:`SetStmt`,
    :class:`WaitStmt`, :class:`PrintStmt`, :class:`CallStmt`,
    :class:`Skip`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SourceLocation

__all__ = [
    "Assign",
    "BarrierStmt",
    "BinOp",
    "Block",
    "CallExpr",
    "CallStmt",
    "Cobegin",
    "DoAll",
    "Expr",
    "IfStmt",
    "IntLit",
    "LockStmt",
    "Name",
    "Node",
    "PrintStmt",
    "Program",
    "SetStmt",
    "Skip",
    "Stmt",
    "ThreadBlock",
    "UnaryOp",
    "UnlockStmt",
    "VarDecl",
    "WaitStmt",
    "WhileStmt",
]

_NOWHERE = SourceLocation(0, 0)


class Node:
    """Base class for every AST node; carries a source location."""

    __slots__ = ("location",)

    def __init__(self, location: SourceLocation | None = None) -> None:
        self.location = location or _NOWHERE


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expression nodes."""

    __slots__ = ()


class IntLit(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.value = int(value)

    def __repr__(self) -> str:
        return f"IntLit({self.value})"


class Name(Expr):
    """A variable reference."""

    __slots__ = ("ident",)

    def __init__(self, ident: str, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.ident = ident

    def __repr__(self) -> str:
        return f"Name({self.ident!r})"


class BinOp(Expr):
    """A binary operation; ``op`` is the operator's source spelling."""

    __slots__ = ("op", "left", "right")

    def __init__(
        self,
        op: str,
        left: Expr,
        right: Expr,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


class UnaryOp(Expr):
    """A unary operation: ``-`` (negation) or ``!`` (logical not)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"


class CallExpr(Expr):
    """A call used as a value, e.g. ``g(a)``.

    Calls are opaque to the static analyses: the result is unknown
    (lattice bottom) and the callee is assumed pure when used inside an
    expression.  Side-effecting calls appear as :class:`CallStmt`.
    """

    __slots__ = ("func", "args")

    def __init__(
        self,
        func: str,
        args: Sequence[Expr],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.func = func
        self.args = list(args)

    def __repr__(self) -> str:
        return f"CallExpr({self.func!r}, {self.args!r})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statement nodes."""

    __slots__ = ()


class Block(Node):
    """A sequence of statements (`{ ... }` or `begin ... end`)."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt], location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.stmts = list(stmts)

    def __repr__(self) -> str:
        return f"Block({self.stmts!r})"


class VarDecl(Stmt):
    """``private x;`` — declares ``x`` thread-private.

    Only ``private`` declarations are required: ordinary variables spring
    into existence on first assignment and are shared by default, which
    matches the paper's examples.
    """

    __slots__ = ("ident", "init")

    def __init__(
        self,
        ident: str,
        init: Optional[Expr] = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.ident = ident
        self.init = init

    def __repr__(self) -> str:
        return f"VarDecl({self.ident!r}, {self.init!r})"


class Assign(Stmt):
    """``x = expr;``"""

    __slots__ = ("target", "value")

    def __init__(self, target: str, value: Expr, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.target = target
        self.value = value

    def __repr__(self) -> str:
        return f"Assign({self.target!r}, {self.value!r})"


class IfStmt(Stmt):
    """``if (cond) { ... } else { ... }`` — else branch optional."""

    __slots__ = ("cond", "then_block", "else_block")

    def __init__(
        self,
        cond: Expr,
        then_block: Block,
        else_block: Optional[Block] = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def __repr__(self) -> str:
        return f"IfStmt({self.cond!r}, {self.then_block!r}, {self.else_block!r})"


class WhileStmt(Stmt):
    """``while (cond) { ... }``"""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Block, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.cond = cond
        self.body = body

    def __repr__(self) -> str:
        return f"WhileStmt({self.cond!r}, {self.body!r})"


class ThreadBlock(Node):
    """One child thread of a cobegin: ``T0: begin ... end``."""

    __slots__ = ("label", "body")

    def __init__(
        self,
        label: Optional[str],
        body: Block,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.label = label
        self.body = body

    def __repr__(self) -> str:
        return f"ThreadBlock({self.label!r}, {self.body!r})"


class Cobegin(Stmt):
    """``cobegin <threads> coend`` — runs all child threads concurrently."""

    __slots__ = ("threads",)

    def __init__(
        self,
        threads: Sequence[ThreadBlock],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.threads = list(threads)

    def __repr__(self) -> str:
        return f"Cobegin({self.threads!r})"


class LockStmt(Stmt):
    """``lock(L);`` — acquire mutex ``L`` (blocking)."""

    __slots__ = ("lock_name",)

    def __init__(self, lock_name: str, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.lock_name = lock_name

    def __repr__(self) -> str:
        return f"LockStmt({self.lock_name!r})"


class UnlockStmt(Stmt):
    """``unlock(L);`` — release mutex ``L``."""

    __slots__ = ("lock_name",)

    def __init__(self, lock_name: str, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.lock_name = lock_name

    def __repr__(self) -> str:
        return f"UnlockStmt({self.lock_name!r})"


class SetStmt(Stmt):
    """``set(e);`` — signal event ``e`` (event stays set; no clear)."""

    __slots__ = ("event_name",)

    def __init__(self, event_name: str, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.event_name = event_name

    def __repr__(self) -> str:
        return f"SetStmt({self.event_name!r})"


class WaitStmt(Stmt):
    """``wait(e);`` — block until event ``e`` has been set."""

    __slots__ = ("event_name",)

    def __init__(self, event_name: str, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.event_name = event_name

    def __repr__(self) -> str:
        return f"WaitStmt({self.event_name!r})"


class PrintStmt(Stmt):
    """``print(e1, e2, ...);`` — the observable output of a program."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr], location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.args = list(args)

    def __repr__(self) -> str:
        return f"PrintStmt({self.args!r})"


class CallStmt(Stmt):
    """``f(a, b);`` — an opaque side-effecting call statement."""

    __slots__ = ("func", "args")

    def __init__(
        self,
        func: str,
        args: Sequence[Expr],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.func = func
        self.args = list(args)

    def __repr__(self) -> str:
        return f"CallStmt({self.func!r}, {self.args!r})"


class Skip(Stmt):
    """``skip;`` — the empty statement."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Skip()"


class DoAll(Stmt):
    """``doall i = lo to hi { body }`` — a parallel loop.

    All iterations execute concurrently with ``i`` bound per iteration
    (the paper's ``doall`` construct, Section 7).  Bounds must be
    integer literals: like the authors' macro-based prototype, the
    front-end expands the loop statically into a ``cobegin`` with one
    thread per iteration and a private copy of the index variable.
    The range is inclusive: ``doall i = 0 to 2`` spawns 3 iterations.
    """

    __slots__ = ("var", "low", "high", "body")

    def __init__(
        self,
        var: str,
        low: int,
        high: int,
        body: Block,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.var = var
        self.low = int(low)
        self.high = int(high)
        self.body = body

    def __repr__(self) -> str:
        return f"DoAll({self.var!r}, {self.low}, {self.high}, {self.body!r})"


class BarrierStmt(Stmt):
    """``barrier(B);`` — cyclic barrier among the sibling threads of the
    enclosing cobegin that mention ``B`` (Section 7 future work)."""

    __slots__ = ("barrier_name",)

    def __init__(self, barrier_name: str, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.barrier_name = barrier_name

    def __repr__(self) -> str:
        return f"BarrierStmt({self.barrier_name!r})"


class Program(Node):
    """A whole translation unit: a top-level statement sequence."""

    __slots__ = ("body",)

    def __init__(self, body: Block, location: SourceLocation | None = None) -> None:
        super().__init__(location)
        self.body = body

    def __repr__(self) -> str:
        return f"Program({self.body!r})"
