"""Token kinds and keyword tables for the toy parallel language."""

from __future__ import annotations

import enum


class TokenKind(enum.Enum):
    """Every lexical category produced by :class:`repro.lang.lexer.Lexer`."""

    # literals / identifiers
    INT = "int-literal"
    IDENT = "identifier"

    # keywords
    KW_COBEGIN = "cobegin"
    KW_COEND = "coend"
    KW_BEGIN = "begin"
    KW_END = "end"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_LOCK = "lock"
    KW_UNLOCK = "unlock"
    KW_SET = "set"
    KW_WAIT = "wait"
    KW_PRINT = "print"
    KW_PRIVATE = "private"
    KW_SKIP = "skip"
    KW_DOALL = "doall"
    KW_TO = "to"
    KW_BARRIER = "barrier"

    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    COMMA = ","
    COLON = ":"

    # operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "<eof>"


#: Keyword spellings.  The paper writes ``Lock``/``Unlock`` capitalized, so
#: keyword lookup is case-insensitive: ``Lock``, ``LOCK`` and ``lock`` all
#: lex as :data:`TokenKind.KW_LOCK`.
KEYWORDS: dict[str, TokenKind] = {
    "cobegin": TokenKind.KW_COBEGIN,
    "coend": TokenKind.KW_COEND,
    "begin": TokenKind.KW_BEGIN,
    "end": TokenKind.KW_END,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "lock": TokenKind.KW_LOCK,
    "unlock": TokenKind.KW_UNLOCK,
    "set": TokenKind.KW_SET,
    "wait": TokenKind.KW_WAIT,
    "print": TokenKind.KW_PRINT,
    "private": TokenKind.KW_PRIVATE,
    "skip": TokenKind.KW_SKIP,
    "doall": TokenKind.KW_DOALL,
    "to": TokenKind.KW_TO,
    "barrier": TokenKind.KW_BARRIER,
}

#: Two-character operators, checked before single-character ones.
TWO_CHAR_OPS: dict[str, TokenKind] = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

#: Single-character tokens.
ONE_CHAR_OPS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}
