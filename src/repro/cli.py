"""Command-line driver: ``python -m repro <command> <file>``.

Commands
--------

``analyze``   build the CSSAME (or, with ``--cssa``, plain CSSA) form
              and print the annotated listing plus form statistics.
``batch``     analyze + diagnose every ``.par`` file under a directory
              concurrently (``--jobs N``, ``--executor thread|process``)
              through one shared artifact-cached session; one structured
              result line per file, bad files isolated as errors.
``optimize``  run the Section 5 pipeline and print the optimized
              program (``--phases`` shows every intermediate listing).
``diagnose``  print Section 6 warnings and potential data races.
``run``       execute under the interleaving VM (``--seed``).
``explore``   enumerate every schedule and print the outcome set.
``dot``       print a Graphviz rendering of the PFG.
``stats``     run the pipeline under a tracer and print the per-pass
              timing/decision/metrics tables.

All commands read the program from a file argument or, with ``-``,
from stdin, and accept ``--trace FILE --trace-format {jsonl,chrome,text}``
to capture a full trace of the run (``chrome`` traces load in
``chrome://tracing`` / Perfetto; see ``docs/OBSERVABILITY.md``).

Exit-code contract
------------------

* ``0`` — success (for ``diagnose``: no findings, or ``--no-strict``).
* ``1`` — ``diagnose`` found warnings/races under ``--strict`` (the
  default), or ``witness`` found no matching schedule.
* ``2`` — the executed/explored program can deadlock.
* ``3`` — usage or input error (parse error, missing file, ...).

CI pipelines that want diagnostics as advisory output rather than a
gate should pass ``--no-strict`` to ``diagnose``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import analyze_source, diagnose_source, front_end, pfg_dot
from repro.errors import ReproError
from repro.ir.printer import format_ir
from repro.obs.export import TRACE_FORMATS, write_trace
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.opt.pipeline import optimize
from repro.report import measure_form
from repro.session.batch import BatchSession
from repro.vm.explore import explore
from repro.vm.machine import run_random

__all__ = ["main"]


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    form = analyze_source(source, prune=not args.cssa)
    print(format_ir(form.program), end="")
    metrics = measure_form(form.program)
    print(f"// form: {'CSSA' if args.cssa else 'CSSAME'}")
    print(f"// pi terms: {metrics.pi_terms} ({metrics.pi_args} arguments)")
    print(f"// phi terms: {metrics.phi_terms}")
    if form.rewrite_stats is not None:
        s = form.rewrite_stats
        print(
            f"// A.3 removed {s.args_removed} conflict argument(s), "
            f"deleted {s.pis_deleted} pi term(s)"
        )
    bodies = form.mutex_bodies()
    print(f"// mutex bodies: {len(bodies)}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = front_end(_read_source(args.file))
    report = optimize(
        program,
        use_mutex=not args.cssa,
        fold_output_uses=not args.keep_prints,
    )
    if args.phases:
        for phase in ("cssa", "cssame", "constprop", "pdce", "licm"):
            if phase in report.listings:
                print(f"// ---- after {phase} ----")
                print(report.listings[phase], end="")
    print(report.listings["final"], end="")
    print(f"// constants: {len(report.constprop.constants)}, "
          f"removed: {report.pdce.total_removed}, "
          f"moved: {report.licm.total_moved}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    warnings, races = diagnose_source(_read_source(args.file))
    for w in warnings:
        print(f"warning [{w.kind}]: {w.message}")
    for r in races:
        print(f"race: {r.message()}")
    if not warnings and not races:
        print("no synchronization problems found")
        return 0
    # --strict (default): findings gate the build; --no-strict reports
    # them but exits 0 (see the module docstring's exit-code contract).
    return 1 if args.strict else 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = front_end(_read_source(args.file))
    if args.optimize:
        optimize(program)
    execution = run_random(
        program, seed=args.seed, fuel=args.fuel, raise_on_deadlock=False
    )
    for event in execution.events:
        if event[0] == "print":
            print(" ".join(str(v) for v in event[1]))
        else:
            print(f"call {event[1]}({', '.join(str(v) for v in event[2])})")
    if execution.deadlocked:
        print("DEADLOCK", file=sys.stderr)
        return 2
    if args.stats:
        print(f"// steps: {execution.steps}", file=sys.stderr)
        for lock, held in sorted(execution.lock_held_steps.items()):
            print(f"// lock {lock}: held {held} steps", file=sys.stderr)
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    program = front_end(_read_source(args.file))
    if args.optimize:
        optimize(program)
    result = explore(program, max_states=args.max_states)
    for outcome in sorted(result.outcomes):
        rendered = []
        for event in outcome:
            if event[0] == "print":
                rendered.append("print " + " ".join(str(v) for v in event[1]))
            elif event[0] == "call":
                rendered.append(f"call {event[1]}")
            else:
                rendered.append(event[0].upper())
        print(" | ".join(rendered) if rendered else "(no output)")
    print(
        f"// {len(result.outcomes)} behaviour(s), {result.states} states"
        f"{'' if result.complete else ' (TRUNCATED)'}"
    )
    if result.can_deadlock:
        print("// some schedules DEADLOCK")
        return 2
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    batch = BatchSession(
        jobs=args.jobs,
        executor=args.executor,
        optimize=args.optimize,
        prune=not args.cssa,
    )
    results = batch.run_dir(args.directory)
    if not results:
        print(f"error: no .par files under {args.directory}", file=sys.stderr)
        return 3
    for result in results:
        print(result.summary())
    errors = sum(1 for r in results if not r.ok)
    print(f"// {len(results)} file(s), {errors} error(s)")
    if args.cache_stats:
        stats = batch.session.cache_stats()
        rows: list[tuple] = [
            (stage, entry["hits"], entry["misses"])
            for stage, entry in sorted(stats.by_stage.items())
        ]
        rows.append(("total", stats.hits, stats.misses))
        print()
        _print_table("artifact cache", ["stage", "hits", "misses"], rows)
        if batch.executor == "process":
            print("// note: process workers keep per-process caches; "
                  "this table covers the coordinator only")
    return 1 if errors and args.strict else 0


def _cmd_dot(args: argparse.Namespace) -> int:
    print(
        pfg_dot(_read_source(args.file), title=args.file, prune=not args.cssa),
        end="",
    )
    return 0


def _print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print(f"== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run the pipeline under a tracer; print timing + decision tables."""
    source = _read_source(args.file)
    tracer = get_tracer()
    if not tracer.enabled:  # no --trace given: use a local tracer
        tracer = Tracer()
    with use_tracer(tracer):
        report = optimize(front_end(source), use_mutex=not args.cssa)

    rows = [
        (
            "  " * max(span.depth - 1, 0) + span.name,
            f"{span.duration * 1e3:.3f}",
            " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items())),
        )
        for span in tracer.spans()
    ]
    _print_table("per-pass timing", ["phase", "wall_ms", "detail"], rows)

    removals = tracer.events_of_kind("pi-arg-removed")
    if removals:
        print()
        _print_table(
            "A.3 conflict-argument removals",
            ["pi", "var", "arg", "lock", "reason"],
            [(e.pi, e.var, e.arg, e.lock, e.reason) for e in removals],
        )

    print()
    metrics = measure_form(report.program).as_dict()
    _print_table(
        "final form metrics",
        ["metric", "value"],
        sorted(metrics.items()),
    )
    counters = tracer.metrics.as_dict()["counters"]
    if counters:
        print()
        _print_table("counters", ["counter", "value"], sorted(counters.items()))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    """Find and replay a schedule printing the requested values."""
    from repro.vm.explore import find_witness
    from repro.vm.machine import VirtualMachine

    program = front_end(_read_source(args.file))
    if args.deadlock:
        outcome: tuple = (("deadlock",),)
    else:
        values = tuple(int(v) for v in args.values)
        outcome = (("print", values),)
    schedule = find_witness(program, outcome, max_states=args.max_states)
    if schedule is None:
        print("no schedule produces that outcome", file=sys.stderr)
        return 1
    print("schedule (thread ids in step order):")
    print("  " + " ".join("main" if t == () else ".".join(map(str, t)) for t in schedule))
    execution = VirtualMachine(front_end(_read_source(args.file))).replay(schedule)
    print(f"replayed: events={execution.events} deadlocked={execution.deadlocked}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSSAME compiler driver (ICPP'98 reproduction)",
    )
    # Tracing flags are shared by every command (parsed per-subcommand
    # so they may appear before or after the file argument).
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument(
        "--trace", metavar="FILE", default=None,
        help="capture a trace of this run into FILE",
    )
    tracing.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="jsonl",
        help="trace file format (default: jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "analyze", help="print the CSSAME/CSSA form", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="skip Algorithm A.3")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "optimize", help="run the optimization pipeline", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="use plain CSSA")
    p.add_argument(
        "--phases", action="store_true", help="show every phase listing"
    )
    p.add_argument(
        "--keep-prints", action="store_true",
        help="leave print arguments symbolic (paper-figure style)",
    )
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "diagnose", help="Section 6 warnings and races", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument(
        "--strict", action=argparse.BooleanOptionalAction, default=True,
        help="exit 1 when findings exist (default; --no-strict exits 0)",
    )
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "run", help="execute under the interleaving VM", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fuel", type=int, default=1_000_000)
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--stats", action="store_true")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "explore", help="enumerate every schedule", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--max-states", type=int, default=200_000)
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "batch",
        help="analyze+diagnose every .par file under a directory",
        parents=[tracing],
    )
    p.add_argument("directory")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker count (default: 1 = serial)",
    )
    p.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="pool kind for --jobs > 1 (default: thread, shares the "
             "artifact cache; process buys real CPU parallelism)",
    )
    p.add_argument(
        "--optimize", action="store_true",
        help="also run the optimization pipeline per file",
    )
    p.add_argument("--cssa", action="store_true", help="plain CSSA forms")
    p.add_argument(
        "--cache-stats", action="store_true",
        help="print the artifact cache's per-stage hit/miss table",
    )
    p.add_argument(
        "--strict", action=argparse.BooleanOptionalAction, default=False,
        help="exit 1 when any file errored (default: report and exit 0)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "dot", help="Graphviz rendering of the PFG", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="plain CSSA PFG")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser(
        "witness",
        help="find a schedule that prints the given values (or deadlocks)",
        parents=[tracing],
    )
    p.add_argument("file")
    p.add_argument("values", nargs="*", help="expected single print's values")
    p.add_argument("--deadlock", action="store_true",
                   help="find a deadlocking schedule instead")
    p.add_argument("--max-states", type=int, default=200_000)
    p.set_defaults(func=_cmd_witness)

    p = sub.add_parser(
        "stats",
        help="per-pass timing and decision tables for the pipeline",
        parents=[tracing],
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="use plain CSSA")
    p.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    tracer = Tracer() if getattr(args, "trace", None) else None
    try:
        if tracer is not None:
            with use_tracer(tracer):
                code = args.func(args)
        else:
            code = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 3
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 3
    # Export whatever was captured, even on a non-zero exit — a failing
    # run is exactly when the trace is most wanted.  A write failure is
    # an error (3) unless the command itself already failed harder.
    if tracer is not None:
        try:
            write_trace(tracer, args.trace, args.trace_format)
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            code = code or 3
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
