"""Command-line driver: ``python -m repro <command> <file>``.

Commands
--------

``analyze``   build the CSSAME (or, with ``--cssa``, plain CSSA) form
              and print the annotated listing plus form statistics.
``batch``     analyze + diagnose every ``.par`` file under a directory
              concurrently (``--jobs N``, ``--executor thread|process``)
              through one shared artifact-cached session; one structured
              result line per file, bad files isolated as errors.
``optimize``  run the Section 5 pipeline and print the optimized
              program (``--phases`` shows every intermediate listing).
``diagnose``  print Section 6 warnings and potential data races.
``run``       execute under the interleaving VM (``--seed``; ``--json``
              adds per-lock contention counters and timeline summary).
``explore``   enumerate every schedule and print the outcome set.
``audit``     sample N seeded schedules under the happens-before
              tracker, optionally explore, and cross-validate dynamic
              races against the Section 6 lockset report (confirmed /
              unconfirmed / dynamic-only; ``--strict`` gates on
              confirmed races).
``dot``       print a Graphviz rendering of the PFG.
``serve``     run the resilient compile service: a JSON-lines-over-TCP
              daemon fronting the Session stage graph with a persistent
              artifact store (``--store DIR``), a bounded worker pool
              (``--jobs``), per-request deadlines (``--deadline-ms``)
              and graceful drain on SIGTERM.
``request``   one-shot client for ``serve``: send FILE to a running
              daemon (``--stage``; ``--json`` prints the full response
              frame) with jittered-backoff retries on overload.
``stats``     run the pipeline under a tracer and print the per-pass
              timing/decision/metrics tables.
``profile``   run the pipeline under a tracer and print the per-phase
              wall-time and deterministic work-counter tables.
``bench``     run the registered benchmarks (``--list`` to enumerate,
              ``--group`` to filter) with statistical timing, append a
              record to ``BENCH_history.jsonl``, and with ``--check``
              gate against the previous record (exit 1 on regression).

All commands read the program from a file argument or, with ``-``,
from stdin, and accept ``--trace FILE`` with
``--trace-format {jsonl,chrome,text,flame}`` to capture a full trace
of the run (``chrome`` traces load in ``chrome://tracing`` / Perfetto;
``flame`` is Brendan-Gregg collapsed-stack for flamegraph tools; see
``docs/OBSERVABILITY.md``).

Exit-code contract
------------------

Derived from the machine-readable error taxonomy in
:mod:`repro.errors` (``exit_code_for``); the error line printed on
stderr carries the code: ``error: [E_PARSE] 1:5: ...``.

* ``0`` — success (for ``diagnose``: no findings, or ``--no-strict``).
* ``1`` — findings: ``diagnose`` found warnings/races under
  ``--strict`` (the default), ``witness`` found no matching schedule,
  ``bench`` detected a regression (``--check``) or a failing
  benchmark, or ``audit`` found a dynamic-only race (always — a
  soundness failure) or, under ``--strict``, a confirmed race.
* ``2`` — the executed/explored program can deadlock (``E_DEADLOCK``).
* ``3`` — usage or input error: ``E_PARSE``, ``E_SEMANTIC``,
  ``E_ANALYSIS``, ``E_IO``, ``E_USAGE``, ``E_UNSUPPORTED``.
* ``4`` — service error (``request``/``serve``): ``E_TIMEOUT``,
  ``E_OVERLOADED``, ``E_SHUTDOWN``, ``E_PROTOCOL``, ``E_INTERNAL``.

CI pipelines that want diagnostics as advisory output rather than a
gate should pass ``--no-strict`` to ``diagnose``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import api
from repro._version import __version__
from repro.api import front_end
from repro.errors import (
    EXIT_ERROR,
    EXIT_FINDINGS,
    EXIT_OK,
    ReproError,
    error_code,
    exit_code_for,
)
from repro.obs.export import TRACE_FORMATS, write_trace
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.serve.protocol import DEFAULT_PORT as DEFAULT_SERVE_PORT
from repro.opt.pipeline import optimize
from repro.report import measure_form
from repro.session.batch import BatchSession
from repro.vm.explore import explore
from repro.vm.machine import run_random

__all__ = ["main"]


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    result = api.analyze(source, prune=not args.cssa)
    artifacts = result.artifacts
    metrics = artifacts["metrics"]
    print(artifacts["listing"], end="")
    print(f"// form: {artifacts['form']}")
    print(f"// pi terms: {metrics['pi_terms']} ({metrics['pi_args']} arguments)")
    print(f"// phi terms: {metrics['phi_terms']}")
    if artifacts["rewrite"] is not None:
        s = artifacts["rewrite"]
        print(
            f"// A.3 removed {s['args_removed']} conflict argument(s), "
            f"deleted {s['pis_deleted']} pi term(s)"
        )
    print(f"// mutex bodies: {artifacts['mutex_bodies']}")
    return EXIT_OK


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = front_end(_read_source(args.file))
    report = optimize(
        program,
        use_mutex=not args.cssa,
        fold_output_uses=not args.keep_prints,
    )
    if args.phases:
        for phase in ("cssa", "cssame", "constprop", "pdce", "licm"):
            if phase in report.listings:
                print(f"// ---- after {phase} ----")
                print(report.listings[phase], end="")
    print(report.listings["final"], end="")
    print(f"// constants: {len(report.constprop.constants)}, "
          f"removed: {report.pdce.total_removed}, "
          f"moved: {report.licm.total_moved}")
    return 0


def _print_diagnostic_frames(frames) -> None:
    """Render diagnostics frames the way ``diagnose`` always has."""
    for frame in frames:
        if frame["kind"] == "race":
            print(f"race: {frame['message']}")
        else:
            print(f"warning [{frame['kind']}]: {frame['message']}")


def _cmd_diagnose(args: argparse.Namespace) -> int:
    result = api.diagnose(_read_source(args.file))
    _print_diagnostic_frames(result.warnings)
    _print_diagnostic_frames(result.races)
    if result.clean:
        print("no synchronization problems found")
        return EXIT_OK
    # --strict (default): findings gate the build; --no-strict reports
    # them but exits 0 (see the module docstring's exit-code contract).
    return EXIT_FINDINGS if args.strict else EXIT_OK


def _print_events(execution) -> None:
    """Render an execution's observable events, one per line.

    Shared by ``run`` and ``witness`` so a replayed schedule reads
    exactly like a live run.
    """
    for event in execution.events:
        if event[0] == "print":
            print(" ".join(str(v) for v in event[1]))
        else:
            print(f"call {event[1]}({', '.join(str(v) for v in event[2])})")


def _execution_as_dict(execution) -> dict:
    """The ``run --json`` document: events + per-lock contention."""
    from repro.report import lock_timeline_summary

    timeline = lock_timeline_summary(execution)
    locks: dict[str, dict] = {}
    for lock in sorted(
        set(execution.lock_held_steps)
        | set(execution.lock_blocked_steps)
        | set(execution.lock_acquisitions)
        | set(timeline)
    ):
        locks[lock] = {
            "held_steps": execution.lock_held_steps.get(lock, 0),
            "blocked_steps": execution.lock_blocked_steps.get(lock, 0),
            "acquisitions": execution.lock_acquisitions.get(lock, 0),
            **timeline.get(lock, {}),
        }
    return {
        "events": [list(e) for e in execution.events],
        "steps": execution.steps,
        "deadlocked": execution.deadlocked,
        "memory": dict(sorted(execution.memory.items())),
        "locks": locks,
        "lock_intervals": list(execution.lock_intervals),
    }


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    program = front_end(_read_source(args.file))
    if args.optimize:
        optimize(program)
    execution = run_random(
        program, seed=args.seed, fuel=args.fuel, raise_on_deadlock=False
    )
    if args.json:
        print(json.dumps(_execution_as_dict(execution), indent=2, sort_keys=True))
        return 2 if execution.deadlocked else 0
    _print_events(execution)
    if execution.deadlocked:
        print("DEADLOCK", file=sys.stderr)
        return 2
    if args.stats:
        print(f"// steps: {execution.steps}", file=sys.stderr)
        for lock, held in sorted(execution.lock_held_steps.items()):
            print(f"// lock {lock}: held {held} steps", file=sys.stderr)
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    program = front_end(_read_source(args.file))
    if args.optimize:
        optimize(program)
    result = explore(program, max_states=args.max_states)
    for outcome in sorted(result.outcomes):
        rendered = []
        for event in outcome:
            if event[0] == "print":
                rendered.append("print " + " ".join(str(v) for v in event[1]))
            elif event[0] == "call":
                rendered.append(f"call {event[1]}")
            else:
                rendered.append(event[0].upper())
        print(" | ".join(rendered) if rendered else "(no output)")
    print(
        f"// {len(result.outcomes)} behaviour(s), {result.states} states"
        f"{'' if result.complete else ' (TRUNCATED)'}"
    )
    if result.can_deadlock:
        print("// some schedules DEADLOCK")
        return 2
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    batch = BatchSession(
        jobs=args.jobs,
        executor=args.executor,
        optimize=args.optimize,
        prune=not args.cssa,
    )
    results = batch.run_dir(args.directory)
    if not results:
        print(f"error: no .par files under {args.directory}", file=sys.stderr)
        return 3
    for result in results:
        print(result.summary())
    errors = sum(1 for r in results if not r.ok)
    print(f"// {len(results)} file(s), {errors} error(s)")
    if args.cache_stats:
        stats = batch.session.cache_stats()
        rows: list[tuple] = [
            (stage, entry["hits"], entry["misses"])
            for stage, entry in sorted(stats.by_stage.items())
        ]
        rows.append(("total", stats.hits, stats.misses))
        print()
        _print_table("artifact cache", ["stage", "hits", "misses"], rows)
        if batch.executor == "process":
            print("// note: process workers keep per-process caches; "
                  "this table covers the coordinator only")
    return 1 if errors and args.strict else 0


def _cmd_dot(args: argparse.Namespace) -> int:
    result = api.compile_source(
        _read_source(args.file),
        "dot",
        {"title": args.file, "prune": not args.cssa},
    )
    print(result.artifacts["dot"], end="")
    return EXIT_OK


def _print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print(f"== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run the pipeline under a tracer; print timing + decision tables."""
    source = _read_source(args.file)
    tracer = get_tracer()
    if not tracer.enabled:  # no --trace given: use a local tracer
        tracer = Tracer()
    with use_tracer(tracer):
        report = optimize(front_end(source), use_mutex=not args.cssa)

    rows = [
        (
            "  " * max(span.depth - 1, 0) + span.name,
            f"{span.duration * 1e3:.3f}",
            " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items())),
        )
        for span in tracer.spans()
    ]
    _print_table("per-pass timing", ["phase", "wall_ms", "detail"], rows)

    removals = tracer.events_of_kind("pi-arg-removed")
    if removals:
        print()
        _print_table(
            "A.3 conflict-argument removals",
            ["pi", "var", "arg", "lock", "reason"],
            [(e.pi, e.var, e.arg, e.lock, e.reason) for e in removals],
        )

    print()
    metrics = measure_form(report.program).as_dict()
    _print_table(
        "final form metrics",
        ["metric", "value"],
        sorted(metrics.items()),
    )
    counters = tracer.metrics.as_dict()["counters"]
    if counters:
        print()
        _print_table("counters", ["counter", "value"], sorted(counters.items()))
    # Span durations as a distribution: the percentile columns make
    # outlier passes visible at a glance (satellite of the VM's
    # lock-hold histograms, which land here too when present).
    span_hist = tracer.metrics.histogram("span_wall_ms")
    for span in tracer.spans():
        span_hist.observe(span.duration * 1e3)
    histograms = tracer.metrics.as_dict()["histograms"]
    if histograms:
        print()
        _print_table(
            "histograms",
            ["histogram", "n", "min", "p50", "p90", "p99", "max"],
            [
                (
                    name,
                    s["count"],
                    f"{s['min']:g}",
                    f"{s['p50']:g}",
                    f"{s['p90']:g}",
                    f"{s['p99']:g}",
                    f"{s['max']:g}",
                )
                for name, s in sorted(histograms.items())
            ],
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Per-phase wall-time and deterministic work-counter tables."""
    import json

    from repro.obs.prof import profile_source

    source = _read_source(args.file)
    ambient = get_tracer()
    # Reuse the --trace tracer so the run can be exported (e.g. as a
    # flamegraph via --trace-format flame); otherwise profile privately.
    tracer = ambient if ambient.enabled else None
    profile = profile_source(source, use_mutex=not args.cssa, tracer=tracer)

    wall: dict[str, list[float]] = {}
    for span in profile.tracer.spans():
        wall.setdefault(span.name, []).append(span.duration * 1e3)
    _print_table(
        "per-phase wall time",
        ["phase", "calls", "total_ms"],
        [
            (name, len(samples), f"{sum(samples):.3f}")
            for name, samples in sorted(wall.items())
        ],
    )

    print()
    rows = [
        (phase, metric, value)
        for phase, metrics in sorted(profile.phases.items())
        for metric, value in sorted(metrics.items())
    ]
    _print_table("deterministic work counters", ["phase", "metric", "ops"], rows)
    print(f"// total work: {profile.total()} op(s)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(profile.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"// profile written to {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run registered benchmarks; append history; optionally gate."""
    import json

    from repro import bench as benchlib
    from repro.obs.prof import WORK_PREFIX

    modules = benchlib.discover()
    try:
        benches = benchlib.select(group=args.group, names=args.names or None)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 3
    if args.list:
        _print_table(
            f"registered benchmarks ({modules} module(s) discovered)",
            ["name", "group", "cap", "profiled", "summary"],
            [
                (
                    b.name,
                    b.group,
                    b.repeat if b.repeat is not None else "-",
                    "yes" if b.profile else "no",
                    b.summary,
                )
                for b in benches
            ],
        )
        return 0
    if not benches:
        print("error: no benchmarks selected", file=sys.stderr)
        return 3

    repeat = args.repeat if args.repeat is not None else benchlib.DEFAULT_REPEAT
    warmup = args.warmup if args.warmup is not None else benchlib.DEFAULT_WARMUP
    history_path = args.history or benchlib.DEFAULT_HISTORY
    record = benchlib.run_suite(
        benches, repeat=repeat, warmup=warmup, group=args.group
    )
    rows = []
    for name, result in sorted(record["results"].items()):
        stats = result["wall"]
        work = sum(
            v
            for k, v in (result["counters"] or {}).items()
            if k.startswith(WORK_PREFIX)
        )
        def _ms(key: str) -> str:
            return f"{stats[key]:.3f}" if key in stats else "-"

        rows.append(
            (
                name,
                result["group"],
                _ms("median_ms"),
                _ms("iqr_ms"),
                _ms("min_ms"),
                work if work else "-",
                "ERROR" if result["error"] else "ok",
            )
        )
    _print_table(
        "bench",
        ["name", "group", "median_ms", "iqr_ms", "min_ms", "work_ops", "status"],
        rows,
    )
    for name, result in sorted(record["results"].items()):
        if result["error"]:
            print(f"error: {name}: {result['error']}", file=sys.stderr)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"// record written to {args.json}")

    # Load before appending so the implicit baseline is the *previous*
    # run, then append this run unconditionally (append-only history).
    existing = benchlib.load_history(history_path)
    benchlib.append_record(record, history_path)
    print(f"// appended record #{len(existing) + 1} to {history_path}")

    errors = sum(1 for r in record["results"].values() if r["error"])
    if not args.check:
        return 1 if errors else 0

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    else:
        baseline = benchlib.previous_record(existing, group=args.group)
    if baseline is None:
        print("// no baseline record yet; gate passes vacuously")
        return 1 if errors else 0
    regressions = benchlib.compare_records(
        record,
        baseline,
        counter_tolerance=(
            args.counter_tolerance
            if args.counter_tolerance is not None
            else benchlib.COUNTER_TOLERANCE
        ),
        wall_rel=(
            args.wall_threshold
            if args.wall_threshold is not None
            else benchlib.WALL_REL_THRESHOLD
        ),
    )
    print(benchlib.format_regressions(regressions))
    return 1 if regressions or errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile service until SIGTERM/SIGINT drains it."""
    from repro.serve.server import CompileServer

    server = CompileServer(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        store_dir=args.store,
        deadline_ms=args.deadline_ms,
        queue_limit=args.queue_limit,
    )

    def ready(host: str, port: int) -> None:
        print(
            f"repro serve: listening on {host}:{port} "
            f"(jobs={server.jobs}, deadline_ms={server.deadline_ms:g}, "
            f"store={args.store or 'memory'})",
            flush=True,
        )

    code = server.run(ready)
    print("repro serve: drained, bye", flush=True)
    return code


def _cmd_request(args: argparse.Namespace) -> int:
    """One-shot client: send FILE to a running ``repro serve`` daemon."""
    import json

    from repro.results import result_from_dict
    from repro.serve.client import ServeClient

    try:
        options = json.loads(args.options) if args.options else {}
    except json.JSONDecodeError as exc:
        print(f"error: [E_USAGE] --options is not valid JSON: {exc}",
              file=sys.stderr)
        return EXIT_ERROR
    if args.kind != "compile":
        with ServeClient(args.host, args.port, timeout=args.timeout) as client:
            payload = client.ops() if args.kind == "ops" else client.ping()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK

    source = _read_source(args.file)
    with ServeClient(args.host, args.port, timeout=args.timeout) as client:
        response = client.request(source, stage=args.stage, options=options)
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    if not response["ok"]:
        error = response["error"]
        if not args.json:
            print(f"error: [{error['code']}] {error['message']}",
                  file=sys.stderr)
        return exit_code_for(error["code"])
    if not args.json:
        result = result_from_dict(response["result"])
        _print_diagnostic_frames(result.diagnostics)
        for key in ("listing", "dot"):
            if key in result.artifacts:
                print(result.artifacts[key], end="")
        prov = result.provenance
        print(
            f"// stage: {result.stage} cache_hits={prov.cache_hits} "
            f"cache_misses={prov.cache_misses} "
            f"elapsed_ms={response.get('elapsed_ms', 0.0):g}"
        )
    return EXIT_OK


def _cmd_witness(args: argparse.Namespace) -> int:
    """Find and replay a schedule printing the requested values."""
    from repro.vm.explore import find_witness
    from repro.vm.machine import VirtualMachine

    program = front_end(_read_source(args.file))
    if args.deadlock:
        outcome: tuple = (("deadlock",),)
    else:
        values = tuple(int(v) for v in args.values)
        outcome = (("print", values),)
    schedule = find_witness(program, outcome, max_states=args.max_states)
    if schedule is None:
        print("no schedule produces that outcome", file=sys.stderr)
        return 1
    print("schedule (thread ids in step order):")
    print("  " + " ".join("main" if t == () else ".".join(map(str, t)) for t in schedule))
    # The replay runs under the ambient tracer (``main`` installs it for
    # --trace), so the replayed schedule leaves the same vm-step /
    # lock-event trail a live run would.
    execution = VirtualMachine(front_end(_read_source(args.file))).replay(schedule)
    print("replayed:")
    _print_events(execution)
    if execution.deadlocked:
        print("DEADLOCK", file=sys.stderr)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Static ↔ dynamic race cross-validation (``repro audit``)."""
    import json

    from repro.dynamic.audit import audit_source

    report = audit_source(
        _read_source(args.file),
        runs=args.runs,
        seed_base=args.seed_base,
        fuel=args.fuel,
        explore_states=args.max_states,
        do_explore=args.explore,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return report.exit_code(strict=args.strict)

    for finding in report.findings:
        print(finding.message())
    for race in report.dynamic_only:
        print(f"DYNAMIC-ONLY (static analysis missed this!): {race.message()}")
    if not report.findings and not report.dynamic_only:
        print("no races, static or dynamic")

    cov = report.coverage.as_dict()
    print()
    _print_table(
        "schedule coverage",
        ["metric", "value"],
        [
            ("runs sampled", cov["runs"]),
            ("deadlocked runs", cov["deadlock_runs"]),
            ("sampled outcome classes", cov["sampled_outcome_classes"]),
            (
                "explored outcome classes",
                cov["explored_outcome_classes"]
                if cov["explored_outcome_classes"] is not None
                else "(exploration off)",
            ),
            (
                "outcome coverage",
                f"{cov['outcome_coverage']:.0%}"
                if cov["outcome_coverage"] is not None
                else "-",
            ),
            ("conflict pairs observed", cov["conflict_pairs"]),
            (
                "ordering coverage",
                f"{cov['ordering_coverage']:.0%}"
                if cov["ordering_coverage"] is not None
                else "-",
            ),
            (
                "conflict-var coverage",
                f"{cov['conflict_var_coverage']:.0%}"
                if cov["conflict_var_coverage"] is not None
                else "-",
            ),
        ],
    )
    print(
        f"// {len(report.confirmed)} confirmed, "
        f"{len(report.unconfirmed)} unconfirmed, "
        f"{len(report.dynamic_only)} dynamic-only"
    )
    return report.exit_code(strict=args.strict)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSSAME compiler driver (ICPP'98 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    # Tracing flags are shared by every command (parsed per-subcommand
    # so they may appear before or after the file argument).
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument(
        "--trace", metavar="FILE", default=None,
        help="capture a trace of this run into FILE",
    )
    tracing.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="jsonl",
        help="trace file format (default: jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "analyze", help="print the CSSAME/CSSA form", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="skip Algorithm A.3")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "optimize", help="run the optimization pipeline", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="use plain CSSA")
    p.add_argument(
        "--phases", action="store_true", help="show every phase listing"
    )
    p.add_argument(
        "--keep-prints", action="store_true",
        help="leave print arguments symbolic (paper-figure style)",
    )
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "diagnose", help="Section 6 warnings and races", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument(
        "--strict", action=argparse.BooleanOptionalAction, default=True,
        help="exit 1 when findings exist (default; --no-strict exits 0)",
    )
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "run", help="execute under the interleaving VM", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fuel", type=int, default=1_000_000)
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--stats", action="store_true")
    p.add_argument(
        "--json", action="store_true",
        help="emit the execution as JSON (events, steps, per-lock "
             "held/blocked counters and contention timeline)",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "explore", help="enumerate every schedule", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--max-states", type=int, default=200_000)
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "batch",
        help="analyze+diagnose every .par file under a directory",
        parents=[tracing],
    )
    p.add_argument("directory")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker count (default: 1 = serial)",
    )
    p.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="pool kind for --jobs > 1 (default: thread, shares the "
             "artifact cache; process buys real CPU parallelism)",
    )
    p.add_argument(
        "--optimize", action="store_true",
        help="also run the optimization pipeline per file",
    )
    p.add_argument("--cssa", action="store_true", help="plain CSSA forms")
    p.add_argument(
        "--cache-stats", action="store_true",
        help="print the artifact cache's per-stage hit/miss table",
    )
    p.add_argument(
        "--strict", action=argparse.BooleanOptionalAction, default=False,
        help="exit 1 when any file errored (default: report and exit 0)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "dot", help="Graphviz rendering of the PFG", parents=[tracing]
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="plain CSSA PFG")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser(
        "witness",
        help="find a schedule that prints the given values (or deadlocks)",
        parents=[tracing],
    )
    p.add_argument("file")
    p.add_argument("values", nargs="*", help="expected single print's values")
    p.add_argument("--deadlock", action="store_true",
                   help="find a deadlocking schedule instead")
    p.add_argument("--max-states", type=int, default=200_000)
    p.set_defaults(func=_cmd_witness)

    p = sub.add_parser(
        "audit",
        help="cross-validate static races against traced schedules",
        parents=[tracing],
    )
    p.add_argument("file")
    p.add_argument(
        "--runs", type=int, default=16, metavar="N",
        help="seeded schedules to sample (default: 16)",
    )
    p.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed; runs use seed_base..seed_base+N-1 (default: 0)",
    )
    p.add_argument("--fuel", type=int, default=1_000_000)
    p.add_argument(
        "--explore", action=argparse.BooleanOptionalAction, default=True,
        help="also run bounded exhaustive exploration as the coverage "
             "yardstick (default; --no-explore skips it)",
    )
    p.add_argument(
        "--max-states", type=int, default=20_000,
        help="state budget for --explore (default: 20000)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="exit 1 on confirmed races too (dynamic-only soundness "
             "failures always exit 1)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the full audit report as JSON",
    )
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "stats",
        help="per-pass timing and decision tables for the pipeline",
        parents=[tracing],
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="use plain CSSA")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "profile",
        help="per-phase wall-time and deterministic work-counter tables",
        parents=[tracing],
    )
    p.add_argument("file")
    p.add_argument("--cssa", action="store_true", help="use plain CSSA")
    p.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the profile (wall + work counters) as JSON",
    )
    p.set_defaults(func=_cmd_profile)

    # No tracing parent: the daemon owns its own observability (the
    # ``ops`` request kind exposes its counters and latency histograms).
    p = sub.add_parser(
        "serve",
        help="run the resilient compile service (JSON lines over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=DEFAULT_SERVE_PORT,
        help=f"TCP port (default: {DEFAULT_SERVE_PORT}; 0 = pick a free "
             "port, printed in the ready line)",
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker threads (default: min(cpu_count, 8))",
    )
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent artifact store directory (default: memory only)",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=30_000.0, metavar="MS",
        help="per-request stage deadline (default: 30000)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="max in-flight requests before E_OVERLOADED (default: 4*jobs)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "request",
        help="send FILE to a running `repro serve` daemon",
    )
    p.add_argument(
        "file", nargs="?", default="-",
        help="source file ('-' = stdin; unused for --kind ops/ping)",
    )
    p.add_argument(
        "--stage", default="diagnostics", choices=sorted(api.SERVE_STAGES),
        help="pipeline stage to request (default: diagnostics)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_SERVE_PORT)
    p.add_argument(
        "--kind", choices=("compile", "ops", "ping"), default="compile",
        help="request kind (ops = server health/metrics JSON)",
    )
    p.add_argument(
        "--options", metavar="JSON", default=None,
        help="stage options as a JSON object",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="socket timeout per attempt (default: 60)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the full response frame as JSON",
    )
    p.set_defaults(func=_cmd_request)

    # No tracing parent: an ambient tracer would distort the timed runs
    # (the runner enables its own tracer for the work-counter pass).
    p = sub.add_parser(
        "bench",
        help="run registered benchmarks; append history; gate with --check",
    )
    p.add_argument(
        "names", nargs="*",
        help="benchmark names to run (default: all selected by --group)",
    )
    p.add_argument(
        "--group", default=None,
        help="only benchmarks of this group (fast = the CI gate subset)",
    )
    p.add_argument("--list", action="store_true", help="list and exit")
    p.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="timed repeats per benchmark (default: 5; capped per bench)",
    )
    p.add_argument(
        "--warmup", type=int, default=None, metavar="N",
        help="untimed warmup calls per benchmark (default: 1)",
    )
    p.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write this run's record as JSON",
    )
    p.add_argument(
        "--history", metavar="FILE", default=None,
        help="history file to append to (default: BENCH_history.jsonl)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="compare against the previous record (or --baseline); "
             "exit 1 on regression",
    )
    p.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="explicit baseline record (JSON) for --check",
    )
    p.add_argument(
        "--counter-tolerance", type=float, default=None, metavar="FRAC",
        help="allowed relative work-counter growth (default: 0.05)",
    )
    p.add_argument(
        "--wall-threshold", type=float, default=None, metavar="FRAC",
        help="relative wall-time growth required to fail (default: 0.5)",
    )
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    tracer = Tracer() if getattr(args, "trace", None) else None
    try:
        if tracer is not None:
            with use_tracer(tracer):
                code = args.func(args)
        else:
            code = args.func(args)
    except (ReproError, OSError) as exc:
        # One error surface for the whole CLI: the taxonomy code in
        # brackets, then the message.  Exit codes derive from the code
        # (parse/semantic/io → 3, deadlock → 2, service trouble → 4).
        print(f"error: [{error_code(exc)}] {exc}", file=sys.stderr)
        code = exit_code_for(error_code(exc))
    # Export whatever was captured, even on a non-zero exit — a failing
    # run is exactly when the trace is most wanted.  A write failure is
    # an error (3) unless the command itself already failed harder.
    if tracer is not None:
        try:
            write_trace(tracer, args.trace, args.trace_format)
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            code = code or 3
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
