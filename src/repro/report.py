"""Measurement helpers shared by benchmarks and EXPERIMENTS.md.

Everything the paper's figures quantify — π terms and their arguments,
PFG edge inventories, statements inside critical sections, lock hold
times — is computed here so tests and benchmarks report identical
numbers.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cfg.blocks import NodeKind
from repro.cssa.builder import CSSAForm
from repro.ir.stmts import Phi, Pi, SAssign
from repro.ir.structured import ProgramIR, count_statements, iter_statements
from repro.obs.events import Event
from repro.obs.trace import Tracer, use_tracer
from repro.vm.machine import run_random

__all__ = [
    "FormMetrics",
    "critical_section_profile",
    "critical_section_profile_from_trace",
    "lock_profile_from_events",
    "lock_timeline_summary",
    "measure_form",
    "pfg_inventory",
]


class FormMetrics:
    """Static metrics of a CSSA/CSSAME form."""

    def __init__(self) -> None:
        self.pi_terms = 0
        self.pi_args = 0
        self.phi_terms = 0
        self.phi_args = 0
        self.assignments = 0
        self.statements = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "pi_terms": self.pi_terms,
            "pi_args": self.pi_args,
            "phi_terms": self.phi_terms,
            "phi_args": self.phi_args,
            "assignments": self.assignments,
            "statements": self.statements,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"FormMetrics({self.as_dict()})"


def measure_form(program: ProgramIR) -> FormMetrics:
    """Count φ/π terms and arguments in an SSA-form program."""
    metrics = FormMetrics()
    metrics.statements = count_statements(program)
    for stmt, _ctx in iter_statements(program):
        if isinstance(stmt, Pi):
            metrics.pi_terms += 1
            metrics.pi_args += 1 + len(stmt.conflicts)
        elif isinstance(stmt, Phi):
            metrics.phi_terms += 1
            metrics.phi_args += len(stmt.args)
        elif isinstance(stmt, SAssign):
            metrics.assignments += 1
    return metrics


def pfg_inventory(form: CSSAForm) -> dict[str, int]:
    """Node/edge counts of a PFG, by kind (the Figure 2 inventory)."""
    graph = form.graph
    counts = {f"nodes_{kind.value}": 0 for kind in NodeKind}
    for block in graph.blocks:
        counts[f"nodes_{block.kind.value}"] += 1
    counts["nodes_total"] = len(graph.blocks)
    counts["edges_control"] = sum(len(b.succs) for b in graph.blocks)
    counts["edges_conflict"] = len(graph.conflict_edges)
    counts["edges_mutex"] = len(graph.mutex_edges)
    counts["edges_sync"] = len(graph.sync_edges)
    return counts


def critical_section_profile(
    program: ProgramIR,
    seeds: Iterable[int] = range(8),
    fuel: int = 1_000_000,
) -> dict[str, float]:
    """Average per-run lock statistics under the random scheduler.

    Used to quantify what LICM buys: statements moved out of mutex
    bodies shorten the lock-held window and the time other threads sit
    blocked on the lock.
    """
    seed_list = list(seeds)
    held = 0.0
    blocked = 0.0
    acquisitions = 0.0
    steps = 0.0
    for seed in seed_list:
        ex = run_random(program, seed=seed, fuel=fuel)
        held += sum(ex.lock_held_steps.values())
        blocked += sum(ex.lock_blocked_steps.values())
        acquisitions += sum(ex.lock_acquisitions.values())
        steps += ex.steps
    n = max(len(seed_list), 1)
    return {
        "avg_lock_held_steps": held / n,
        "avg_lock_blocked_steps": blocked / n,
        "avg_lock_acquisitions": acquisitions / n,
        "avg_steps": steps / n,
    }


def lock_profile_from_events(
    events: Iterable, total_steps: int
) -> dict[str, dict[str, int]]:
    """Recompute per-lock statistics from a VM event trace.

    Accepts :class:`~repro.obs.events.Event` objects or the dicts a
    jsonl trace loads back to, and rebuilds exactly the three maps the
    VM's ad-hoc counters maintain (``lock_held_steps``,
    ``lock_blocked_steps``, ``lock_acquisitions``): acquisitions count
    ``lock-acquire`` events, held steps sum ``lock-release`` hold
    lengths (plus ``total_steps - acquire_step`` for locks never
    released, e.g. across a deadlock), and blocked steps count
    ``lock-contention`` events — one is emitted per blocked thread per
    global step.
    """
    held: dict[str, int] = {}
    blocked: dict[str, int] = {}
    acquisitions: dict[str, int] = {}
    open_holds: dict[str, int] = {}  # lock → step of unmatched acquire
    for event in events:
        record = event.as_dict() if isinstance(event, Event) else event
        kind = record.get("kind")
        if kind == "lock-acquire":
            lock = record["lock"]
            acquisitions[lock] = acquisitions.get(lock, 0) + 1
            open_holds[lock] = record["step"]
        elif kind == "lock-release":
            lock = record["lock"]
            held[lock] = held.get(lock, 0) + record["held_steps"]
            open_holds.pop(lock, None)
        elif kind == "lock-contention":
            lock = record["lock"]
            blocked[lock] = blocked.get(lock, 0) + 1
    # A lock held when the run ended (deadlock) was counted by the VM at
    # every *subsequent* step except the acquiring one, and the final
    # loop iteration never re-accounts — hence the -1.
    for lock, acquired_at in open_holds.items():
        extra = max(0, total_steps - 1 - acquired_at)
        if extra:  # the VM never materializes zero-valued entries
            held[lock] = held.get(lock, 0) + extra
    return {"held": held, "blocked": blocked, "acquisitions": acquisitions}


def lock_timeline_summary(execution) -> dict[str, dict]:
    """Per-lock contention timeline summary of one execution.

    Condenses ``Execution.lock_intervals`` into one row per lock: how
    many held/blocked intervals occurred, the longest of each (in
    global VM steps), and whether any interval was still open when the
    run ended — an open *held* interval past the final step is the
    deadlock signature.  The full interval list stays available on the
    execution for timeline rendering (``--trace-format chrome``).
    """
    summary: dict[str, dict] = {}
    for interval in execution.lock_intervals:
        row = summary.setdefault(
            interval["lock"],
            {
                "held_intervals": 0,
                "blocked_intervals": 0,
                "longest_held": 0,
                "longest_blocked": 0,
                "open": False,
            },
        )
        length = interval["to"] - interval["from"]
        if interval["kind"] == "held":
            row["held_intervals"] += 1
            row["longest_held"] = max(row["longest_held"], length)
        else:
            row["blocked_intervals"] += 1
            row["longest_blocked"] = max(row["longest_blocked"], length)
        if interval.get("open"):
            row["open"] = True
    return summary


def critical_section_profile_from_trace(
    program: ProgramIR,
    seeds: Iterable[int] = range(8),
    fuel: int = 1_000_000,
) -> dict[str, float]:
    """:func:`critical_section_profile`, recomputed from event traces.

    Runs the same seeds under an enabled tracer and derives every number
    from the emitted ``lock-*`` events instead of the VM's counters; the
    two functions agree exactly, which the test suite locks in.
    """
    seed_list = list(seeds)
    held = 0.0
    blocked = 0.0
    acquisitions = 0.0
    steps = 0.0
    for seed in seed_list:
        tracer = Tracer()
        with use_tracer(tracer):
            ex = run_random(program, seed=seed, fuel=fuel)
        profile = lock_profile_from_events(tracer.events(), ex.steps)
        held += sum(profile["held"].values())
        blocked += sum(profile["blocked"].values())
        acquisitions += sum(profile["acquisitions"].values())
        steps += ex.steps
    n = max(len(seed_list), 1)
    return {
        "avg_lock_held_steps": held / n,
        "avg_lock_blocked_steps": blocked / n,
        "avg_lock_acquisitions": acquisitions / n,
        "avg_steps": steps / n,
    }
