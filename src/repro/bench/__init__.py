"""repro.bench — the performance observatory.

The package turns the repo's scattered ``benchmarks/bench_*.py`` files
into one instrument:

* :mod:`repro.bench.registry` — every benchmark registers a named,
  grouped entry point with :func:`register`; :func:`discover` imports
  the ``benchmarks`` package to populate the registry.
* :mod:`repro.bench.runner` — statistical timing (warmup, repeats,
  median/IQR/min) plus a traced pass collecting the deterministic
  ``work.*`` counters of :mod:`repro.obs.prof`.
* :mod:`repro.bench.history` — append-only ``BENCH_history.jsonl``.
* :mod:`repro.bench.check` — the regression gate: work counters as the
  primary (noise-free) signal, IQR-aware wall-time as secondary.

``repro bench`` (see :mod:`repro.cli`) is the front door.
"""

from repro.bench.check import (
    COUNTER_TOLERANCE,
    Regression,
    WALL_IQR_MULT,
    WALL_REL_THRESHOLD,
    compare_records,
    format_regressions,
)
from repro.bench.env import fingerprint, git_commit
from repro.bench.history import (
    DEFAULT_HISTORY,
    append_record,
    load_history,
    previous_record,
)
from repro.bench.registry import (
    Benchmark,
    clear_registry,
    discover,
    register,
    registered,
    select,
)
from repro.bench.runner import (
    BenchResult,
    DEFAULT_REPEAT,
    DEFAULT_WARMUP,
    RECORD_SCHEMA,
    run_benchmark,
    run_suite,
    wall_stats,
)

__all__ = [
    "Benchmark",
    "BenchResult",
    "COUNTER_TOLERANCE",
    "DEFAULT_HISTORY",
    "DEFAULT_REPEAT",
    "DEFAULT_WARMUP",
    "RECORD_SCHEMA",
    "Regression",
    "WALL_IQR_MULT",
    "WALL_REL_THRESHOLD",
    "append_record",
    "clear_registry",
    "compare_records",
    "discover",
    "fingerprint",
    "format_regressions",
    "git_commit",
    "load_history",
    "previous_record",
    "register",
    "registered",
    "run_benchmark",
    "run_suite",
    "select",
    "wall_stats",
]
