"""The statistical benchmark runner.

Each benchmark is measured in two independent modes:

* **Timing** — ``warmup`` untimed calls, then ``repeat`` timed calls
  with tracing *disabled* (the production configuration); reported as
  median / IQR / min, the robust statistics recommended for noisy
  timers.  Benchmarks that measure timing internally register with a
  ``repeat`` cap (usually 1) so the runner does not multiply their
  cost.
* **Work** — one additional call under an enabled
  :class:`~repro.obs.trace.Tracer`, harvesting every counter the run
  produced (the deterministic ``work.*`` counters of
  :mod:`repro.obs.prof` plus cache/pass counters).  Benchmarks whose
  own measurements an ambient tracer would distort register with
  ``profile=False`` and contribute no counters.

:func:`run_suite` packages the results with an environment fingerprint
into one JSON-serializable record — the unit that
:mod:`repro.bench.history` appends and :mod:`repro.bench.check`
compares.
"""

from __future__ import annotations

import json
import statistics
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.bench.env import fingerprint
from repro.bench.registry import Benchmark
from repro.obs.trace import Tracer, use_tracer

__all__ = [
    "BenchResult",
    "RECORD_SCHEMA",
    "run_benchmark",
    "run_suite",
    "wall_stats",
]

RECORD_SCHEMA = "repro.bench/record/v1"

DEFAULT_REPEAT = 5
DEFAULT_WARMUP = 1


def wall_stats(samples: Sequence[float]) -> dict:
    """Robust summary of wall-clock samples (seconds in, ms out)."""
    if not samples:
        return {
            "repeats": 0,
            "median_ms": 0.0,
            "iqr_ms": 0.0,
            "min_ms": 0.0,
            "max_ms": 0.0,
        }
    ordered = sorted(s * 1e3 for s in samples)
    if len(ordered) >= 4:
        quartiles = statistics.quantiles(ordered, n=4)
        iqr = quartiles[2] - quartiles[0]
    else:
        # Too few samples for quartiles: spread is the honest stand-in.
        iqr = ordered[-1] - ordered[0]
    return {
        "repeats": len(ordered),
        "median_ms": round(statistics.median(ordered), 6),
        "iqr_ms": round(iqr, 6),
        "min_ms": round(ordered[0], 6),
        "max_ms": round(ordered[-1], 6),
    }


def _jsonable(value: object) -> object:
    """``value`` if JSON-serializable, else its repr."""
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return repr(value)
    return value


@dataclass
class BenchResult:
    """Outcome of one benchmark: timing stats, counters, payload."""

    name: str
    group: str
    wall: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    payload: object = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict:
        return {
            "group": self.group,
            "wall": self.wall,
            "counters": self.counters,
            "payload": _jsonable(self.payload),
            "error": self.error,
        }


def run_benchmark(
    bench: Benchmark,
    repeat: int = DEFAULT_REPEAT,
    warmup: int = DEFAULT_WARMUP,
) -> BenchResult:
    """Run one benchmark: warmup, timed repeats, traced work pass."""
    effective_repeat = max(1, min(repeat, bench.repeat or repeat))
    effective_warmup = warmup if effective_repeat > 1 else 0
    result = BenchResult(name=bench.name, group=bench.group)
    try:
        for _ in range(effective_warmup):
            bench.fn()
        samples: list[float] = []
        for _ in range(effective_repeat):
            start = time.perf_counter()
            result.payload = bench.fn()
            samples.append(time.perf_counter() - start)
        result.wall = wall_stats(samples)
        if bench.profile:
            tracer = Tracer()
            with use_tracer(tracer):
                bench.fn()
            result.counters = {
                name: counter.value
                for name, counter in sorted(tracer.metrics.counters.items())
            }
    except Exception as exc:  # noqa: BLE001 — report, don't crash the suite
        result.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    return result


def run_suite(
    benches: Sequence[Benchmark],
    repeat: int = DEFAULT_REPEAT,
    warmup: int = DEFAULT_WARMUP,
    group: Optional[str] = None,
) -> dict:
    """Run ``benches`` and package one history record."""
    results = [run_benchmark(b, repeat=repeat, warmup=warmup) for b in benches]
    return {
        "schema": RECORD_SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "group": group,
        "repeat": repeat,
        "warmup": warmup,
        "env": fingerprint(),
        "results": {r.name: r.as_dict() for r in results},
    }
