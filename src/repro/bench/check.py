"""The regression gate: compare two benchmark records.

Two signals, in priority order:

1. **Work counters (primary).**  The ``work.*`` counters are
   deterministic — same input, same code → same counts on any machine.
   A counter that grows beyond a small tolerance is a real algorithmic
   regression (more lattice evaluations, more π arguments examined),
   never timer noise.  Counters present only on one side are ignored:
   adding or removing instrumentation is not a regression.
2. **Wall time (secondary).**  Noise-aware: the current median must
   exceed *both* ``baseline_median × (1 + wall_rel)`` *and*
   ``baseline_median + wall_iqr_mult × IQR`` (the larger IQR of the two
   records) to count.  Sub-millisecond medians whose absolute change is
   within scheduler jitter therefore pass.

A benchmark present in the baseline but missing (or errored) in the
current record is itself a finding — a silently vanished benchmark
would otherwise shrink the gate's coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "COUNTER_TOLERANCE",
    "Regression",
    "WALL_IQR_MULT",
    "WALL_REL_THRESHOLD",
    "compare_records",
    "format_regressions",
]

#: relative growth a deterministic counter may show before failing
COUNTER_TOLERANCE = 0.05
#: relative wall-time growth required (median vs baseline median)
WALL_REL_THRESHOLD = 0.5
#: and the growth must also clear this many IQRs of observed noise
WALL_IQR_MULT = 3.0


@dataclass(frozen=True)
class Regression:
    """One gate finding."""

    bench: str
    kind: str  # "counter" | "wall" | "missing" | "error"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.bench}: {self.detail}"


def _compare_counters(
    name: str, current: dict, baseline: dict, tolerance: float
) -> list[Regression]:
    found: list[Regression] = []
    for counter, base_value in sorted(baseline.items()):
        cur_value = current.get(counter)
        if cur_value is None or not isinstance(base_value, (int, float)):
            continue  # instrumentation changed — not a regression
        if base_value > 0 and cur_value > base_value * (1.0 + tolerance):
            found.append(
                Regression(
                    bench=name,
                    kind="counter",
                    detail=(
                        f"{counter} grew {base_value} -> {cur_value} "
                        f"(+{(cur_value / base_value - 1.0) * 100:.1f}%, "
                        f"tolerance {tolerance * 100:.0f}%)"
                    ),
                )
            )
    return found


def _compare_wall(
    name: str,
    current: dict,
    baseline: dict,
    rel: float,
    iqr_mult: float,
) -> list[Regression]:
    cur_median = current.get("median_ms")
    base_median = baseline.get("median_ms")
    if not cur_median or not base_median:
        return []
    iqr = max(
        float(baseline.get("iqr_ms") or 0.0),
        float(current.get("iqr_ms") or 0.0),
    )
    threshold = max(base_median * (1.0 + rel), base_median + iqr_mult * iqr)
    if cur_median <= threshold:
        return []
    return [
        Regression(
            bench=name,
            kind="wall",
            detail=(
                f"median {base_median:.3f}ms -> {cur_median:.3f}ms "
                f"(threshold {threshold:.3f}ms = max(+{rel * 100:.0f}%, "
                f"+{iqr_mult:g} IQR of {iqr:.3f}ms))"
            ),
        )
    ]


def compare_records(
    current: dict,
    baseline: dict,
    counter_tolerance: float = COUNTER_TOLERANCE,
    wall_rel: float = WALL_REL_THRESHOLD,
    wall_iqr_mult: float = WALL_IQR_MULT,
) -> list[Regression]:
    """Every regression of ``current`` against ``baseline``."""
    regressions: list[Regression] = []
    cur_results = current.get("results") or {}
    base_results = baseline.get("results") or {}
    for name, base in sorted(base_results.items()):
        if base.get("error"):
            continue  # an errored baseline constrains nothing
        cur = cur_results.get(name)
        if cur is None:
            regressions.append(
                Regression(
                    bench=name,
                    kind="missing",
                    detail="present in baseline but absent from this run",
                )
            )
            continue
        if cur.get("error"):
            regressions.append(
                Regression(bench=name, kind="error", detail=cur["error"])
            )
            continue
        regressions.extend(
            _compare_counters(
                name,
                cur.get("counters") or {},
                base.get("counters") or {},
                counter_tolerance,
            )
        )
        regressions.extend(
            _compare_wall(
                name,
                cur.get("wall") or {},
                base.get("wall") or {},
                wall_rel,
                wall_iqr_mult,
            )
        )
    return regressions


def format_regressions(regressions: list[Regression]) -> str:
    """Human-readable gate report."""
    if not regressions:
        return "bench check: no regressions"
    lines = [f"bench check: {len(regressions)} regression(s)"]
    lines.extend(f"  {r}" for r in regressions)
    return "\n".join(lines)
