"""Environment fingerprint attached to every benchmark record.

Wall-clock numbers are only comparable within one environment; the
fingerprint makes each ``BENCH_history.jsonl`` record self-describing
so a later reader (or the regression gate) can tell whether two records
came from the same interpreter, machine class, and commit.
"""

from __future__ import annotations

import os
import platform
import subprocess
from typing import Optional

__all__ = ["fingerprint", "git_commit"]


def git_commit(cwd: Optional[str] = None) -> Optional[str]:
    """Short commit hash of the working tree, or None outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def fingerprint() -> dict:
    """The environment descriptor stored in every benchmark record."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "commit": git_commit(),
    }
