"""Append-only benchmark history (``BENCH_history.jsonl``).

One JSON record per line, append-only: the file is a time series of
:func:`repro.bench.runner.run_suite` records.  ``repro bench`` appends
after every run; ``repro bench --check`` reads the *previous* record of
the same group as its implicit baseline.

Unparseable lines are skipped on load (a truncated final line from an
interrupted run must not poison the history).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "DEFAULT_HISTORY",
    "append_record",
    "load_history",
    "previous_record",
]

DEFAULT_HISTORY = "BENCH_history.jsonl"

PathLike = Union[str, Path]


def append_record(record: dict, path: PathLike = DEFAULT_HISTORY) -> Path:
    """Append one record as a single JSON line; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_history(path: PathLike = DEFAULT_HISTORY) -> list[dict]:
    """All parseable records of a history file, oldest first."""
    target = Path(path)
    if not target.exists():
        return []
    records: list[dict] = []
    with target.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(parsed, dict):
                records.append(parsed)
    return records


def previous_record(
    records: list[dict], group: Optional[str] = None
) -> Optional[dict]:
    """Latest record matching ``group`` (None matches any group)."""
    for record in reversed(records):
        if group is None or record.get("group") == group:
            return record
    return None
