"""The benchmark registry — one place every benchmark signs into.

A benchmark is a zero-argument callable that runs a complete, asserted
workload and returns a JSON-serializable payload (the tables its
``benchmarks/bench_*.py`` file prints).  Files register their entry
points with the :func:`register` decorator::

    from repro.bench import register

    @register("figure3", group="fast",
              summary="CSSA vs CSSAME π reduction on the running example")
    def bench_figure3():
        ...
        return {"cssa": cssa, "cssame": cssame}

The registry powers ``repro bench``: :func:`discover` imports every
``benchmarks/bench_*.py`` module (each import registers its entry
points), :func:`select` filters by group or name, and
:mod:`repro.bench.runner` runs what was selected.

Registration metadata:

* ``group`` — selection label; ``"fast"`` is the CI regression-gate
  subset (deterministic, sub-second workloads), ``"slow"`` holds the
  timing-driven benchmarks.
* ``repeat`` — optional cap on the statistical repeat count, for
  benchmarks that measure timing internally or take seconds per run.
* ``profile`` — when False, the runner skips the traced work-counter
  pass; set it on benchmarks whose own measurements a globally enabled
  tracer would distort (e.g. the tracer-overhead benchmark itself).
* ``emits`` — names of ``BENCH_*.json`` files the benchmark refreshes
  as a side effect, for the CLI to report.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = [
    "Benchmark",
    "clear_registry",
    "discover",
    "register",
    "registered",
    "select",
]


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark entry point."""

    name: str
    group: str
    fn: Callable[[], object]
    summary: str = ""
    #: cap on the runner's repeat count (None = no cap)
    repeat: Optional[int] = None
    #: run a traced pass to collect deterministic work counters
    profile: bool = True
    #: BENCH_*.json files this benchmark writes as a side effect
    emits: tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: dict[str, Benchmark] = {}


def register(
    name: str,
    group: str = "fast",
    *,
    summary: str = "",
    repeat: Optional[int] = None,
    profile: bool = True,
    emits: Iterable[str] = (),
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Decorator: sign ``fn`` into the registry as ``name``."""

    def decorate(fn: Callable[[], object]) -> Callable[[], object]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.fn is not fn:
            raise ValueError(f"benchmark {name!r} is already registered")
        bench = Benchmark(
            name=name,
            group=group,
            fn=fn,
            summary=summary or (fn.__doc__ or "").strip().splitlines()[0]
            if (summary or fn.__doc__)
            else "",
            repeat=repeat,
            profile=profile,
            emits=tuple(emits),
        )
        _REGISTRY[name] = bench
        fn.benchmark = bench  # type: ignore[attr-defined]
        return fn

    return decorate


def registered() -> dict[str, Benchmark]:
    """Name → benchmark, insertion-ordered (import order)."""
    return dict(_REGISTRY)


def clear_registry() -> None:
    """Empty the registry (test isolation)."""
    _REGISTRY.clear()


def select(
    group: Optional[str] = None, names: Optional[Iterable[str]] = None
) -> list[Benchmark]:
    """Registered benchmarks filtered by group and/or names, sorted."""
    picked = sorted(_REGISTRY.values(), key=lambda b: b.name)
    if group is not None:
        picked = [b for b in picked if b.group == group]
    if names is not None:
        wanted = set(names)
        unknown = wanted - {b.name for b in picked}
        if unknown:
            raise KeyError(f"unknown benchmark(s): {sorted(unknown)}")
        picked = [b for b in picked if b.name in wanted]
    return picked


def discover(package: str = "benchmarks") -> int:
    """Import every ``bench_*`` module of ``package`` (each import
    registers its benchmarks); returns how many modules were imported.

    Missing package → 0 (an installed wheel has no benchmarks tree).
    """
    try:
        pkg = importlib.import_module(package)
    except ImportError:
        return 0
    count = 0
    for info in pkgutil.iter_modules(pkg.__path__):
        if info.name.startswith("bench_"):
            importlib.import_module(f"{package}.{info.name}")
            count += 1
    return count
