"""Single source of the package version.

Lives in its own module (rather than ``repro/__init__``) so low-level
modules — notably :mod:`repro.session.artifacts`, which folds the
version into every cache key — can import it without touching the
package root and its re-export graph.
"""

__version__ = "1.2.0"
