"""Outcome-set comparison between an original and a transformed program.

Atomicity contract
------------------

The VM interleaves at *instruction* granularity.  CSSA construction
materializes a π term as an explicit copy ``t = v``, splitting what the
source wrote as one statement (``v = v + 1``) into a separate shared
read and shared write — exactly the granularity real load/store hardware
(and the paper's sequentially consistent model) exhibits.  Splitting
only *refines* behaviour: every source outcome remains schedulable (run
the read and write back-to-back), but contested statements may expose
additional interleavings.

Verification therefore uses two relations:

* **equality** between the CSSA/CSSAME *form* of a program and its
  optimized version — both sides have identical read/write granularity,
  so the optimizations must preserve the outcome set exactly;
* **refinement** between the original source program and its CSSA form —
  ``outcomes(source) ⊆ outcomes(form)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import AnalysisError
from repro.ir.structured import ProgramIR
from repro.vm.explore import explore
from repro.vm.machine import run_random

__all__ = [
    "EquivalenceResult",
    "deterministic_output",
    "exhaustive_equivalence",
    "sampled_equivalence",
]


class EquivalenceResult:
    """Outcome-set comparison summary."""

    def __init__(
        self,
        equal: bool,
        only_original: frozenset,
        only_transformed: frozenset,
        original_count: int,
        transformed_count: int,
        complete: bool,
    ) -> None:
        self.equal = equal
        self.only_original = only_original
        self.only_transformed = only_transformed
        self.original_count = original_count
        self.transformed_count = transformed_count
        #: False when either exploration hit the state budget
        self.complete = complete

    @property
    def equal_modulo_deadlock_removal(self) -> bool:
        """Equality, except the transformed program may have *lost* some
        deadlocking behaviours.

        LICM deletes Lock/Unlock pairs whose mutex body emptied (paper
        Algorithm A.5 lines 43–45).  An empty critical section excludes
        nothing, so removing it cannot change any data outcome — but it
        can break a lock-ordering cycle and thereby remove a *deadlock*
        from the behaviour set.  That improvement is the only deviation
        this relaxed relation accepts: the transformed program must
        produce no new behaviour, and every lost behaviour must end in
        the deadlock marker.
        """
        if self.only_transformed:
            return False
        return all(o and o[-1] == ("deadlock",) for o in self.only_original)

    def explain(self) -> str:
        if self.equal:
            return (
                f"outcome sets identical "
                f"({self.original_count} behaviours)"
            )
        lines = [
            f"outcome sets differ: {self.original_count} original vs "
            f"{self.transformed_count} transformed"
        ]
        for o in sorted(self.only_original)[:5]:
            lines.append(f"  only original:    {o}")
        for o in sorted(self.only_transformed)[:5]:
            lines.append(f"  only transformed: {o}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"EquivalenceResult(equal={self.equal})"


def exhaustive_refinement(
    source: ProgramIR,
    refined: ProgramIR,
    functions: Optional[Callable[[str, list[int]], int]] = None,
    max_states: int = 200_000,
) -> EquivalenceResult:
    """Check ``outcomes(source) ⊆ outcomes(refined)``.

    The result's ``equal`` is True when the subset relation holds;
    ``only_original`` lists the violating outcomes (must be empty).
    """
    a = explore(source, functions=functions, max_states=max_states)
    b = explore(refined, functions=functions, max_states=max_states)
    missing = frozenset(a.outcomes - b.outcomes)
    return EquivalenceResult(
        equal=not missing,
        only_original=missing,
        only_transformed=frozenset(b.outcomes - a.outcomes),
        original_count=len(a.outcomes),
        transformed_count=len(b.outcomes),
        complete=a.complete and b.complete,
    )


def exhaustive_equivalence(
    original: ProgramIR,
    transformed: ProgramIR,
    functions: Optional[Callable[[str, list[int]], int]] = None,
    max_states: int = 200_000,
) -> EquivalenceResult:
    """Explore every schedule of both programs and compare outcome sets."""
    a = explore(original, functions=functions, max_states=max_states)
    b = explore(transformed, functions=functions, max_states=max_states)
    equal = a.outcomes == b.outcomes
    return EquivalenceResult(
        equal=equal,
        only_original=frozenset(a.outcomes - b.outcomes),
        only_transformed=frozenset(b.outcomes - a.outcomes),
        original_count=len(a.outcomes),
        transformed_count=len(b.outcomes),
        complete=a.complete and b.complete,
    )


def sampled_equivalence(
    original: ProgramIR,
    transformed: ProgramIR,
    seeds: Iterable[int] = range(64),
    functions: Optional[Callable[[str, list[int]], int]] = None,
    fuel: int = 1_000_000,
) -> EquivalenceResult:
    """Compare outcome sets observed over seeded random schedules.

    Sampling cannot prove equality, but a transformed-only outcome is a
    definite red flag; the property tests require
    ``only_transformed ⊆ original`` to hold on the *exhaustive* set of
    the original when sizes permit, and use this as a smoke check above
    that size.
    """
    seed_list = list(seeds)
    a = {
        run_random(original, seed=s, functions=functions, fuel=fuel,
                   raise_on_deadlock=False).output_key()
        for s in seed_list
    }
    b = {
        run_random(transformed, seed=s, functions=functions, fuel=fuel,
                    raise_on_deadlock=False).output_key()
        for s in seed_list
    }
    return EquivalenceResult(
        equal=a == b,
        only_original=frozenset(a - b),
        only_transformed=frozenset(b - a),
        original_count=len(a),
        transformed_count=len(b),
        complete=False,
    )


def deterministic_output(
    program: ProgramIR,
    seeds: Iterable[int] = range(16),
    functions: Optional[Callable[[str, list[int]], int]] = None,
    fuel: int = 1_000_000,
) -> tuple:
    """The program's single output, asserting schedule independence.

    Raises :class:`AnalysisError` when two seeds observe different
    outputs — i.e. the program is not output deterministic.
    """
    outputs = set()
    for s in seeds:
        outputs.add(run_random(program, seed=s, functions=functions, fuel=fuel).output_key())
        if len(outputs) > 1:
            raise AnalysisError(
                f"program output depends on the schedule: {sorted(outputs)[:2]}"
            )
    return next(iter(outputs))
