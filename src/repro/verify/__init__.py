"""Semantic equivalence checking between program versions.

The paper's transformations claim to preserve program behaviour under
interleaving semantics.  This package turns that claim into a checkable
property:

* :func:`exhaustive_equivalence` — compare the *complete* outcome sets
  of two programs via the schedule explorer (small programs);
* :func:`sampled_equivalence` — compare outcome sets observed across
  seeded random schedules (larger programs);
* :func:`deterministic_output` — for programs whose output is schedule
  independent, the single output.
"""

from repro.verify.equivalence import (
    EquivalenceResult,
    deterministic_output,
    exhaustive_equivalence,
    exhaustive_refinement,
    sampled_equivalence,
)

__all__ = [
    "EquivalenceResult",
    "deterministic_output",
    "exhaustive_equivalence",
    "exhaustive_refinement",
    "sampled_equivalence",
]
