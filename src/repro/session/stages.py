"""The pipeline stage graph.

The compiler's journeys all walk one DAG::

    source ──> ast ──> ir ──┬─> cssame(prune, prune_events) ──┬─> dot(title)
                            │        (prune=False is CSSA)    └─> diagnostics
                            ├─> optimized(passes, use_mutex,
                            │             fold_output_uses, simplify)
                            └─> bytecode

Each node is a :class:`StageSpec`: a name, the parent stage it consumes,
the option names that parameterise it, and a pure-from-the-outside
compute function.  A stage's artifact key is derived from its parent's
key plus its options (see :mod:`repro.session.artifacts`), so the graph
doubles as the cache's addressing scheme: asking for ``diagnostics``
twice walks the same chain of keys and reuses whatever prefix is
already materialised.

Mutation discipline — the single invariant that makes caching sound:
**a compute function must never mutate its input artifact.**  The
front-end stages are naturally pure (parsing and lowering build fresh
objects); the SSA construction and the optimizer, however, rewrite a
``ProgramIR`` *in place*, so their compute functions deep-copy the
cached IR first (:func:`repro.ir.structured.clone_program`) and mutate
the private copy.  That copy-on-write step is what lets one cached
``ir`` artifact feed ``cssame``, ``optimized`` and ``bytecode`` without
any stage corrupting another's input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

from repro.cfg.dot import to_dot
from repro.cssame.builder import build_cssame
from repro.ir.lower import lower_program
from repro.ir.structured import clone_program
from repro.lang.parser import parse
from repro.mutex.deadlock import detect_lock_order_cycles
from repro.mutex.races import detect_races
from repro.mutex.warnings import SyncWarning, check_synchronization
from repro.obs.trace import get_tracer
from repro.opt.pipeline import optimize
from repro.vm.compile import compile_program

__all__ = ["STAGES", "StageSpec", "stage_order"]


@dataclass(frozen=True)
class StageSpec:
    """One node of the pipeline stage graph."""

    name: str
    #: the stage whose artifact this one consumes (``None`` for the root)
    parent: Optional[str]
    #: option names that parameterise the stage (part of its cache key)
    option_names: Tuple[str, ...]
    #: ``compute(parent_artifact, options) -> artifact``
    compute: Callable[[Any, Mapping[str, Any]], Any]
    #: options of the *parent* chain this stage pins (e.g. diagnostics
    #: always reads the unpruned CSSA form)
    parent_options: Mapping[str, Any] = None  # type: ignore[assignment]


def _compute_ast(source: str, options: Mapping[str, Any]):
    return parse(source)


def _compute_ir(ast, options: Mapping[str, Any]):
    return lower_program(ast)


def _compute_cssame(ir, options: Mapping[str, Any]):
    # build_cssame rewrites the program in place: work on a private copy
    # so the cached ``ir`` artifact stays pristine (copy-on-write).
    program = clone_program(ir)
    return build_cssame(
        program,
        prune=options["prune"],
        prune_events=options["prune_events"],
    )


def _compute_diagnostics(form, options: Mapping[str, Any]):
    """Section 6 diagnostics over the (unpruned) CSSA form.

    Returns ``(warnings, races)``; the lists are treated as immutable
    once cached — the session hands out shallow copies.
    """
    with get_tracer().span("diagnose") as span:
        warnings = check_synchronization(form.graph, form.structures)
        for risk in detect_lock_order_cycles(form.graph, form.structures):
            blocks = tuple(b for bs in risk.witnesses.values() for b in bs)
            warnings.append(SyncWarning("deadlock-risk", risk.message(), blocks))
        races = detect_races(form.graph, form.structures)
        span.set(warnings=len(warnings), races=len(races))
    return warnings, races


def _compute_optimized(ir, options: Mapping[str, Any]):
    # optimize() rewrites the program in place: copy-on-write again.
    program = clone_program(ir)
    return optimize(
        program,
        passes=options["passes"],
        use_mutex=options["use_mutex"],
        simplify=options["simplify"],
        fold_output_uses=options["fold_output_uses"],
    )


def _compute_dot(form, options: Mapping[str, Any]):
    return to_dot(form.graph, title=options["title"])


def _compute_bytecode(ir, options: Mapping[str, Any]):
    # compile_program only reads, but cloning keeps the invariant
    # obvious and costs microseconds next to everything else.
    return compile_program(clone_program(ir))


#: the stage graph, in dependency order
STAGES: dict[str, StageSpec] = {
    spec.name: spec
    for spec in (
        StageSpec("ast", None, (), _compute_ast),
        StageSpec("ir", "ast", (), _compute_ir),
        StageSpec("cssame", "ir", ("prune", "prune_events"), _compute_cssame),
        StageSpec(
            "diagnostics",
            "cssame",
            (),
            _compute_diagnostics,
            parent_options={"prune": False, "prune_events": True},
        ),
        StageSpec(
            "optimized",
            "ir",
            ("passes", "use_mutex", "fold_output_uses", "simplify"),
            _compute_optimized,
        ),
        StageSpec("dot", "cssame", ("title",), _compute_dot),
        StageSpec("bytecode", "ir", (), _compute_bytecode),
    )
}


def stage_order() -> list[str]:
    """Stage names in topological (definition) order."""
    return list(STAGES)
