"""Content-addressed artifact store for the pipeline stage graph.

Every pipeline stage produces one *artifact* (an AST, an IR program, a
CSSAME form, a diagnostics bundle, ...).  An artifact is addressed by a
key that hashes its complete derivation:

    key(source)          = H("source", text)
    key(stage, options)  = H(stage, key(parent), canonical(options))

so two requests share an artifact exactly when they start from the same
source text *and* ask for the same stage under the same options.  The
chain means no stage ever has to hash its (possibly large, mutable)
input value — provenance identifies content, the way a build system's
action cache keys outputs by the recipe rather than by the bytes it
produced.

Keys are **versioned**: every digest folds in the package version and
(for stages) the stage's declared option schema.  An in-process LRU
never needed that — it dies with the process — but the persistent store
of :mod:`repro.serve.store` keeps artifacts across releases, and a new
release may change what any stage computes or which options
parameterise it.  Folding ``repro.__version__`` and the option-name
tuple into the key means stale on-disk artifacts are simply never
addressed again: they self-invalidate without any migration logic.

The store itself is a bounded LRU map plus hit/miss accounting.  It is
safe to share between threads: lookups and insertions take an internal
lock, while stage *computation* happens outside it (two threads racing
to fill the same key simply compute twice and last-write-wins — results
are deterministic, so both values are equal).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro._version import __version__

__all__ = ["ArtifactCache", "CacheStats", "derive_key", "key_salt", "source_key"]

#: folded into every key; changing the release invalidates every
#: persisted artifact (tests monkeypatch the module-level salt)
_KEY_SALT = f"repro-{__version__}"


def key_salt() -> str:
    """The version salt every artifact key is derived under."""
    return _KEY_SALT


def _canonical(options: Mapping[str, Any]) -> str:
    """Deterministic text form of a stage's option mapping.

    Options are restricted to flat, repr-stable values (bools, ints,
    strings, tuples of strings) — exactly what the pipeline's knobs
    are.  Sorting by name makes keyword order irrelevant.
    """
    return ";".join(f"{k}={options[k]!r}" for k in sorted(options))


def source_key(text: str) -> str:
    """Artifact key of a source text: the root of every derivation."""
    digest = hashlib.sha256()
    digest.update(_KEY_SALT.encode("utf-8"))
    digest.update(b"\x00source\x00")
    digest.update(text.encode("utf-8"))
    return digest.hexdigest()


def derive_key(
    stage: str,
    parent_key: str,
    options: Mapping[str, Any],
    schema: Optional[Sequence[str]] = None,
) -> str:
    """Artifact key of ``stage`` applied to the ``parent_key`` artifact.

    ``schema`` is the stage's declared option-name tuple (defaults to
    the names of ``options``): it is hashed *separately* from the
    option values, so adding an option to a stage — even one whose
    default reproduces the old behaviour — re-keys every artifact the
    stage ever produced.
    """
    if schema is None:
        schema = tuple(sorted(options))
    digest = hashlib.sha256()
    digest.update(_KEY_SALT.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(stage.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(",".join(sorted(schema)).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(parent_key.encode("ascii"))
    digest.update(b"\x00")
    digest.update(_canonical(options).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, total and per stage."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    by_stage: dict = field(default_factory=dict)

    def record(self, stage: str, hit: bool) -> None:
        entry = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0})
        if hit:
            self.hits += 1
            entry["hits"] += 1
        else:
            self.misses += 1
            entry["misses"] += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "by_stage": {
                stage: dict(entry)
                for stage, entry in sorted(self.by_stage.items())
            },
        }


class ArtifactCache:
    """Bounded, thread-safe LRU map from artifact key → artifact.

    ``max_entries=None`` means unbounded (the right default for a
    short-lived CLI process); long-running services should set a bound —
    eviction is least-recently-used and counted in :class:`CacheStats`.
    """

    _MISSING = object()

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, stage: str) -> Any:
        """The artifact under ``key``, or :data:`ArtifactCache.MISSING`.

        Records a hit/miss against ``stage`` and refreshes LRU order.
        """
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self.stats.record(stage, hit=False)
            else:
                self._entries.move_to_end(key)
                self.stats.record(stage, hit=True)
            return value

    def peek(self, key: str) -> Any:
        """Like :meth:`get` (refreshes LRU order) but records no stats.

        Layered stores use this to probe the memory tier before falling
        back to slower tiers, accounting the *combined* outcome once.
        """
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is not self._MISSING:
                self._entries.move_to_end(key)
            return value

    def record(self, stage: str, hit: bool) -> None:
        """Account one lookup against ``stage`` (for layered stores)."""
        with self._lock:
            self.stats.record(stage, hit=hit)

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every artifact (stats are kept — they describe history)."""
        with self._lock:
            self._entries.clear()

    @property
    def MISSING(self) -> Any:
        return self._MISSING

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ArtifactCache(entries={len(self)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )
