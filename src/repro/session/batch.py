"""Parallel corpus driver: analyze + diagnose a directory of ``.par`` files.

:class:`BatchSession` fans a corpus out over a ``concurrent.futures``
pool (``executor="thread"`` shares one artifact cache across workers,
``executor="process"`` buys real CPU parallelism for the pure-Python
pipeline at the cost of per-process caches) and collects one
:class:`FileResult` per input **in the order the inputs were given**,
regardless of completion order.

Error isolation: a file that fails to read, parse, or analyze yields a
``FileResult`` whose ``error`` field carries the structured message —
it never kills the batch and never disturbs its neighbours' results.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Optional, Sequence

from repro.report import measure_form
from repro.session.session import Session

__all__ = ["BatchSession", "FileResult"]

_EXECUTORS = ("serial", "thread", "process")


@dataclass
class FileResult:
    """The outcome of one file's journey through the batch pipeline.

    Exactly one of the two shapes occurs: ``ok=True`` with the analysis
    payload filled in, or ``ok=False`` with ``error`` set and the
    payload fields empty.
    """

    path: str
    ok: bool
    error: Optional[str] = None
    #: rendered Section 6 findings
    warnings: list = field(default_factory=list)
    races: list = field(default_factory=list)
    #: FormMetrics of the CSSAME program (statements, pi/phi counts, ...)
    metrics: dict = field(default_factory=dict)
    #: optimization stats, when the batch ran with ``optimize=True``
    optimize: Optional[dict] = None
    #: wall seconds this file took inside its worker
    duration: float = 0.0

    def summary(self) -> str:
        """One status line, the shape ``repro batch`` prints."""
        if not self.ok:
            return f"{self.path}: ERROR {self.error}"
        parts = [
            f"pi_terms={self.metrics.get('pi_terms', 0)}",
            f"warnings={len(self.warnings)}",
            f"races={len(self.races)}",
        ]
        if self.optimize is not None:
            parts.append(
                f"removed={self.optimize['removed']}"
                f" moved={self.optimize['moved']}"
            )
        return f"{self.path}: ok " + " ".join(parts)


def _process_file(
    path: str,
    optimize: bool,
    prune: bool,
    session: Optional[Session] = None,
) -> FileResult:
    """Run one file's journey; module-level so process pools can pickle it."""
    t0 = perf_counter()
    own = session if session is not None else Session()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        form = own.analyze(source, prune=prune)
        warnings, races = own.diagnose(source)
        result = FileResult(
            path=path,
            ok=True,
            warnings=[f"[{w.kind}] {w.message}" for w in warnings],
            races=[r.message() for r in races],
            metrics=measure_form(form.program).as_dict(),
        )
        if optimize:
            report = own.optimize(source, use_mutex=prune)
            result.optimize = {
                "constants": len(report.constprop.constants),
                "removed": report.pdce.total_removed,
                "moved": report.licm.total_moved,
            }
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return FileResult(
            path=path,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            duration=perf_counter() - t0,
        )
    result.duration = perf_counter() - t0
    return result


class BatchSession:
    """Analyze a corpus of ``.par`` files concurrently.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` or ``1`` runs serially in-process (and
        shares the session cache, which is also the deterministic
        baseline the scaling benchmark compares against).
    executor:
        ``"thread"`` (default; shared cache, GIL-bound), ``"process"``
        (true parallelism, per-worker caches, inputs must be files on
        disk), or ``"serial"``.
    optimize:
        Also run the optimization pipeline per file and record its
        stats.
    prune:
        Build CSSAME (``True``, default) or plain CSSA forms.
    session:
        The artifact-cache-bearing :class:`Session` shared by serial
        and thread execution; a fresh one is created if omitted.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        executor: str = "thread",
        optimize: bool = False,
        prune: bool = True,
        session: Optional[Session] = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs or 1
        self.executor = "serial" if self.jobs == 1 else executor
        self.optimize = optimize
        self.prune = prune
        self.session = session if session is not None else Session()

    def run_dir(self, directory: str, pattern: str = ".par") -> list[FileResult]:
        """Every ``*.par`` file under ``directory`` (sorted, recursive)."""
        paths = []
        for root, _dirs, files in os.walk(directory):
            for name in sorted(files):
                if name.endswith(pattern):
                    paths.append(os.path.join(root, name))
        return self.run(sorted(paths))

    def run(self, paths: Sequence[str] | Iterable[str]) -> list[FileResult]:
        """One :class:`FileResult` per path, in input order."""
        paths = list(paths)
        if self.executor == "serial":
            return [
                _process_file(p, self.optimize, self.prune, self.session)
                for p in paths
            ]
        if self.executor == "thread":
            pool_cls = concurrent.futures.ThreadPoolExecutor
            shared = self.session
        else:
            pool_cls = concurrent.futures.ProcessPoolExecutor
            shared = None  # sessions don't cross process boundaries
        results: list[Optional[FileResult]] = [None] * len(paths)
        with pool_cls(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(
                    _process_file, path, self.optimize, self.prune, shared
                ): index
                for index, path in enumerate(paths)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except Exception as exc:  # worker/pool-level failure
                    results[index] = FileResult(
                        path=paths[index],
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
        return [r for r in results if r is not None]
