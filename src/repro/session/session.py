"""The :class:`Session` — the canonical entry point of the package.

A session owns one :class:`~repro.session.artifacts.ArtifactCache` and
answers pipeline requests (*analyze*, *diagnose*, *optimize*, *dot*,
*bytecode*) by walking the stage graph of :mod:`repro.session.stages`,
reusing every artifact the cache already holds.  Sweeping one program
through analyze + diagnose + dot therefore parses and lowers it once,
builds each SSA variant once, and pays only the last stage of each
journey on repeats::

    from repro.session import Session

    session = Session()
    form = session.analyze(source)            # parse + lower + CSSAME
    warnings, races = session.diagnose(source)  # reuses ast/ir; adds CSSA
    dot = session.dot(source)                   # pure cache walk + render
    print(session.cache_stats().hit_rate)

Sharing rules (what a caller may do with a returned artifact):

* :meth:`front_end` returns a **private deep copy** of the cached IR —
  mutate it freely (the VM, the optimizer and destructive passes do).
* :meth:`analyze` and :meth:`optimize` return the **cached object**;
  treat it as read-only.  The session guarantees its own stages never
  corrupt each other (copy-on-write inside the stage graph), but a
  caller who mutates a shared form sees their edits on the next hit.
* :meth:`diagnose` returns fresh lists (of shared, immutable findings).

Tracing: every stage lookup runs under a ``stage:<name>`` span carrying
a ``cache_hit`` attribute, and bumps the ``session.cache.hit`` /
``session.cache.miss`` counters of the active tracer.  A session built
with ``fresh_when_traced=True`` (what the :mod:`repro.api` facade uses)
recomputes stages whenever tracing is enabled, so a traced run always
observes the real pipeline rather than a cache lookup.
"""

from __future__ import annotations

import contextlib
from typing import Any, Mapping, Optional

from repro.cssame.builder import CSSAMEForm
from repro.ir.printer import format_ir
from repro.ir.structured import ProgramIR, clone_program
from repro.mutex.races import RaceReport
from repro.mutex.warnings import SyncWarning
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.opt.pipeline import OptimizationReport
from repro.session.artifacts import ArtifactCache, CacheStats, derive_key, source_key
from repro.session.stages import STAGES
from repro.vm.bytecode import VMProgram

__all__ = ["Session"]

_DEFAULT_PASSES = ("constprop", "pdce", "licm")

#: per-journey option defaults, the same values the journey methods
#: default to — :meth:`Session.artifact_key` fills a request with these
#: before applying the caller's overrides
_CHAIN_DEFAULTS: dict[str, dict] = {
    "ast": {},
    "ir": {},
    "cssame": {"prune": True, "prune_events": True},
    "diagnostics": {},
    "optimized": {
        "passes": _DEFAULT_PASSES,
        "use_mutex": True,
        "fold_output_uses": True,
        "simplify": True,
    },
    "dot": {"title": "PFG", "prune": True, "prune_events": True},
    "bytecode": {},
}


def _tracing(trace: Optional[Tracer]):
    if trace is None:
        return contextlib.nullcontext()
    return use_tracer(trace)


class Session:
    """A caching pipeline driver over the stage graph.

    Parameters
    ----------
    max_entries:
        Artifact-cache bound (LRU eviction); ``None`` = unbounded.
    cache:
        An explicit artifact store to use instead of a fresh in-memory
        :class:`ArtifactCache` — anything with the same ``get`` /
        ``put`` / ``MISSING`` / ``stats`` surface.  This is how
        ``repro.serve`` layers its persistent on-disk store under the
        session (``max_entries`` is ignored when ``cache`` is given).
    fresh_when_traced:
        When ``True``, any request made while tracing is enabled
        recomputes every stage it touches (and refreshes the cache with
        the results).  This preserves the one-shot observability
        contract of the legacy ``repro.api`` helpers: a traced run's
        spans and events always describe a full pipeline execution.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        fresh_when_traced: bool = False,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache(max_entries=max_entries)
        self.fresh_when_traced = fresh_when_traced

    # -- the generic stage walk ---------------------------------------------

    def _options_for(self, stage: str, request: Mapping[str, Any]) -> dict:
        spec = STAGES[stage]
        return {name: request[name] for name in spec.option_names}

    def _key_for(self, stage: str, source: str, request: Mapping[str, Any]) -> str:
        """Artifact key of ``stage`` by walking the parent chain."""
        spec = STAGES[stage]
        if spec.parent is None:
            parent_key = source_key(source)
        else:
            parent_request = dict(request)
            if spec.parent_options:
                parent_request.update(spec.parent_options)
            parent_key = self._key_for(spec.parent, source, parent_request)
        return derive_key(
            stage,
            parent_key,
            self._options_for(stage, request),
            schema=spec.option_names,
        )

    def artifact_key(self, stage: str, source: str, **options: Any) -> str:
        """The public artifact key of ``stage`` for ``source``.

        ``options`` must name every option of the stage *chain* that
        differs from the journey defaults (the same names the journey
        methods accept).  Used by the serve layer for provenance and by
        store tooling; computing a key never computes the artifact.
        """
        request = dict(_CHAIN_DEFAULTS.get(stage, {}))
        request.update(options)
        return self._key_for(stage, source, request)

    def _artifact(self, stage: str, source: str, request: Mapping[str, Any]) -> Any:
        """The ``stage`` artifact for ``source``, computing on miss.

        ``request`` maps option names (for the whole chain) to values;
        each stage picks out the names it declares.
        """
        spec = STAGES[stage]
        key = self._key_for(stage, source, request)
        tracer = get_tracer()
        bypass = self.fresh_when_traced and tracer.enabled
        value = self.cache.MISSING if bypass else self.cache.get(key, stage)
        hit = value is not self.cache.MISSING
        if tracer.enabled:
            tracer.counter(
                "session.cache.hit" if hit else "session.cache.miss"
            ).inc()
        if hit:
            with tracer.span(f"stage:{stage}", cache_hit=True):
                pass
            return value
        if spec.parent is None:
            parent_value = source
        else:
            parent_request = dict(request)
            if spec.parent_options:
                parent_request.update(spec.parent_options)
            parent_value = self._artifact(spec.parent, source, parent_request)
        with tracer.span(f"stage:{stage}", cache_hit=False):
            value = spec.compute(parent_value, self._options_for(stage, request))
        if tracer.enabled:
            # Deterministic work hook: one unit per stage actually
            # computed (cache hits cost no stage work by definition).
            tracer.counter(f"work.session.compute.{stage}").inc()
        self.cache.put(key, value)
        return value

    # -- journeys ------------------------------------------------------------

    def front_end(
        self, source: str, trace: Optional[Tracer] = None
    ) -> ProgramIR:
        """Parse and lower ``source``; returns a private, mutable copy."""
        with _tracing(trace):
            return clone_program(self._artifact("ir", source, {}))

    def analyze(
        self,
        source: str,
        prune: bool = True,
        prune_events: bool = True,
        trace: Optional[Tracer] = None,
    ) -> CSSAMEForm:
        """CSSAME form of ``source`` (``prune=False`` → plain CSSA).

        The returned form is the cached artifact — treat it as
        read-only.
        """
        with _tracing(trace):
            return self._artifact(
                "cssame",
                source,
                {"prune": prune, "prune_events": prune_events},
            )

    def diagnose(
        self, source: str, trace: Optional[Tracer] = None
    ) -> tuple[list[SyncWarning], list[RaceReport]]:
        """Section 6 diagnostics (sync warnings + potential races)."""
        with _tracing(trace):
            warnings, races = self._artifact("diagnostics", source, {})
            return list(warnings), list(races)

    def optimize(
        self,
        source: str,
        passes: tuple[str, ...] = _DEFAULT_PASSES,
        use_mutex: bool = True,
        fold_output_uses: bool = True,
        simplify: bool = True,
        trace: Optional[Tracer] = None,
    ) -> OptimizationReport:
        """The paper's optimization pipeline; cached per option tuple."""
        with _tracing(trace):
            return self._artifact(
                "optimized",
                source,
                {
                    "passes": tuple(passes),
                    "use_mutex": use_mutex,
                    "fold_output_uses": fold_output_uses,
                    "simplify": simplify,
                },
            )

    def dot(
        self,
        source: str,
        title: str = "PFG",
        prune: bool = True,
        trace: Optional[Tracer] = None,
    ) -> str:
        """DOT rendering of the PFG (CSSAME, or CSSA with ``prune=False``)."""
        with _tracing(trace):
            return self._artifact(
                "dot",
                source,
                {
                    "title": title,
                    "prune": prune,
                    "prune_events": True,
                },
            )

    def bytecode(self, source: str, trace: Optional[Tracer] = None) -> VMProgram:
        """VM bytecode of the (unoptimized) program."""
        with _tracing(trace):
            return self._artifact("bytecode", source, {})

    # -- bookkeeping ---------------------------------------------------------

    def listing(self, program: ProgramIR) -> str:
        """Source-like listing of a program in any form."""
        return format_ir(program)

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction accounting for this session's cache."""
        return self.cache.stats

    def clear_cache(self) -> None:
        """Drop every cached artifact (accounting is preserved)."""
        self.cache.clear()

    def __repr__(self) -> str:  # pragma: no cover
        stats = self.cache.stats
        return (
            f"Session(artifacts={len(self.cache)}, hits={stats.hits}, "
            f"misses={stats.misses})"
        )
