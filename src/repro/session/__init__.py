"""repro.session — the stage-graph Session API.

The canonical programmatic surface of the package (see ``docs/API.md``):

* :class:`~repro.session.session.Session` — a caching pipeline driver
  that models ``source → ast → ir → cssame → {diagnostics, optimized,
  dot, bytecode}`` as an explicit stage graph with a content-addressed
  artifact cache;
* :class:`~repro.session.batch.BatchSession` /
  :class:`~repro.session.batch.FileResult` — the parallel corpus
  driver behind ``repro batch``;
* :class:`~repro.session.artifacts.ArtifactCache` /
  :class:`~repro.session.artifacts.CacheStats` — the cache itself.

The legacy one-shot helpers in :mod:`repro.api` remain supported as a
thin facade over this machinery.
"""

from repro.session.artifacts import ArtifactCache, CacheStats, derive_key, source_key
from repro.session.batch import BatchSession, FileResult
from repro.session.session import Session
from repro.session.stages import STAGES, StageSpec, stage_order

__all__ = [
    "ArtifactCache",
    "BatchSession",
    "CacheStats",
    "FileResult",
    "STAGES",
    "Session",
    "StageSpec",
    "derive_key",
    "source_key",
    "stage_order",
]
