"""IR expression trees.

IR expressions mirror AST expressions, with one crucial difference:
variable references are :class:`EVar` nodes that double as *use sites*.
After SSA renaming every :class:`EVar` carries a ``version`` and a
``def_site`` link (the factored use-def chain, ``chain(u)`` in the
paper's Algorithm A.4).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.lang import ast_nodes as ast

__all__ = [
    "EBin",
    "ECall",
    "EConst",
    "EUn",
    "EVar",
    "IRExpr",
    "expr_from_ast",
    "expr_to_str",
    "iter_expr_vars",
    "map_expr_vars",
    "substitute_vars",
]


class IRExpr:
    """Base class for IR expressions."""

    __slots__ = ()


class EConst(IRExpr):
    """Integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __repr__(self) -> str:
        return f"EConst({self.value})"


class EVar(IRExpr):
    """A variable *use site*.

    Attributes
    ----------
    name:
        Base variable name (e.g. ``a``).
    version:
        SSA version, or ``None`` before SSA construction (and for π-term
        temporaries, which are single-assignment by construction).
    def_site:
        After SSA renaming, the defining statement (:class:`SAssign`,
        :class:`Phi`, :class:`Pi`) or the sentinel entry definition.
        This is the FUD chain link ``chain(u)``.
    """

    __slots__ = ("name", "version", "def_site")

    def __init__(
        self,
        name: str,
        version: Optional[int] = None,
        def_site: object = None,
    ) -> None:
        self.name = name
        self.version = version
        self.def_site = def_site

    @property
    def ssa_name(self) -> str:
        """The display name: ``a3`` in SSA form, ``a`` otherwise."""
        if self.version is None:
            return self.name
        return f"{self.name}{self.version}"

    def same_ssa(self, other: "EVar") -> bool:
        """True when both refer to the same SSA name."""
        return self.name == other.name and self.version == other.version

    def copy(self) -> "EVar":
        """A fresh use site referring to the same SSA name and def."""
        return EVar(self.name, self.version, self.def_site)

    def __repr__(self) -> str:
        return f"EVar({self.ssa_name!r})"


class EBin(IRExpr):
    """Binary operation with C-like integer semantics."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: IRExpr, right: IRExpr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"EBin({self.op!r}, {self.left!r}, {self.right!r})"


class EUn(IRExpr):
    """Unary operation (``-`` or ``!``)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: IRExpr) -> None:
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"EUn({self.op!r}, {self.operand!r})"


class ECall(IRExpr):
    """Opaque pure call in expression position; value is unknown."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[IRExpr]) -> None:
        self.func = func
        self.args = list(args)

    def __repr__(self) -> str:
        return f"ECall({self.func!r}, {self.args!r})"


# ---------------------------------------------------------------------------
# Conversion and traversal utilities
# ---------------------------------------------------------------------------


def expr_from_ast(node: ast.Expr, rename: Callable[[str], str] | None = None) -> IRExpr:
    """Convert an AST expression to an IR expression.

    ``rename`` maps source variable names to IR names (used to mangle
    ``private`` declarations during lowering).
    """
    if isinstance(node, ast.IntLit):
        return EConst(node.value)
    if isinstance(node, ast.Name):
        name = rename(node.ident) if rename else node.ident
        return EVar(name)
    if isinstance(node, ast.BinOp):
        return EBin(
            node.op,
            expr_from_ast(node.left, rename),
            expr_from_ast(node.right, rename),
        )
    if isinstance(node, ast.UnaryOp):
        return EUn(node.op, expr_from_ast(node.operand, rename))
    if isinstance(node, ast.CallExpr):
        return ECall(node.func, [expr_from_ast(a, rename) for a in node.args])
    raise TypeError(f"cannot lower AST expression {node!r}")


def iter_expr_vars(expr: IRExpr) -> Iterator[EVar]:
    """Yield every :class:`EVar` use site in ``expr`` (left-to-right)."""
    if isinstance(expr, EVar):
        yield expr
    elif isinstance(expr, EBin):
        yield from iter_expr_vars(expr.left)
        yield from iter_expr_vars(expr.right)
    elif isinstance(expr, EUn):
        yield from iter_expr_vars(expr.operand)
    elif isinstance(expr, ECall):
        for arg in expr.args:
            yield from iter_expr_vars(arg)
    # EConst: no vars


def map_expr_vars(expr: IRExpr, fn: Callable[[EVar], IRExpr]) -> IRExpr:
    """Rebuild ``expr`` with every :class:`EVar` replaced by ``fn(var)``.

    Nodes are reused when unchanged, so shared subtrees stay shared.
    """
    if isinstance(expr, EVar):
        return fn(expr)
    if isinstance(expr, EBin):
        left = map_expr_vars(expr.left, fn)
        right = map_expr_vars(expr.right, fn)
        if left is expr.left and right is expr.right:
            return expr
        return EBin(expr.op, left, right)
    if isinstance(expr, EUn):
        operand = map_expr_vars(expr.operand, fn)
        if operand is expr.operand:
            return expr
        return EUn(expr.op, operand)
    if isinstance(expr, ECall):
        args = [map_expr_vars(a, fn) for a in expr.args]
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return ECall(expr.func, args)
    return expr


def substitute_vars(expr: IRExpr, replacement: Callable[[EVar], IRExpr | None]) -> IRExpr:
    """Like :func:`map_expr_vars` but ``None`` means "keep the var"."""

    def fn(var: EVar) -> IRExpr:
        new = replacement(var)
        return var if new is None else new

    return map_expr_vars(expr, fn)


def clone_expr(expr: IRExpr) -> IRExpr:
    """Deep-copy an expression; EVar clones keep name/version/def_site."""
    if isinstance(expr, EConst):
        return EConst(expr.value)
    if isinstance(expr, EVar):
        return expr.copy()
    if isinstance(expr, EBin):
        return EBin(expr.op, clone_expr(expr.left), clone_expr(expr.right))
    if isinstance(expr, EUn):
        return EUn(expr.op, clone_expr(expr.operand))
    if isinstance(expr, ECall):
        return ECall(expr.func, [clone_expr(a) for a in expr.args])
    raise TypeError(f"cannot clone expression {expr!r}")


_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}
_UNARY_PRECEDENCE = 6

#: Operators the grammar does not chain: ``a < b < c`` is a parse error.
_NON_ASSOCIATIVE = {"==", "!=", "<", "<=", ">", ">="}


def expr_to_str(expr: IRExpr, parent_prec: int = 0) -> str:
    """Render an IR expression using SSA display names."""
    if isinstance(expr, EConst):
        return str(expr.value)
    if isinstance(expr, EVar):
        return expr.ssa_name
    if isinstance(expr, ECall):
        args = ", ".join(expr_to_str(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, EUn):
        text = f"{expr.op}{expr_to_str(expr.operand, _UNARY_PRECEDENCE)}"
        return f"({text})" if parent_prec > _UNARY_PRECEDENCE else text
    if isinstance(expr, EBin):
        prec = _PRECEDENCE[expr.op]
        left_prec = prec + 1 if expr.op in _NON_ASSOCIATIVE else prec
        text = (
            f"{expr_to_str(expr.left, left_prec)} {expr.op} "
            f"{expr_to_str(expr.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"unknown IR expression {expr!r}")
