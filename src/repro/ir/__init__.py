"""Intermediate representation.

Two coupled views of a program:

* **Structured IR** (:mod:`repro.ir.structured`) — a mutable tree that
  mirrors the source structure (bodies, if/while regions, cobegin
  regions).  Optimization passes edit this tree, and the printer renders
  it back to source-like listings (including SSA/φ/π forms, as in the
  paper's Figures 3–5).
* **Flow graph** (:mod:`repro.cfg`) — parallel basic blocks referencing
  the *same* statement objects, rebuilt from the structured IR whenever a
  pass needs fresh dataflow facts.

Keeping one set of statement objects shared by both views means an edit
made through either view is immediately visible in the other.
"""

from repro.ir.expr import (
    EBin,
    ECall,
    EConst,
    EUn,
    EVar,
    IRExpr,
    expr_from_ast,
    iter_expr_vars,
    substitute_vars,
)
from repro.ir.stmts import (
    IRStmt,
    SBarrier,
    Phi,
    PhiArg,
    Pi,
    SAssign,
    SBranch,
    SCallStmt,
    SLock,
    SPrint,
    SSetEvent,
    SSkip,
    SUnlock,
    SWaitEvent,
)
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    Region,
    ThreadRegion,
    WhileRegion,
    clone_program,
    iter_statements,
    remove_stmt,
)
from repro.ir.lower import lower_program
from repro.ir.printer import format_ir

__all__ = [
    "Body",
    "CobeginRegion",
    "EBin",
    "ECall",
    "EConst",
    "EUn",
    "EVar",
    "IRExpr",
    "IRStmt",
    "IfRegion",
    "Phi",
    "PhiArg",
    "Pi",
    "ProgramIR",
    "Region",
    "SAssign",
    "SBarrier",
    "SBranch",
    "SCallStmt",
    "SLock",
    "SPrint",
    "SSetEvent",
    "SSkip",
    "SUnlock",
    "SWaitEvent",
    "ThreadRegion",
    "WhileRegion",
    "clone_program",
    "expr_from_ast",
    "format_ir",
    "iter_expr_vars",
    "iter_statements",
    "lower_program",
    "remove_stmt",
    "substitute_vars",
]
