"""IR statement classes, including the SSA terms φ (:class:`Phi`) and
π (:class:`Pi`).

Statements are shared between the structured IR tree and the flow graph:
both hold references to the same objects, so an edit is visible in both
views.  Every statement knows how to enumerate its variable *use sites*
(:meth:`IRStmt.uses`) and its *definition* (:meth:`IRStmt.def_name`), the
two primitives all dataflow analyses are built on.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Sequence

from repro.ir.expr import (
    EVar,
    IRExpr,
    clone_expr,
    expr_to_str,
    iter_expr_vars,
    map_expr_vars,
)

__all__ = [
    "IRStmt",
    "SBarrier",
    "Phi",
    "PhiArg",
    "Pi",
    "SAssign",
    "SBranch",
    "SCallStmt",
    "SLock",
    "SPrint",
    "SSetEvent",
    "SSkip",
    "SUnlock",
    "SWaitEvent",
]

_stmt_ids = itertools.count()


class IRStmt:
    """Base class for IR statements.

    Attributes
    ----------
    uid:
        A process-unique integer used for deterministic ordering and as a
        dictionary key (statements are also hashable by identity).
    parent:
        Where the statement lives: a :class:`repro.ir.structured.Body`,
        a :class:`repro.ir.structured.WhileRegion` (for loop-header φ/π
        terms) or a region (for branch conditions).  Maintained by the
        structured-IR containers.
    """

    __slots__ = ("uid", "parent")

    def __init__(self) -> None:
        self.uid = next(_stmt_ids)
        self.parent = None

    # -- dataflow primitives -------------------------------------------

    def uses(self) -> Iterator[EVar]:
        """Yield every variable use site in this statement."""
        return iter(())

    def def_name(self) -> Optional[str]:
        """Base name of the variable this statement defines, if any."""
        return None

    def def_version(self) -> Optional[int]:
        """SSA version of the definition, if any."""
        return None

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        """Apply ``fn`` to every use site, replacing it with the result."""

    # -- misc ------------------------------------------------------------

    def clone(self) -> "IRStmt":
        """Deep copy (new uid, no parent)."""
        raise NotImplementedError

    def to_str(self) -> str:
        """Single-line source-ish rendering with SSA display names."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}#{self.uid} {self.to_str()}>"


class SAssign(IRStmt):
    """``target = value`` — the only ordinary definition statement."""

    __slots__ = ("target", "version", "value")

    def __init__(self, target: str, value: IRExpr, version: Optional[int] = None) -> None:
        super().__init__()
        self.target = target
        self.version = version
        self.value = value

    def uses(self) -> Iterator[EVar]:
        return iter_expr_vars(self.value)

    def def_name(self) -> Optional[str]:
        return self.target

    def def_version(self) -> Optional[int]:
        return self.version

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        self.value = map_expr_vars(self.value, fn)

    @property
    def ssa_target(self) -> str:
        if self.version is None:
            return self.target
        return f"{self.target}{self.version}"

    def clone(self) -> "SAssign":
        return SAssign(self.target, clone_expr(self.value), self.version)

    def to_str(self) -> str:
        return f"{self.ssa_target} = {expr_to_str(self.value)};"


class SPrint(IRStmt):
    """``print(e1, ..., en)`` — observable output; always live."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[IRExpr]) -> None:
        super().__init__()
        self.args = list(args)

    def uses(self) -> Iterator[EVar]:
        for arg in self.args:
            yield from iter_expr_vars(arg)

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        self.args = [map_expr_vars(a, fn) for a in self.args]

    def clone(self) -> "SPrint":
        return SPrint([clone_expr(a) for a in self.args])

    def to_str(self) -> str:
        return f"print({', '.join(expr_to_str(a) for a in self.args)});"


class SCallStmt(IRStmt):
    """``f(e1, ..., en);`` — opaque side-effecting call; always live."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[IRExpr]) -> None:
        super().__init__()
        self.func = func
        self.args = list(args)

    def uses(self) -> Iterator[EVar]:
        for arg in self.args:
            yield from iter_expr_vars(arg)

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        self.args = [map_expr_vars(a, fn) for a in self.args]

    def clone(self) -> "SCallStmt":
        return SCallStmt(self.func, [clone_expr(a) for a in self.args])

    def to_str(self) -> str:
        return f"{self.func}({', '.join(expr_to_str(a) for a in self.args)});"


class SLock(IRStmt):
    """``lock(L);`` — occupies its own flow-graph node (paper Def. 1)."""

    __slots__ = ("lock_name",)

    def __init__(self, lock_name: str) -> None:
        super().__init__()
        self.lock_name = lock_name

    def clone(self) -> "SLock":
        return SLock(self.lock_name)

    def to_str(self) -> str:
        return f"lock({self.lock_name});"


class SUnlock(IRStmt):
    """``unlock(L);`` — occupies its own flow-graph node."""

    __slots__ = ("lock_name",)

    def __init__(self, lock_name: str) -> None:
        super().__init__()
        self.lock_name = lock_name

    def clone(self) -> "SUnlock":
        return SUnlock(self.lock_name)

    def to_str(self) -> str:
        return f"unlock({self.lock_name});"


class SSetEvent(IRStmt):
    """``set(e);`` — event signal (Set with no Clear, as in the paper)."""

    __slots__ = ("event_name",)

    def __init__(self, event_name: str) -> None:
        super().__init__()
        self.event_name = event_name

    def clone(self) -> "SSetEvent":
        return SSetEvent(self.event_name)

    def to_str(self) -> str:
        return f"set({self.event_name});"


class SWaitEvent(IRStmt):
    """``wait(e);`` — blocks until the event is set."""

    __slots__ = ("event_name",)

    def __init__(self, event_name: str) -> None:
        super().__init__()
        self.event_name = event_name

    def clone(self) -> "SWaitEvent":
        return SWaitEvent(self.event_name)

    def to_str(self) -> str:
        return f"wait({self.event_name});"


class SBarrier(IRStmt):
    """``barrier(B);`` — cyclic barrier (Section 7 extension).

    Participants are the sibling threads of the nearest enclosing
    cobegin that syntactically mention ``B``; the VM computes the count
    at compile time.  Like the other synchronization operations it gets
    its own PFG node, is never dead, and never moves.
    """

    __slots__ = ("barrier_name",)

    def __init__(self, barrier_name: str) -> None:
        super().__init__()
        self.barrier_name = barrier_name

    def clone(self) -> "SBarrier":
        return SBarrier(self.barrier_name)

    def to_str(self) -> str:
        return f"barrier({self.barrier_name});"


class SSkip(IRStmt):
    """The empty statement."""

    __slots__ = ()

    def clone(self) -> "SSkip":
        return SSkip()

    def to_str(self) -> str:
        return "skip;"


class SBranch(IRStmt):
    """A branch condition.

    Owned by an :class:`repro.ir.structured.IfRegion` or
    :class:`repro.ir.structured.WhileRegion`; appears in the flow graph
    as the terminator of the condition block.
    """

    __slots__ = ("cond",)

    def __init__(self, cond: IRExpr) -> None:
        super().__init__()
        self.cond = cond

    def uses(self) -> Iterator[EVar]:
        return iter_expr_vars(self.cond)

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        self.cond = map_expr_vars(self.cond, fn)

    def clone(self) -> "SBranch":
        return SBranch(clone_expr(self.cond))

    def to_str(self) -> str:
        return f"branch ({expr_to_str(self.cond)})"


class PhiArg:
    """One φ argument: the SSA use plus the predecessor block it enters
    from (and, at coend nodes, the index of the contributing thread)."""

    __slots__ = ("var", "pred_block", "thread_index")

    def __init__(self, var: EVar, pred_block: int, thread_index: Optional[int] = None) -> None:
        self.var = var
        self.pred_block = pred_block
        self.thread_index = thread_index

    def __repr__(self) -> str:  # pragma: no cover
        return f"PhiArg({self.var.ssa_name}, pred={self.pred_block})"


class Phi(IRStmt):
    """``v_k = φ(v_i, v_j, ...)`` — control-flow merge of SSA names.

    Placed at if-joins, loop headers and (after the paper's trimming
    rule) at coend nodes where at least two child threads define ``v``.
    """

    __slots__ = ("target", "version", "args")

    def __init__(self, target: str, version: Optional[int], args: Sequence[PhiArg]) -> None:
        super().__init__()
        self.target = target
        self.version = version
        self.args = list(args)

    def uses(self) -> Iterator[EVar]:
        for arg in self.args:
            yield arg.var

    def def_name(self) -> Optional[str]:
        return self.target

    def def_version(self) -> Optional[int]:
        return self.version

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        # φ arguments must remain plain variables; only var-to-var
        # rewrites are meaningful here.
        for arg in self.args:
            new = fn(arg.var)
            if isinstance(new, EVar):
                arg.var = new

    @property
    def ssa_target(self) -> str:
        if self.version is None:
            return self.target
        return f"{self.target}{self.version}"

    def clone(self) -> "Phi":
        return Phi(
            self.target,
            self.version,
            [PhiArg(a.var.copy(), a.pred_block, a.thread_index) for a in self.args],
        )

    def to_str(self) -> str:
        args = ", ".join(a.var.ssa_name for a in self.args)
        return f"{self.ssa_target} = phi({args});"


class Pi(IRStmt):
    """``t = π(v_ctrl, v_d1, ..., v_dn)`` — a CSSA π term.

    The first argument flows in through the control edge (the FUD chain
    of the original use); the remaining *conflict arguments* are the
    definitions of the same shared variable in concurrent threads that
    may reach this point (paper Section 4).  CSSAME (Algorithm A.3)
    removes conflict arguments proven unreachable by Theorems 1 and 2; a
    π reduced to its control argument alone is deleted.

    ``var_name`` records which shared variable the π protects.  The
    target is a fresh single-assignment temporary, so ``version`` is
    always ``None``.
    """

    __slots__ = ("target", "var_name", "control", "conflicts")

    def __init__(
        self,
        target: str,
        var_name: str,
        control: EVar,
        conflicts: Sequence[EVar],
    ) -> None:
        super().__init__()
        self.target = target
        self.var_name = var_name
        self.control = control
        self.conflicts = list(conflicts)

    def uses(self) -> Iterator[EVar]:
        yield self.control
        yield from self.conflicts

    def def_name(self) -> Optional[str]:
        return self.target

    def def_version(self) -> Optional[int]:
        return None

    def rewrite_exprs(self, fn: Callable[[EVar], IRExpr]) -> None:
        new_ctrl = fn(self.control)
        if isinstance(new_ctrl, EVar):
            self.control = new_ctrl
        new_conflicts = []
        for var in self.conflicts:
            new = fn(var)
            new_conflicts.append(new if isinstance(new, EVar) else var)
        self.conflicts = new_conflicts

    @property
    def ssa_target(self) -> str:
        return self.target

    def clone(self) -> "Pi":
        return Pi(
            self.target,
            self.var_name,
            self.control.copy(),
            [v.copy() for v in self.conflicts],
        )

    def to_str(self) -> str:
        args = ", ".join(
            [self.control.ssa_name] + [v.ssa_name for v in self.conflicts]
        )
        return f"{self.target} = pi({args});"
