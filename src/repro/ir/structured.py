"""The structured IR tree.

This is the mutable program representation that optimization passes edit
and the printer renders.  The tree mirrors the source structure:

* :class:`ProgramIR` — the root; owns the top-level :class:`Body` and a
  name registry used to mint fresh temporaries.
* :class:`Body` — an ordered container of items, each either a plain
  :class:`~repro.ir.stmts.IRStmt` or a nested :class:`Region`.
* :class:`IfRegion`, :class:`WhileRegion` — structured control flow; the
  condition is an :class:`~repro.ir.stmts.SBranch` statement owned by the
  region.  ``WhileRegion.header_phis`` holds loop-header φ/π terms (they
  execute on every iteration, before the condition).
* :class:`CobeginRegion` / :class:`ThreadRegion` — parallel sections.

Invariant: every statement object appears in exactly one place in the
tree, and its ``parent`` attribute names that place (a :class:`Body`, a
:class:`WhileRegion` for header terms, or a region for its branch).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Union

from repro.errors import TransformError
from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt, Phi, Pi, SBranch

__all__ = [
    "Body",
    "CobeginRegion",
    "IfRegion",
    "Item",
    "ProgramIR",
    "Region",
    "StmtContext",
    "ThreadRegion",
    "WhileRegion",
    "clone_program",
    "count_statements",
    "iter_statements",
    "remove_stmt",
]

_region_ids = itertools.count()


class Region:
    """Base class for structured control-flow regions."""

    __slots__ = ("uid", "parent")

    def __init__(self) -> None:
        self.uid = next(_region_ids)
        self.parent: Optional[Body] = None


Item = Union[IRStmt, Region]


class Body:
    """An ordered list of statements and nested regions.

    All mutation goes through the methods below so that each item's
    ``parent`` link stays correct.
    """

    __slots__ = ("owner", "items")

    def __init__(self, owner: object = None) -> None:
        self.owner = owner
        self.items: list[Item] = []

    # -- mutation --------------------------------------------------------

    def _adopt(self, item: Item) -> None:
        item.parent = self

    def append(self, item: Item) -> None:
        self._adopt(item)
        self.items.append(item)

    def insert(self, index: int, item: Item) -> None:
        self._adopt(item)
        self.items.insert(index, item)

    def index(self, item: Item) -> int:
        for i, existing in enumerate(self.items):
            if existing is item:
                return i
        raise TransformError(f"item {item!r} not found in body")

    def insert_before(self, anchor: Item, item: Item) -> None:
        self.insert(self.index(anchor), item)

    def insert_after(self, anchor: Item, item: Item) -> None:
        self.insert(self.index(anchor) + 1, item)

    def remove(self, item: Item) -> None:
        self.items.pop(self.index(item))
        item.parent = None

    def replace(self, item: Item, replacements: list[Item]) -> None:
        """Replace ``item`` with a (possibly empty) list of new items."""
        idx = self.index(item)
        self.items.pop(idx)
        item.parent = None
        for offset, new in enumerate(replacements):
            self._adopt(new)
            self.items.insert(idx + offset, new)

    # -- queries ----------------------------------------------------------

    def __iter__(self) -> Iterator[Item]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)


class IfRegion(Region):
    """``if (branch.cond) then_body else else_body``."""

    __slots__ = ("branch", "then_body", "else_body")

    def __init__(self, branch: SBranch, then_body: Optional[Body] = None,
                 else_body: Optional[Body] = None) -> None:
        super().__init__()
        self.branch = branch
        branch.parent = self
        self.then_body = then_body if then_body is not None else Body(self)
        self.else_body = else_body if else_body is not None else Body(self)
        self.then_body.owner = self
        self.else_body.owner = self


class WhileRegion(Region):
    """``while (branch.cond) body`` with loop-header φ/π terms.

    ``header_phis`` execute at the top of every iteration, immediately
    before the condition is evaluated.
    """

    __slots__ = ("branch", "header_phis", "body")

    def __init__(self, branch: SBranch, body: Optional[Body] = None) -> None:
        super().__init__()
        self.branch = branch
        branch.parent = self
        self.header_phis: list[IRStmt] = []
        self.body = body if body is not None else Body(self)
        self.body.owner = self

    def add_header_stmt(self, stmt: IRStmt) -> None:
        stmt.parent = self
        self.header_phis.append(stmt)

    def remove_header_stmt(self, stmt: IRStmt) -> None:
        for i, existing in enumerate(self.header_phis):
            if existing is stmt:
                self.header_phis.pop(i)
                stmt.parent = None
                return
        raise TransformError(f"{stmt!r} is not a header term of this loop")


class ThreadRegion:
    """One child thread of a cobegin."""

    __slots__ = ("uid", "label", "body", "cobegin")

    def __init__(self, label: Optional[str], body: Optional[Body] = None) -> None:
        self.uid = next(_region_ids)
        self.label = label
        self.body = body if body is not None else Body(self)
        self.body.owner = self
        self.cobegin: Optional[CobeginRegion] = None


class CobeginRegion(Region):
    """``cobegin T0 ... Tn coend`` — all child threads run concurrently."""

    __slots__ = ("threads",)

    def __init__(self, threads: Optional[list[ThreadRegion]] = None) -> None:
        super().__init__()
        self.threads: list[ThreadRegion] = []
        for thread in threads or []:
            self.add_thread(thread)

    def add_thread(self, thread: ThreadRegion) -> None:
        thread.cobegin = self
        self.threads.append(thread)


class ProgramIR:
    """Root of the structured IR.

    Attributes
    ----------
    body:
        The top-level statement sequence.
    known_names:
        Every base variable name in use (source variables, mangled
        privates, π temporaries); consulted when minting fresh names.
    private_names:
        The mangled names produced from ``private`` declarations.
    """

    __slots__ = ("body", "known_names", "private_names")

    def __init__(self) -> None:
        self.body = Body(self)
        self.known_names: set[str] = set()
        self.private_names: set[str] = set()

    def register_name(self, name: str) -> None:
        self.known_names.add(name)

    def fresh_name(self, candidate: str) -> str:
        """Return ``candidate`` if unused, else ``candidate1``, ... ;
        registers and returns the chosen name."""
        name = candidate
        counter = 1
        while name in self.known_names:
            name = f"{candidate}{counter}"
            counter += 1
        self.known_names.add(name)
        return name


class StmtContext:
    """Where a statement sits, in enough detail to remove or replace it."""

    __slots__ = ("kind", "container", "thread_path")

    def __init__(self, kind: str, container: object, thread_path: tuple) -> None:
        #: "body" | "header" | "branch"
        self.kind = kind
        self.container = container
        #: tuple of (cobegin_uid, thread_index) pairs enclosing the stmt
        self.thread_path = thread_path


def iter_statements(
    program: ProgramIR,
    include_branches: bool = True,
) -> Iterator[tuple[IRStmt, StmtContext]]:
    """Yield ``(stmt, context)`` for every statement, in program order."""
    yield from _iter_body(program.body, (), include_branches)


def _iter_body(
    body: Body, thread_path: tuple, include_branches: bool
) -> Iterator[tuple[IRStmt, StmtContext]]:
    for item in list(body.items):
        if isinstance(item, IRStmt):
            yield item, StmtContext("body", body, thread_path)
        elif isinstance(item, IfRegion):
            if include_branches:
                yield item.branch, StmtContext("branch", item, thread_path)
            yield from _iter_body(item.then_body, thread_path, include_branches)
            yield from _iter_body(item.else_body, thread_path, include_branches)
        elif isinstance(item, WhileRegion):
            for stmt in list(item.header_phis):
                yield stmt, StmtContext("header", item, thread_path)
            if include_branches:
                yield item.branch, StmtContext("branch", item, thread_path)
            yield from _iter_body(item.body, thread_path, include_branches)
        elif isinstance(item, CobeginRegion):
            for idx, thread in enumerate(item.threads):
                yield from _iter_body(
                    thread.body, thread_path + ((item.uid, idx),), include_branches
                )
        else:  # pragma: no cover - defensive
            raise TransformError(f"unknown body item {item!r}")


def count_statements(program: ProgramIR, include_branches: bool = False) -> int:
    """Number of statements in the program (a simple size metric)."""
    return sum(1 for _ in iter_statements(program, include_branches))


def remove_stmt(stmt: IRStmt) -> None:
    """Remove a statement from wherever it lives in the tree."""
    parent = stmt.parent
    if isinstance(parent, Body):
        parent.remove(stmt)
    elif isinstance(parent, WhileRegion):
        parent.remove_header_stmt(stmt)
    elif parent is None:
        raise TransformError(f"{stmt!r} is not attached to the tree")
    else:
        raise TransformError(f"cannot remove a branch condition: {stmt!r}")


# ---------------------------------------------------------------------------
# Cloning
# ---------------------------------------------------------------------------


def clone_program(program: ProgramIR) -> ProgramIR:
    """Deep-copy a program.

    Statement objects are cloned; ``EVar.def_site`` links that point at
    cloned statements are remapped to the copies, so an SSA-form program
    clones into a consistent SSA-form program.
    """
    stmt_map: dict[int, IRStmt] = {}

    new = ProgramIR()
    new.known_names = set(program.known_names)
    new.private_names = set(program.private_names)
    new.body = _clone_body(program.body, new, stmt_map)

    # Second pass: remap def_site links into the cloned statements.
    for stmt, _ctx in iter_statements(new):
        for var in stmt.uses():
            _remap_def_site(var, stmt_map)
    return new


def _remap_def_site(var: EVar, stmt_map: dict[int, IRStmt]) -> None:
    site = var.def_site
    if isinstance(site, IRStmt):
        mapped = stmt_map.get(site.uid)
        if mapped is not None:
            var.def_site = mapped


def _clone_stmt(stmt: IRStmt, stmt_map: dict[int, IRStmt]) -> IRStmt:
    copy = stmt.clone()
    stmt_map[stmt.uid] = copy
    return copy


def _clone_body(body: Body, owner: object, stmt_map: dict[int, IRStmt]) -> Body:
    new = Body(owner)
    for item in body.items:
        if isinstance(item, IRStmt):
            new.append(_clone_stmt(item, stmt_map))
        elif isinstance(item, IfRegion):
            branch = _clone_stmt(item.branch, stmt_map)
            region = IfRegion(branch)
            region.then_body = _clone_body(item.then_body, region, stmt_map)
            region.else_body = _clone_body(item.else_body, region, stmt_map)
            new.append(region)
        elif isinstance(item, WhileRegion):
            branch = _clone_stmt(item.branch, stmt_map)
            region = WhileRegion(branch)
            for header in item.header_phis:
                region.add_header_stmt(_clone_stmt(header, stmt_map))
            region.body = _clone_body(item.body, region, stmt_map)
            new.append(region)
        elif isinstance(item, CobeginRegion):
            region = CobeginRegion()
            for thread in item.threads:
                t = ThreadRegion(thread.label)
                t.body = _clone_body(thread.body, t, stmt_map)
                region.add_thread(t)
            new.append(region)
        else:  # pragma: no cover - defensive
            raise TransformError(f"unknown body item {item!r}")
    return new
