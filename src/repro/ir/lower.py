"""Lowering: AST → structured IR.

Besides the 1:1 structural mapping, lowering performs the only piece of
name resolution the language needs: ``private x;`` declarations introduce
a fresh mangled name per declaration site, so that two threads declaring
``private x`` get distinct IR variables.  Everything else is shared by
default, matching the paper's memory model.
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast
from repro.ir.expr import EConst, expr_from_ast, iter_expr_vars
from repro.ir.stmts import (
    SAssign,
    SBarrier,
    SBranch,
    SCallStmt,
    SLock,
    SPrint,
    SSetEvent,
    SSkip,
    SUnlock,
    SWaitEvent,
)
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    ThreadRegion,
    WhileRegion,
)

__all__ = ["lower_program"]


class _Scope:
    """A lexical rename scope mapping source names to IR names."""

    __slots__ = ("mapping", "outer")

    def __init__(self, outer: "_Scope | None" = None) -> None:
        self.mapping: dict[str, str] = {}
        self.outer = outer

    def resolve(self, name: str) -> str:
        scope: _Scope | None = self
        while scope is not None:
            mapped = scope.mapping.get(name)
            if mapped is not None:
                return mapped
            scope = scope.outer
        return name


class _Lowerer:
    def __init__(self) -> None:
        self.program = ProgramIR()

    def run(self, node: ast.Program) -> ProgramIR:
        scope = _Scope()
        self._lower_block(node.body, self.program.body, scope)
        return self.program

    # ------------------------------------------------------------------

    def _lower_expr(self, node: ast.Expr, scope: _Scope):
        expr = expr_from_ast(node, scope.resolve)
        for var in iter_expr_vars(expr):
            self.program.register_name(var.name)
        return expr

    def _lower_block(self, block: ast.Block, body: Body, scope: _Scope) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt, body, scope)

    def _lower_stmt(self, node: ast.Stmt, body: Body, scope: _Scope) -> None:
        program = self.program
        if isinstance(node, ast.VarDecl):
            mangled = program.fresh_name(f"{node.ident}__p")
            program.private_names.add(mangled)
            scope.mapping[node.ident] = mangled
            if node.init is not None:
                body.append(SAssign(mangled, self._lower_expr(node.init, scope)))
            else:
                # Implicit zero initialisation keeps the VM semantics
                # (and SSA entry definitions) unsurprising.
                body.append(SAssign(mangled, EConst(0)))
        elif isinstance(node, ast.Assign):
            target = scope.resolve(node.target)
            program.register_name(target)
            body.append(SAssign(target, self._lower_expr(node.value, scope)))
        elif isinstance(node, ast.IfStmt):
            branch = SBranch(self._lower_expr(node.cond, scope))
            region = IfRegion(branch)
            self._lower_block(node.then_block, region.then_body, _Scope(scope))
            if node.else_block is not None:
                self._lower_block(node.else_block, region.else_body, _Scope(scope))
            body.append(region)
        elif isinstance(node, ast.WhileStmt):
            branch = SBranch(self._lower_expr(node.cond, scope))
            region = WhileRegion(branch)
            self._lower_block(node.body, region.body, _Scope(scope))
            body.append(region)
        elif isinstance(node, ast.Cobegin):
            region = CobeginRegion()
            for i, thread in enumerate(node.threads):
                label = thread.label if thread.label is not None else f"T{i}"
                t = ThreadRegion(label)
                self._lower_block(thread.body, t.body, _Scope(scope))
                region.add_thread(t)
            body.append(region)
        elif isinstance(node, ast.LockStmt):
            program.register_name(node.lock_name)
            body.append(SLock(node.lock_name))
        elif isinstance(node, ast.UnlockStmt):
            program.register_name(node.lock_name)
            body.append(SUnlock(node.lock_name))
        elif isinstance(node, ast.SetStmt):
            program.register_name(node.event_name)
            body.append(SSetEvent(node.event_name))
        elif isinstance(node, ast.WaitStmt):
            program.register_name(node.event_name)
            body.append(SWaitEvent(node.event_name))
        elif isinstance(node, ast.PrintStmt):
            body.append(SPrint([self._lower_expr(a, scope) for a in node.args]))
        elif isinstance(node, ast.CallStmt):
            body.append(
                SCallStmt(node.func, [self._lower_expr(a, scope) for a in node.args])
            )
        elif isinstance(node, ast.BarrierStmt):
            program.register_name(node.barrier_name)
            body.append(SBarrier(node.barrier_name))
        elif isinstance(node, ast.DoAll):
            self._lower_doall(node, body, scope)
        elif isinstance(node, ast.Skip):
            body.append(SSkip())
        else:
            raise SemanticError(f"cannot lower statement {node!r}")

    def _lower_doall(self, node: ast.DoAll, body: Body, scope: _Scope) -> None:
        """Static expansion: ``doall i = lo to hi`` becomes a cobegin
        with one thread per iteration and a private copy of the index,
        matching how the authors' macro-based front end would realise a
        parallel loop with known bounds."""
        if node.high < node.low:
            return  # zero iterations
        region = CobeginRegion()
        for value in range(node.low, node.high + 1):
            thread = ThreadRegion(f"{node.var}{value}")
            iter_scope = _Scope(scope)
            mangled = self.program.fresh_name(f"{node.var}__it")
            self.program.private_names.add(mangled)
            iter_scope.mapping[node.var] = mangled
            thread.body.append(SAssign(mangled, EConst(value)))
            self._lower_block(node.body, thread.body, iter_scope)
            region.add_thread(thread)
        body.append(region)


def lower_program(node: ast.Program) -> ProgramIR:
    """Lower a parsed AST into a fresh :class:`ProgramIR`."""
    return _Lowerer().run(node)
