"""Structured-IR printer.

Renders a program (optionally in SSA/CSSA/CSSAME form) as a source-like
listing, the way the paper prints Figures 3–5: φ and π terms appear
inline as ``a3 = phi(a1, a2);`` / ``ta1 = pi(a1, a4);`` lines.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.expr import expr_to_str
from repro.ir.stmts import IRStmt
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    WhileRegion,
)

__all__ = ["format_ir"]


def format_ir(program: ProgramIR) -> str:
    """Render ``program`` as an indented listing."""
    lines: list[str] = []
    _format_body(program.body, 0, lines)
    return "\n".join(lines) + ("\n" if lines else "")


def _format_body(body: Body, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    for item in body.items:
        if isinstance(item, IRStmt):
            lines.append(pad + item.to_str())
        elif isinstance(item, IfRegion):
            lines.append(f"{pad}if ({expr_to_str(item.branch.cond)}) {{")
            _format_body(item.then_body, indent + 1, lines)
            if item.else_body:
                lines.append(f"{pad}}} else {{")
                _format_body(item.else_body, indent + 1, lines)
            lines.append(pad + "}")
        elif isinstance(item, WhileRegion):
            for header in item.header_phis:
                lines.append(f"{pad}/* loop header */ {header.to_str()}")
            lines.append(f"{pad}while ({expr_to_str(item.branch.cond)}) {{")
            _format_body(item.body, indent + 1, lines)
            lines.append(pad + "}")
        elif isinstance(item, CobeginRegion):
            lines.append(pad + "cobegin")
            for i, thread in enumerate(item.threads):
                label = thread.label if thread.label is not None else f"T{i}"
                lines.append(f"{pad}{label}: begin")
                _format_body(thread.body, indent + 1, lines)
                lines.append(f"{pad}end")
            lines.append(pad + "coend")
        else:  # pragma: no cover - defensive
            raise TransformError(f"unknown body item {item!r}")
