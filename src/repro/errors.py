"""Exception hierarchy for the CSSAME reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Front-end problems (lexing/parsing) carry source
positions; semantic and analysis errors carry enough context to be
actionable in tests and diagnostics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SourceLocation:
    """A (line, column) position in a source buffer.

    Lines and columns are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = int(line)
        self.column = int(column)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SourceLocation({self.line}, {self.column})"

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class LexError(ReproError):
    """An unrecognised character or malformed token in the source."""

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


class ParseError(ReproError):
    """The token stream does not form a valid program."""

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


class SemanticError(ReproError):
    """A structurally valid program that violates a semantic rule.

    Examples: assigning to a lock variable, using a variable declared
    ``private`` in two different threads of the same cobegin.
    """


class CFGError(ReproError):
    """Internal inconsistency while building or querying a flow graph."""


class SSAError(ReproError):
    """Internal inconsistency in SSA construction or FUD chains."""


class AnalysisError(ReproError):
    """A dataflow or mutex analysis was asked something it cannot answer."""


class TransformError(ReproError):
    """An optimization pass attempted an ill-formed rewrite."""


class VMError(ReproError):
    """Runtime error inside the interleaving virtual machine."""


class DeadlockError(VMError):
    """Every live thread is blocked; execution cannot make progress.

    Carries the set of lock names held and the blocked thread ids so the
    exhaustive explorer can report *which* schedule deadlocks.
    """

    def __init__(self, blocked_threads, held_locks) -> None:
        self.blocked_threads = tuple(sorted(blocked_threads))
        self.held_locks = dict(held_locks)
        super().__init__(
            f"deadlock: threads {list(self.blocked_threads)} blocked, "
            f"locks held: {self.held_locks}"
        )


class StepLimitExceeded(VMError):
    """The VM executed more steps than the configured fuel allows."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"execution exceeded {limit} steps (possible livelock)")
