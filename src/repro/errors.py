"""Exception hierarchy and the machine-readable error taxonomy.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Front-end problems (lexing/parsing) carry source
positions; semantic and analysis errors carry enough context to be
actionable in tests and diagnostics.

Every error additionally maps to a **stable machine-readable code**
(``E_PARSE``, ``E_ANALYSIS``, ``E_TIMEOUT``, ...).  The code — not the
Python class name — is the contract: the CLI derives its exit codes
from it, ``repro serve`` puts it in every error frame on the wire, and
``docs/API.md`` documents the full table.  Three rules keep it one
source of truth:

* every :class:`ReproError` subclass declares its ``code``;
* :func:`error_code` classifies *any* exception (OS errors → ``E_IO``,
  everything unknown → ``E_INTERNAL`` — a bug, never a user error);
* :func:`exit_code_for` maps codes onto the CLI exit-code contract
  (0 ok, 1 findings, 2 deadlock, 3 input/usage error, 4 service error).
"""

from __future__ import annotations

__all__ = [
    "ALL_CODES",
    "AnalysisError",
    "CFGError",
    "DeadlineExceeded",
    "DeadlockError",
    "E_ANALYSIS",
    "E_DEADLOCK",
    "E_INTERNAL",
    "E_IO",
    "E_OVERLOADED",
    "E_PARSE",
    "E_PROTOCOL",
    "E_SEMANTIC",
    "E_SHUTDOWN",
    "E_TIMEOUT",
    "E_UNSUPPORTED",
    "E_USAGE",
    "E_VM",
    "EXIT_DEADLOCK",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "EXIT_OK",
    "EXIT_SERVICE",
    "LexError",
    "OverloadedError",
    "ParseError",
    "ProtocolError",
    "RemoteError",
    "ReproError",
    "SSAError",
    "SemanticError",
    "ServeError",
    "ShuttingDown",
    "SourceLocation",
    "StepLimitExceeded",
    "TransformError",
    "UnsupportedRequest",
    "VMError",
    "error_code",
    "error_frame",
    "exit_code_for",
]


# -- the taxonomy: stable, machine-readable codes ---------------------------

#: the source program does not lex/parse
E_PARSE = "E_PARSE"
#: structurally valid program violating a semantic rule
E_SEMANTIC = "E_SEMANTIC"
#: CFG/SSA/mutex/dataflow analysis or transform failure
E_ANALYSIS = "E_ANALYSIS"
#: runtime error inside the interleaving VM
E_VM = "E_VM"
#: execution (or exploration) deadlocked
E_DEADLOCK = "E_DEADLOCK"
#: a deadline or step/fuel budget was exceeded
E_TIMEOUT = "E_TIMEOUT"
#: the service's request queue is full — retry with backoff
E_OVERLOADED = "E_OVERLOADED"
#: the service is draining and no longer accepts work
E_SHUTDOWN = "E_SHUTDOWN"
#: a malformed request/response frame on the wire
E_PROTOCOL = "E_PROTOCOL"
#: a well-formed request asking for something this server cannot do
E_UNSUPPORTED = "E_UNSUPPORTED"
#: file-system / network trouble reading inputs or writing outputs
E_IO = "E_IO"
#: bad command-line usage
E_USAGE = "E_USAGE"
#: an unexpected exception — always a bug, never a user error
E_INTERNAL = "E_INTERNAL"

#: every code, in documentation order (the ``docs/API.md`` table)
ALL_CODES = (
    E_PARSE,
    E_SEMANTIC,
    E_ANALYSIS,
    E_VM,
    E_DEADLOCK,
    E_TIMEOUT,
    E_OVERLOADED,
    E_SHUTDOWN,
    E_PROTOCOL,
    E_UNSUPPORTED,
    E_IO,
    E_USAGE,
    E_INTERNAL,
)


# -- the CLI exit-code contract ---------------------------------------------

EXIT_OK = 0
#: diagnostics/audit findings under ``--strict``
EXIT_FINDINGS = 1
#: the executed/explored program can deadlock
EXIT_DEADLOCK = 2
#: usage or input error (parse error, missing file, bad request, ...)
EXIT_ERROR = 3
#: the compile service refused or failed the request (retryable codes
#: land here too so scripts can distinguish "bad input" from "bad day")
EXIT_SERVICE = 4

_EXIT_BY_CODE = {
    E_PARSE: EXIT_ERROR,
    E_SEMANTIC: EXIT_ERROR,
    E_ANALYSIS: EXIT_ERROR,
    E_VM: EXIT_ERROR,
    E_DEADLOCK: EXIT_DEADLOCK,
    E_TIMEOUT: EXIT_SERVICE,
    E_OVERLOADED: EXIT_SERVICE,
    E_SHUTDOWN: EXIT_SERVICE,
    E_PROTOCOL: EXIT_SERVICE,
    E_UNSUPPORTED: EXIT_ERROR,
    E_IO: EXIT_ERROR,
    E_USAGE: EXIT_ERROR,
    E_INTERNAL: EXIT_SERVICE,
}


def exit_code_for(code: str) -> int:
    """The CLI exit code for a taxonomy ``code`` (unknown → error)."""
    return _EXIT_BY_CODE.get(code, EXIT_ERROR)


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: machine-readable taxonomy code; subclasses override
    code: str = E_INTERNAL


class SourceLocation:
    """A (line, column) position in a source buffer.

    Lines and columns are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = int(line)
        self.column = int(column)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SourceLocation({self.line}, {self.column})"

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class LexError(ReproError):
    """An unrecognised character or malformed token in the source."""

    code = E_PARSE

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


class ParseError(ReproError):
    """The token stream does not form a valid program."""

    code = E_PARSE

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


class SemanticError(ReproError):
    """A structurally valid program that violates a semantic rule.

    Examples: assigning to a lock variable, using a variable declared
    ``private`` in two different threads of the same cobegin.
    """

    code = E_SEMANTIC


class CFGError(ReproError):
    """Internal inconsistency while building or querying a flow graph."""

    code = E_ANALYSIS


class SSAError(ReproError):
    """Internal inconsistency in SSA construction or FUD chains."""

    code = E_ANALYSIS


class AnalysisError(ReproError):
    """A dataflow or mutex analysis was asked something it cannot answer."""

    code = E_ANALYSIS


class TransformError(ReproError):
    """An optimization pass attempted an ill-formed rewrite."""

    code = E_ANALYSIS


class VMError(ReproError):
    """Runtime error inside the interleaving virtual machine."""

    code = E_VM


class DeadlockError(VMError):
    """Every live thread is blocked; execution cannot make progress.

    Carries the set of lock names held and the blocked thread ids so the
    exhaustive explorer can report *which* schedule deadlocks.
    """

    code = E_DEADLOCK

    def __init__(self, blocked_threads, held_locks) -> None:
        self.blocked_threads = tuple(sorted(blocked_threads))
        self.held_locks = dict(held_locks)
        super().__init__(
            f"deadlock: threads {list(self.blocked_threads)} blocked, "
            f"locks held: {self.held_locks}"
        )


class StepLimitExceeded(VMError):
    """The VM executed more steps than the configured fuel allows."""

    code = E_TIMEOUT

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"execution exceeded {limit} steps (possible livelock)")


# -- service errors (repro.serve) -------------------------------------------


class ServeError(ReproError):
    """Base class for compile-service failures (client or server side)."""

    code = E_INTERNAL


class OverloadedError(ServeError):
    """The server's request queue is at capacity; retry with backoff."""

    code = E_OVERLOADED

    def __init__(self, depth: int, limit: int) -> None:
        self.depth = depth
        self.limit = limit
        super().__init__(f"queue full ({depth}/{limit} requests in flight)")


class DeadlineExceeded(ServeError):
    """A request missed its per-stage deadline."""

    code = E_TIMEOUT

    def __init__(self, stage: str, deadline_ms: float) -> None:
        self.stage = stage
        self.deadline_ms = deadline_ms
        super().__init__(f"stage {stage!r} exceeded its {deadline_ms:g}ms deadline")


class ShuttingDown(ServeError):
    """The server is draining; it finishes in-flight work but takes no more."""

    code = E_SHUTDOWN

    def __init__(self) -> None:
        super().__init__("server is draining and no longer accepts requests")


class ProtocolError(ServeError):
    """A frame on the wire is not a valid request/response."""

    code = E_PROTOCOL


class UnsupportedRequest(ServeError):
    """A well-formed request for a stage/kind this server does not serve."""

    code = E_UNSUPPORTED


class RemoteError(ServeError):
    """Client-side surrogate for an error frame returned by the server.

    Carries the server's taxonomy ``code`` verbatim, so a caller's
    handling (and the CLI's exit code) is identical whether the failure
    happened in-process or across the wire.
    """

    def __init__(self, code: str, message: str, detail: dict | None = None) -> None:
        self.code = code
        self.detail = dict(detail or {})
        super().__init__(message)


# -- classification ----------------------------------------------------------


def error_code(exc: BaseException) -> str:
    """The taxonomy code of any exception.

    :class:`ReproError` subclasses carry their own code; OS-level
    trouble is ``E_IO``; anything else is ``E_INTERNAL`` (a bug).
    """
    if isinstance(exc, ReproError):
        return exc.code
    if isinstance(exc, (OSError, EOFError)):
        return E_IO
    if isinstance(exc, (TimeoutError,)):
        return E_TIMEOUT
    return E_INTERNAL


def error_frame(exc: BaseException) -> dict:
    """The wire/JSON form of an exception: code + type + message.

    This is the exact ``error`` object of a server response frame and
    of ``repro request --json`` output; :func:`error_code` guarantees
    ``code`` is always one of :data:`ALL_CODES`.
    """
    frame = {
        "code": error_code(exc),
        "type": type(exc).__name__,
        "message": str(exc),
    }
    location = getattr(exc, "location", None)
    if location is not None:
        frame["line"] = location.line
        frame["column"] = location.column
    detail = getattr(exc, "detail", None)
    if detail:
        frame["detail"] = dict(detail)
    return frame
