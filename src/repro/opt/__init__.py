"""Optimizations on the CSSAME form (paper Section 5).

* :mod:`repro.opt.concprop` — Concurrent Sparse Conditional Constant
  propagation (Section 5.1): Wegman–Zadeck SCC extended with π terms.
* :mod:`repro.opt.pdce` — Parallel Dead Code Elimination (Section 5.2).
* :mod:`repro.opt.licm` — Lock-Independent Code Motion (Section 5.3,
  Algorithm A.5).
* :mod:`repro.opt.simplify` — structural cleanups shared by the passes.
* :mod:`repro.opt.pipeline` — the constprop → PDCE → LICM driver used
  by the paper's running example (Figures 4–5).
"""

from repro.opt.lattice import BOTTOM, TOP, ConstValue, LatticeValue, meet
from repro.opt.concprop import ConstPropStats, concurrent_constant_propagation
from repro.opt.pdce import PDCEStats, parallel_dead_code_elimination
from repro.opt.licm import LICMStats, lock_independent_code_motion
from repro.opt.lvn import LVNStats, local_value_numbering
from repro.opt.pipeline import OptimizationReport, optimize

__all__ = [
    "BOTTOM",
    "ConstPropStats",
    "ConstValue",
    "LICMStats",
    "LVNStats",
    "LatticeValue",
    "OptimizationReport",
    "PDCEStats",
    "TOP",
    "concurrent_constant_propagation",
    "local_value_numbering",
    "lock_independent_code_motion",
    "meet",
    "optimize",
    "parallel_dead_code_elimination",
]
