"""Lock-Independent Code Motion (Section 5.3, Algorithm A.5).

A statement inside a mutex body is *lock independent* (Definition 5)
when nothing it touches can be modified concurrently: no variable it
uses or defines has a concurrent write, and no variable it defines has a
concurrent read.  Such statements compute the same value inside or
outside the critical section, so they can be hoisted to the *pre-mutex*
landing point (just before the Lock) or sunk to the *post-mutex* landing
point (just after the Unlock), provided the motion preserves the
statement's own dependences (Theorem 3):

* **hoisting** applies to statements in the chain of blocks starting at
  the Lock node's successor (each of which dominates the remaining
  body); a statement moves when its operands have no definition among
  the statements still in the block before it — and, beyond the paper's
  letter, when no earlier remaining statement in the block reads or
  writes what it writes (anti/output dependences; see DESIGN.md);
* **sinking** applies symmetrically to the chain of blocks ending at the
  Unlock node's unique predecessor; a statement moves when its value has
  no use among the statements after it in the block, it does not rewrite
  a variable a later statement redefines, and none of its operands are
  redefined later in the block.

Only plain assignments move: calls and prints are observable effects
whose serialization the lock may be intentionally providing, and
synchronization operations obviously stay.  After motion, a mutex body
left with no statements at all is removed together with its Lock/Unlock
pair (A.5 lines 43–45).
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.blocks import BasicBlock, NodeKind
from repro.cfg.builder import build_flow_graph
from repro.cfg.concurrency import may_happen_in_parallel
from repro.cfg.conflicts import AccessSite, collect_access_sites
from repro.cfg.graph import FlowGraph
from repro.ir.stmts import IRStmt, SAssign, SLock, SUnlock
from repro.ir.structured import Body, ProgramIR, remove_stmt
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.structures import MutexBody, MutexStructure

__all__ = ["LICMStats", "lock_independent_code_motion"]


class LICMStats:
    """Outcome of one LICM run."""

    def __init__(self) -> None:
        self.hoisted = 0
        self.sunk = 0
        self.bodies_emptied = 0
        self.locks_removed = 0

    @property
    def total_moved(self) -> int:
        return self.hoisted + self.sunk

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LICMStats(hoisted={self.hoisted}, sunk={self.sunk}, "
            f"locks_removed={self.locks_removed})"
        )


class _Conflicts:
    """MHP conflict queries over base variable names."""

    def __init__(self, graph: FlowGraph) -> None:
        self.graph = graph
        self.sites: dict[str, list[AccessSite]] = collect_access_sites(graph)
        #: Definition 5 checks performed — LICM's deterministic work
        #: measure (see repro.obs.prof)
        self.independence_checks = 0

    def has_concurrent_write(self, var: str, block: BasicBlock) -> bool:
        for site in self.sites.get(var, []):
            if site.is_real_def and may_happen_in_parallel(
                block, self.graph.blocks[site.block_id]
            ):
                return True
        return False

    def has_concurrent_access(self, var: str, block: BasicBlock) -> bool:
        for site in self.sites.get(var, []):
            if may_happen_in_parallel(block, self.graph.blocks[site.block_id]):
                return True
        return False

    def lock_independent(self, stmt: IRStmt, block: BasicBlock) -> bool:
        """Definition 5, conservatively: no concurrent write to anything
        the statement touches, no concurrent read of anything it writes."""
        self.independence_checks += 1
        if not isinstance(stmt, SAssign):
            return False
        if _contains_call(stmt.value):
            return False  # opaque calls may observe shared state
        return self.accesses_independent(stmt, block)

    def accesses_independent(self, stmt: IRStmt, block: BasicBlock) -> bool:
        """The Definition 5 access conditions alone (any stmt kind)."""
        for use in stmt.uses():
            if self.has_concurrent_write(use.name, block):
                return False
        target = stmt.def_name()
        if target is not None and self.has_concurrent_access(target, block):
            return False
        return True


def _contains_call(expr) -> bool:
    from repro.ir.expr import EBin, ECall, EUn

    if isinstance(expr, ECall):
        return True
    if isinstance(expr, EBin):
        return _contains_call(expr.left) or _contains_call(expr.right)
    if isinstance(expr, EUn):
        return _contains_call(expr.operand)
    return False


def _defined_vars(stmt: IRStmt) -> set[str]:
    name = stmt.def_name()
    return {name} if name is not None else set()


def _used_vars(stmt: IRStmt) -> set[str]:
    return {use.name for use in stmt.uses()}


class _BodyMotion:
    """Runs Algorithm A.5 on one mutex body."""

    def __init__(
        self,
        graph: FlowGraph,
        conflicts: _Conflicts,
        body: MutexBody,
        stats: LICMStats,
    ) -> None:
        self.graph = graph
        self.conflicts = conflicts
        self.body = body
        self.stats = stats
        self.lock_stmt: SLock = graph.blocks[body.lock_node].stmts[0]
        self.unlock_stmt: SUnlock = graph.blocks[body.unlock_node].stmts[0]

    # -- structural landing pads ------------------------------------------

    def _move_to_pre(self, stmt: IRStmt) -> None:
        remove_stmt(stmt)
        parent = self.lock_stmt.parent
        assert isinstance(parent, Body)
        parent.insert_before(self.lock_stmt, stmt)
        self.stats.hoisted += 1

    def _move_to_post(self, stmt: IRStmt) -> None:
        remove_stmt(stmt)
        parent = self.unlock_stmt.parent
        assert isinstance(parent, Body)
        parent.insert_after(self.unlock_stmt, stmt)
        self.stats.sunk += 1

    # -- hoisting ------------------------------------------------------------

    def hoist(self) -> None:
        block = self._unique_succ(self.graph.blocks[self.body.lock_node])
        while block is not None and block.id in self.body.nodes:
            if block.id == self.body.unlock_node:
                return
            moved = self._hoist_from_block(block)
            if moved and not block.stmts:
                block = self._unique_succ(block)
            else:
                return

    def _hoist_from_block(self, block: BasicBlock) -> bool:
        """Move what we can from the head block; True if it emptied."""
        changed = True
        while changed:
            changed = False
            for stmt in list(block.stmts):
                if not self.conflicts.lock_independent(stmt, block):
                    continue
                if not self._hoist_safe(stmt, block):
                    continue
                block.stmts.remove(stmt)
                self._move_to_pre(stmt)
                changed = True
        return not block.stmts

    def _hoist_safe(self, stmt: IRStmt, block: BasicBlock) -> bool:
        """No flow dependence on, and no anti/output dependence with,
        the statements still before it in the block."""
        idx = _index_of(block.stmts, stmt)
        earlier = block.stmts[:idx]
        used = _used_vars(stmt)
        defined = _defined_vars(stmt)
        for other in earlier:
            if _defined_vars(other) & used:
                return False  # flow dependence (Definers within block)
            if (_used_vars(other) | _defined_vars(other)) & defined:
                return False  # anti/output dependence
        # Also: defs of the operands must come from outside the body
        # entirely (the head-block chain is the only body code that can
        # precede the statement, and `earlier` covered it).
        return True

    # -- sinking ---------------------------------------------------------------

    def sink(self) -> None:
        block = self._unique_pred(self.graph.blocks[self.body.unlock_node])
        while block is not None and block.id in self.body.nodes:
            moved = self._sink_from_block(block)
            if moved and not block.stmts:
                block = self._unique_pred(block)
            else:
                return

    def _sink_from_block(self, block: BasicBlock) -> bool:
        changed = True
        while changed:
            changed = False
            for stmt in reversed(list(block.stmts)):
                if not self.conflicts.lock_independent(stmt, block):
                    continue
                if not self._sink_safe(stmt, block):
                    continue
                block.stmts.remove(stmt)
                self._move_to_post(stmt)
                changed = True
        return not block.stmts

    def _sink_safe(self, stmt: IRStmt, block: BasicBlock) -> bool:
        """No use of the statement's value, no redefinition of its
        operands, and no redefinition of its target among the statements
        still after it in the block."""
        idx = _index_of(block.stmts, stmt)
        later = block.stmts[idx + 1 :]
        defined = _defined_vars(stmt)
        used = _used_vars(stmt)
        for other in later:
            if _used_vars(other) & defined:
                return False  # flow dependence (Users within block)
            if _defined_vars(other) & (defined | used):
                return False  # output/anti dependence
        return True

    # -- helpers ------------------------------------------------------------------

    def _unique_succ(self, block: BasicBlock) -> Optional[BasicBlock]:
        if len(block.succs) != 1:
            return None
        return self.graph.blocks[block.succs[0]]

    def _unique_pred(self, block: BasicBlock) -> Optional[BasicBlock]:
        if len(block.preds) != 1:
            return None
        pred = self.graph.blocks[block.preds[0]]
        if len(pred.succs) != 1:
            return None  # pred must exit straight into this block
        return pred

    # -- empty-body removal -----------------------------------------------------

    def remove_if_empty(self) -> bool:
        for block_id in self.body.nodes:
            block = self.graph.blocks[block_id]
            if block.id == self.body.unlock_node:
                continue
            if block.stmts or block.phis:
                return False
        remove_stmt(self.lock_stmt)
        remove_stmt(self.unlock_stmt)
        self.stats.bodies_emptied += 1
        self.stats.locks_removed += 2
        return True


class _RegionMotion:
    """Whole-region motion: the paper notes a statement inside a loop
    can only leave the mutex body if "the whole loop is lock
    independent".  This phase moves an ``if``/``while`` region that is
    structurally adjacent to the Lock (hoist) or Unlock (sink) when
    every statement inside it is lock independent.

    Caveat (shared with classic loop optimizations and the paper's
    model): motion assumes the region terminates — relocating a
    non-terminating loop across a lock boundary would change which
    locks a hung execution holds.
    """

    def __init__(self, graph: FlowGraph, conflicts: _Conflicts, stats: LICMStats) -> None:
        self.graph = graph
        self.conflicts = conflicts
        self.stats = stats

    def run(self, body: MutexBody) -> None:
        lock_stmt = self.graph.blocks[body.lock_node].stmts[0]
        unlock_stmt = self.graph.blocks[body.unlock_node].stmts[0]
        lock_body = lock_stmt.parent
        if not isinstance(lock_body, Body) or unlock_stmt.parent is not lock_body:
            return  # lock/unlock not structural siblings: stay put
        anchor_block = self.graph.blocks[body.lock_node]

        changed = True
        while changed:
            changed = False
            idx = lock_body.index(lock_stmt)
            if idx + 1 < len(lock_body):
                item = lock_body.items[idx + 1]
                if item is not unlock_stmt and self._movable(item, anchor_block):
                    lock_body.remove(item)
                    lock_body.insert_before(lock_stmt, item)
                    self.stats.hoisted += 1
                    changed = True
                    continue
            uidx = lock_body.index(unlock_stmt)
            if uidx > 0:
                item = lock_body.items[uidx - 1]
                if item is not lock_stmt and self._movable(item, anchor_block):
                    lock_body.remove(item)
                    lock_body.insert_after(unlock_stmt, item)
                    self.stats.sunk += 1
                    changed = True

    def _movable(self, item, anchor_block) -> bool:
        from repro.ir.stmts import Phi

        if isinstance(item, Phi):
            # A φ is a runtime no-op; it may travel with its region as
            # long as its base variable has no concurrent access.
            return self.conflicts.accesses_independent(item, anchor_block)
        return self._movable_region(item, anchor_block)

    def _movable_region(self, item, anchor_block) -> bool:
        from repro.ir.structured import CobeginRegion, IfRegion, WhileRegion, _iter_body
        from repro.ir.stmts import Phi, Pi, SBranch, SSkip

        if not isinstance(item, (IfRegion, WhileRegion)):
            return False
        if _contains_cobegin(item):
            return False  # nested parallelism: stay conservative

        def stmts_of(region):
            if isinstance(region, IfRegion):
                yield region.branch
                yield from (s for s, _ in _iter_body(region.then_body, (), True))
                yield from (s for s, _ in _iter_body(region.else_body, (), True))
            else:
                yield from region.header_phis
                yield region.branch
                yield from (s for s, _ in _iter_body(region.body, (), True))

        for stmt in stmts_of(item):
            if isinstance(stmt, Pi):
                return False  # a π means a shared conflicting use
            if isinstance(stmt, Phi):
                # φs are runtime no-ops; they only pin the region when
                # they merge a concurrently-accessed variable.
                if not self.conflicts.accesses_independent(stmt, anchor_block):
                    return False
                continue
            if isinstance(stmt, (SBranch, SSkip)):
                if not self.conflicts.accesses_independent(stmt, anchor_block):
                    return False
                continue
            if not self.conflicts.lock_independent(stmt, anchor_block):
                return False
        return True


def _contains_cobegin(item) -> bool:
    from repro.ir.structured import Body, CobeginRegion, IfRegion, WhileRegion

    def walk(body: Body) -> bool:
        for child in body.items:
            if isinstance(child, CobeginRegion):
                return True
            if isinstance(child, IfRegion):
                if walk(child.then_body) or walk(child.else_body):
                    return True
            elif isinstance(child, WhileRegion):
                if walk(child.body):
                    return True
        return False

    from repro.ir.structured import IfRegion as _If, WhileRegion as _While

    if isinstance(item, _If):
        return walk(item.then_body) or walk(item.else_body)
    if isinstance(item, _While):
        return walk(item.body)
    return False


def _index_of(stmts: list[IRStmt], stmt: IRStmt) -> int:
    for i, existing in enumerate(stmts):
        if existing is stmt:
            return i
    raise ValueError("statement not in block")  # pragma: no cover


def lock_independent_code_motion(
    program: ProgramIR,
    graph: Optional[FlowGraph] = None,
    structures: Optional[dict[str, MutexStructure]] = None,
) -> LICMStats:
    """Run LICM on ``program`` in place; returns motion statistics."""
    if graph is None:
        graph = build_flow_graph(program)
    if structures is None:
        structures = identify_mutex_structures(graph)
    conflicts = _Conflicts(graph)
    stats = LICMStats()
    for _lock_name, structure in sorted(structures.items()):
        for body in structure.bodies:
            motion = _BodyMotion(graph, conflicts, body, stats)
            motion.hoist()
            motion.sink()
            # Whole-region motion (the paper's "unless the whole loop is
            # lock independent" case), then another statement pass for
            # anything the region move uncovered.
            _RegionMotion(graph, conflicts, stats).run(body)
            motion.remove_if_empty()
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "licm",
            bodies=sum(len(s) for s in structures.values()),
            independence_checks=conflicts.independence_checks,
            moved=stats.total_moved,
            locks_removed=stats.locks_removed,
        )
    return stats
