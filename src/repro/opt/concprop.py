"""Concurrent Sparse Conditional Constant propagation (Section 5.1).

The classic Wegman–Zadeck SCC algorithm, extended for explicitly
parallel programs exactly as Lee et al. (and this paper) describe:

* φ terms meet their arguments over *executable* incoming control edges;
* π terms meet their control argument with every conflict argument whose
  defining block is executable — so CSSAME's π pruning (fewer conflict
  arguments) directly translates into more constants;
* ``cobegin`` makes all child threads executable at once;
* constant branches keep only one successor edge executable, and the
  transformation phase folds the corresponding ``if``/``while`` regions.

The pass runs on a program in CSSA/CSSAME form and edits it in place,
keeping the SSA chains consistent (replaced φ/π terms become plain
constant assignments and their uses are re-linked).
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.builder import build_flow_graph
from repro.cfg.graph import FlowGraph
from repro.errors import TransformError
from repro.ir.expr import EConst, EVar, IRExpr
from repro.ir.stmts import IRStmt, Phi, Pi, SAssign, SBranch
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    WhileRegion,
    iter_statements,
    remove_stmt,
)
from repro.opt.folding import eval_expr
from repro.opt.lattice import BOTTOM, TOP, ConstValue, LatticeValue, meet, meet_all
from repro.ssa.chains import UseMap, build_use_map
from repro.ssa.destruct import replace_stmt
from repro.ssa.names import EntryDef

__all__ = ["ConstPropStats", "concurrent_constant_propagation"]


class ConstPropStats:
    """Outcome of one constant-propagation run."""

    def __init__(self) -> None:
        #: SSA display name → constant value, for every def proven constant
        self.constants: dict[str, int] = {}
        self.uses_replaced = 0
        self.defs_made_constant = 0
        self.phis_removed = 0
        self.pis_removed = 0
        self.branches_folded = 0
        self.loops_removed = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ConstPropStats(constants={len(self.constants)}, "
            f"uses_replaced={self.uses_replaced}, "
            f"branches_folded={self.branches_folded})"
        )


class _Analysis:
    """The sparse conditional fixpoint."""

    def __init__(self, program: ProgramIR, graph: FlowGraph) -> None:
        self.program = program
        self.graph = graph
        self.values: dict[IRStmt, LatticeValue] = {}
        self.executable_blocks: set[int] = set()
        self.executable_edges: set[tuple[int, int]] = set()
        self.usemap: UseMap = build_use_map(program)
        self._flow: list[tuple[int, int]] = []
        self._ssa: list[IRStmt] = []
        #: lattice evaluations performed — the pass's deterministic
        #: work measure (see repro.obs.prof)
        self.evals = 0
        #: φ → positional arg↔pred mapping (None = conservative)
        self._phi_preds: dict[Phi, Optional[list[int]]] = {}

    # -- lattice lookups ---------------------------------------------------

    def value_of_site(self, site: object) -> LatticeValue:
        if isinstance(site, EntryDef):
            # Unassigned variables read as 0 (the VM's semantics).
            return ConstValue(0)
        if isinstance(site, IRStmt):
            return self.values.get(site, TOP)
        return BOTTOM  # unknown def site: be safe

    def value_of_var(self, var: EVar) -> LatticeValue:
        if var.def_site is None:
            return BOTTOM
        return self.value_of_site(var.def_site)

    # -- evaluation ----------------------------------------------------------

    def _phi_pred_map(self, phi: Phi) -> Optional[list[int]]:
        """preds[i] feeding args[i], when the positional invariant holds."""
        if phi in self._phi_preds:
            return self._phi_preds[phi]
        result: Optional[list[int]] = None
        if self.graph.contains_stmt(phi):
            block = self.graph.block_of(phi)
            index = self.graph.location_of(phi)[1]
            leading_phis = index < 0 or all(
                isinstance(s, Phi) for s in block.stmts[: max(index, 0)]
            )
            if len(block.preds) == len(phi.args) and len(block.preds) >= 2 and leading_phis:
                result = list(block.preds)
        self._phi_preds[phi] = result
        return result

    def evaluate(self, stmt: IRStmt) -> LatticeValue:
        self.evals += 1
        if isinstance(stmt, SAssign):
            return eval_expr(stmt.value, self.value_of_var)
        if isinstance(stmt, Phi):
            preds = self._phi_pred_map(stmt)
            if preds is None:
                return meet_all(self.value_of_var(a.var) for a in stmt.args)
            block_id = self.graph.block_of(stmt).id
            vals = []
            for pred, arg in zip(preds, stmt.args):
                if (pred, block_id) in self.executable_edges:
                    vals.append(self.value_of_var(arg.var))
            return meet_all(vals)
        if isinstance(stmt, Pi):
            vals = [self.value_of_var(stmt.control)]
            for arg in stmt.conflicts:
                site = arg.def_site
                if isinstance(site, IRStmt) and self.graph.contains_stmt(site):
                    if self.graph.block_of(site).id not in self.executable_blocks:
                        continue  # definition can never execute
                vals.append(self.value_of_var(arg))
            return meet_all(vals)
        raise TransformError(f"cannot evaluate {stmt!r}")  # pragma: no cover

    # -- worklist engine -------------------------------------------------------

    def run(self) -> None:
        entry = self.graph.entry
        self.executable_blocks.add(entry.id)
        for succ in entry.succs:
            self._flow.append((entry.id, succ))
        while self._flow or self._ssa:
            if self._flow:
                edge = self._flow.pop()
                self._process_edge(edge)
            else:
                stmt = self._ssa.pop()
                self._revisit(stmt)

    @staticmethod
    def _block_stmts(block) -> list[IRStmt]:
        """All of the block's statements, including head φs.

        On a freshly built CSSAME graph φ terms live in ``block.phis``;
        on rebuilt graphs they appear as ordinary leading statements.
        The fixpoint must see them either way.
        """
        if block.phis:
            return list(block.phis) + block.stmts
        return block.stmts

    def _process_edge(self, edge: tuple[int, int]) -> None:
        if edge in self.executable_edges:
            return
        self.executable_edges.add(edge)
        block_id = edge[1]
        if block_id in self.executable_blocks:
            # Only φ terms care about additional incoming edges.
            for stmt in self._block_stmts(self.graph.blocks[block_id]):
                if isinstance(stmt, Phi):
                    self._revisit(stmt)
            return
        self.executable_blocks.add(block_id)
        block = self.graph.blocks[block_id]
        branch: Optional[SBranch] = None
        for stmt in self._block_stmts(block):
            if isinstance(stmt, (SAssign, Phi, Pi)):
                self._update(stmt, self.evaluate(stmt))
            elif isinstance(stmt, SBranch):
                branch = stmt
        if branch is not None:
            self._process_branch(block_id, branch)
        else:
            for succ in block.succs:
                self._flow.append((block_id, succ))

    def _process_branch(self, block_id: int, branch: SBranch) -> None:
        block = self.graph.blocks[block_id]
        value = eval_expr(branch.cond, self.value_of_var)
        if value is TOP:
            return
        if isinstance(value, ConstValue):
            target = block.succs[0] if value.value != 0 else block.succs[1]
            self._flow.append((block_id, target))
        else:
            for succ in block.succs:
                self._flow.append((block_id, succ))

    def _update(self, stmt: IRStmt, new: LatticeValue) -> None:
        old = self.values.get(stmt, TOP)
        merged = meet(old, new)
        self.values[stmt] = merged
        if merged == old:
            return
        for _use, holder in self.usemap.uses_of(stmt):
            if isinstance(holder, (SAssign, Phi, Pi)):
                self._ssa.append(holder)
            elif isinstance(holder, SBranch):
                if self.graph.contains_stmt(holder):
                    holder_block = self.graph.block_of(holder)
                    if holder_block.id in self.executable_blocks:
                        self._process_branch(holder_block.id, holder)

    def _revisit(self, stmt: IRStmt) -> None:
        if not self.graph.contains_stmt(stmt):
            return
        if self.graph.block_of(stmt).id not in self.executable_blocks:
            return
        self._update(stmt, self.evaluate(stmt))


class _Transformer:
    """Applies the fixpoint's findings to the structured tree."""

    def __init__(
        self,
        analysis: _Analysis,
        stats: ConstPropStats,
        fold_output_uses: bool = True,
    ) -> None:
        self.a = analysis
        self.stats = stats
        self.fold_output_uses = fold_output_uses
        self._structures = None
        self._sites = None
        self._body_dataflow: dict[int, object] = {}

    def _mutex_structures(self):
        if self._structures is None:
            from repro.mutex.identify import identify_mutex_structures

            self._structures = identify_mutex_structures(self.a.graph)
        return self._structures

    def _dataflow(self, body):
        from repro.cssame.exposure import BodyDataflow

        cached = self._body_dataflow.get(id(body))
        if cached is None:
            cached = BodyDataflow(self.a.graph, body)
            self._body_dataflow[id(body)] = cached
        return cached

    def _phi_store_is_safe(self, phi: Phi) -> bool:
        """May a φ be materialized as a real assignment?

        A φ is a runtime no-op; turning it into ``v = c`` introduces a
        *store* to the shared base variable.  That is a pure no-op (the
        base already holds ``c``) only when no concurrent definition of
        ``v`` can reach the φ point — the exact conditions of the
        paper's Theorems 1 and 2, applied to a hypothetical use of
        ``v`` at the φ's position:

        * every may-happen-in-parallel real definition of ``v`` must sit
          in another mutex body of a structure that also protects the
          φ, and
        * either the φ point is not upward-exposed from its body
          (something inside the body redefines ``v`` first, Theorem 2)
          or that definition never reaches its own body's exit
          (Theorem 1).

        This is the Figure 4b situation (``a3 = 13`` inside T0's mutex
        body); anything weaker can overwrite a concurrent thread's
        value with the φ's control-flow constant.
        """
        from repro.cfg.concurrency import may_happen_in_parallel
        from repro.cfg.conflicts import collect_access_sites

        graph = self.a.graph
        if not graph.contains_stmt(phi):
            return False
        block_id, index = graph.location_of(phi)
        block = graph.blocks[block_id]
        if self._sites is None:
            self._sites = collect_access_sites(graph)

        structures = self._mutex_structures()
        my_bodies = {}  # lock name → body containing the φ
        for lock_name, structure in structures.items():
            body = structure.body_of_block(block_id)
            if body is not None:
                my_bodies[lock_name] = body

        for site in self._sites.get(phi.target, []):
            if not site.is_real_def:
                continue
            if not may_happen_in_parallel(block, graph.blocks[site.block_id]):
                continue
            # The concurrent def must be provably unable to reach here.
            killed = False
            for lock_name, my_body in my_bodies.items():
                other = structures[lock_name].body_of_block(site.block_id)
                if other is None or other is my_body:
                    continue
                if not self._dataflow(my_body).upward_exposed(
                    phi.target, block_id, index
                ):
                    killed = True  # Theorem 2
                    break
                if not self._dataflow(other).reaches_exit(
                    phi.target, site.block_id, site.index
                ):
                    killed = True  # Theorem 1
                    break
            if not killed:
                return False
        return True

    def run(self) -> None:
        self._rewrite_merge_terms()
        self._rewrite_assignments_and_uses()
        self._fold_regions(self.a.program.body)

    # -- φ/π rewriting -----------------------------------------------------

    def _display_name(self, stmt: IRStmt) -> str:
        if isinstance(stmt, SAssign):
            return stmt.ssa_target
        if isinstance(stmt, Phi):
            return stmt.ssa_target
        if isinstance(stmt, Pi):
            return stmt.target
        return f"stmt#{stmt.uid}"

    def _redirect_uses(self, def_site: IRStmt, target: EVar) -> None:
        for use, _holder in self.a.usemap.uses_of(def_site):
            use.name = target.name
            use.version = target.version
            use.def_site = target.def_site

    def _make_const_assign(self, stmt: IRStmt, value: int) -> None:
        """Replace a φ/π definition with ``target = value``."""
        target = stmt.def_name()
        version = stmt.def_version()
        assert target is not None
        new = SAssign(target, EConst(value), version)
        replace_stmt(stmt, new)
        self.a.values[new] = ConstValue(value)
        for use, _holder in self.a.usemap.uses_of(stmt):
            use.def_site = new
            self.a.usemap.add(new, use, _holder)
        self.stats.defs_made_constant += 1
        self.stats.constants[new.ssa_target] = value

    def _rewrite_merge_terms(self) -> None:
        graph = self.a.graph
        for stmt, _ctx in list(iter_statements(self.a.program)):
            if not isinstance(stmt, (Phi, Pi)):
                continue
            if graph.contains_stmt(stmt):
                if graph.block_of(stmt).id not in self.a.executable_blocks:
                    continue  # unreachable; region folding discards it
            value = self.a.values.get(stmt, TOP)
            if isinstance(stmt, Phi):
                self._prune_phi_args(stmt)
                if isinstance(value, ConstValue):
                    if self._phi_store_is_safe(stmt):
                        self._make_const_assign(stmt, value.value)
                        self.stats.phis_removed += 1
                    else:
                        self._fold_phi_uses(stmt, value.value)
                elif len(stmt.args) == 1:
                    self._redirect_uses(stmt, stmt.args[0].var)
                    remove_stmt(stmt)
                    self.stats.phis_removed += 1
            else:  # Pi
                self._prune_pi_args(stmt)
                if isinstance(value, ConstValue):
                    self._make_const_assign(stmt, value.value)
                    self.stats.pis_removed += 1
                elif not stmt.conflicts:
                    self._redirect_uses(stmt, stmt.control)
                    remove_stmt(stmt)
                    self.stats.pis_removed += 1

    def _fold_phi_uses(self, phi: Phi, value: int) -> None:
        """Fold a constant-but-unsafe-to-store φ at its use sites.

        Ordinary uses become the literal constant (sound: a use that
        chained directly to this φ has no concurrent definitions
        reaching it, or CSSA would have interposed a π term).  Uses
        inside other φ/π terms stay symbolic, so the φ itself is kept
        alive as a runtime no-op when such uses exist.
        """
        merge_uses = 0
        for use, holder in self.a.usemap.uses_of(phi):
            if isinstance(holder, (Phi, Pi)):
                merge_uses += 1
                continue

            def fold(var: EVar) -> IRExpr:
                if var is use:
                    self.stats.uses_replaced += 1
                    return EConst(value)
                return var

            holder.rewrite_exprs(fold)
        self.stats.constants[phi.ssa_target] = value
        if merge_uses == 0:
            remove_stmt(phi)
            self.stats.phis_removed += 1

    def _prune_phi_args(self, phi: Phi) -> None:
        preds = self.a._phi_pred_map(phi)
        if preds is None:
            return
        block_id = self.a.graph.block_of(phi).id
        kept = [
            arg
            for pred, arg in zip(preds, phi.args)
            if (pred, block_id) in self.a.executable_edges
        ]
        if kept and len(kept) < len(phi.args):
            phi.args = kept
            # The positional invariant no longer holds for this φ.
            self.a._phi_preds[phi] = None

    def _prune_pi_args(self, pi: Pi) -> None:
        graph = self.a.graph
        kept = []
        for arg in pi.conflicts:
            site = arg.def_site
            if isinstance(site, IRStmt) and graph.contains_stmt(site):
                if graph.block_of(site).id not in self.a.executable_blocks:
                    continue
            kept.append(arg)
        pi.conflicts = kept

    # -- plain statements ----------------------------------------------------

    def _rewrite_assignments_and_uses(self) -> None:
        from repro.ir.stmts import SPrint

        for stmt, _ctx in iter_statements(self.a.program):
            if isinstance(stmt, (Phi, Pi)):
                continue
            if isinstance(stmt, SPrint) and not self.fold_output_uses:
                # Mirror the paper's figures, which leave print(x0)
                # symbolic so the defining store stays observable.
                continue
            if isinstance(stmt, SAssign):
                value = self.a.values.get(stmt, TOP)
                if isinstance(value, ConstValue):
                    if not isinstance(stmt.value, EConst):
                        stmt.value = EConst(value.value)
                    self.stats.constants[stmt.ssa_target] = value.value
                    continue

            def substitute(var: EVar) -> IRExpr:
                val = self.a.value_of_var(var)
                if isinstance(val, ConstValue):
                    self.stats.uses_replaced += 1
                    return EConst(val.value)
                return var

            stmt.rewrite_exprs(substitute)
            self._fold_in_place(stmt)

    @staticmethod
    def _fold_in_place(stmt: IRStmt) -> None:
        from repro.ir.stmts import SBranch, SCallStmt, SPrint
        from repro.opt.folding import fold_expr

        if isinstance(stmt, SAssign):
            stmt.value = fold_expr(stmt.value)
        elif isinstance(stmt, (SPrint, SCallStmt)):
            stmt.args = [fold_expr(a) for a in stmt.args]
        elif isinstance(stmt, SBranch):
            stmt.cond = fold_expr(stmt.cond)

    # -- structural folding ----------------------------------------------------

    def _branch_executable_succs(self, branch: SBranch) -> Optional[list[int]]:
        graph = self.a.graph
        if not graph.contains_stmt(branch):
            return None
        block = graph.block_of(branch)
        if block.id not in self.a.executable_blocks:
            return None
        return [s for s in block.succs if (block.id, s) in self.a.executable_edges]

    def _fold_regions(self, body: Body) -> None:
        for item in list(body.items):
            if isinstance(item, IfRegion):
                self._fold_if(body, item)
            elif isinstance(item, WhileRegion):
                self._fold_while(body, item)
            elif isinstance(item, CobeginRegion):
                for thread in item.threads:
                    self._fold_regions(thread.body)

    def _fold_if(self, body: Body, region: IfRegion) -> None:
        value = eval_expr(region.branch.cond, self.a.value_of_var)
        if isinstance(value, ConstValue):
            taken = region.then_body if value.value != 0 else region.else_body
            self._fold_regions(taken)
            body.replace(region, list(taken.items))
            self.stats.branches_folded += 1
            return
        self._fold_regions(region.then_body)
        self._fold_regions(region.else_body)

    def _fold_while(self, body: Body, region: WhileRegion) -> None:
        value = eval_expr(region.branch.cond, self.a.value_of_var)
        if isinstance(value, ConstValue) and value.value == 0:
            # The loop body never runs; header terms were already
            # collapsed by φ pruning (the back edge is not executable).
            replacement = [s for s in region.header_phis if s.parent is region]
            for s in replacement:
                s.parent = None
            body.replace(region, list(replacement))
            self.stats.loops_removed += 1
            return
        self._fold_regions(region.body)


def concurrent_constant_propagation(
    program: ProgramIR,
    graph: Optional[FlowGraph] = None,
    fold_output_uses: bool = True,
) -> ConstPropStats:
    """Run CSCC on a CSSA/CSSAME-form ``program``, in place.

    ``fold_output_uses=False`` keeps ``print`` arguments symbolic (the
    paper's figures do this), so constant stores feeding prints remain
    visible to later passes.
    """
    if graph is None:
        graph = build_flow_graph(program)
    analysis = _Analysis(program, graph)
    analysis.run()
    stats = ConstPropStats()
    _Transformer(analysis, stats, fold_output_uses).run()
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "constprop",
            lattice_evals=analysis.evals,
            executable_blocks=len(analysis.executable_blocks),
            executable_edges=len(analysis.executable_edges),
            constants=len(stats.constants),
            uses_replaced=stats.uses_replaced,
        )
    return stats
