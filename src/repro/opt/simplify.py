"""Structural cleanups shared by the optimization passes.

These are conservative, semantics-preserving tidy-ups:

* drop ``skip`` statements;
* drop ``if`` regions whose branches are both empty (conditions are
  side-effect free — calls in a discarded condition would be lost, so
  conditions containing calls are kept);
* drop ``while`` regions with a constant-false condition;
* drop ``cobegin`` regions with no threads, splice single-thread
  cobegins inline.

Infinite loops and non-empty regions are never touched.
"""

from __future__ import annotations

from repro.ir.expr import EConst
from repro.ir.stmts import SSkip
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    WhileRegion,
)
from repro.opt.licm import _contains_call

__all__ = ["simplify_structure"]


def simplify_structure(program: ProgramIR) -> int:
    """Apply all cleanups until fixpoint; returns how many items were
    removed or spliced."""
    total = 0
    while True:
        removed = _simplify_body(program.body)
        total += removed
        if removed == 0:
            return total


def _simplify_body(body: Body) -> int:
    removed = 0
    for item in list(body.items):
        if isinstance(item, SSkip):
            body.remove(item)
            removed += 1
        elif isinstance(item, IfRegion):
            removed += _simplify_body(item.then_body)
            removed += _simplify_body(item.else_body)
            if (
                not item.then_body
                and not item.else_body
                and not _contains_call(item.branch.cond)
            ):
                body.remove(item)
                removed += 1
        elif isinstance(item, WhileRegion):
            removed += _simplify_body(item.body)
            cond = item.branch.cond
            if isinstance(cond, EConst) and cond.value == 0 and not item.header_phis:
                body.remove(item)
                removed += 1
        elif isinstance(item, CobeginRegion):
            for thread in item.threads:
                removed += _simplify_body(thread.body)
            if not item.threads:
                body.remove(item)
                removed += 1
            elif len(item.threads) == 1:
                body.replace(item, list(item.threads[0].body.items))
                removed += 1
    return removed
