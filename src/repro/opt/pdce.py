"""Parallel Dead Code Elimination (Section 5.2).

Cytron-style mark/sweep DCE adapted to explicitly parallel programs:

* seeds: statements assumed to affect the output — ``print``, opaque
  calls, and synchronization operations (``lock``/``unlock``/``set``/
  ``wait``; removing empty critical sections is LICM's job, not DCE's);
* a live statement makes the definitions feeding its uses live — and
  because φ **and π terms are followed like definitions** (Algorithm
  A.4), a use that is live in one thread keeps alive the concurrent
  definitions that may reach it through π conflict arguments.  This is
  what makes the paper's example work: ``b1 = 8`` in T0 stays alive
  because T1's ``tb0 = π(b0, b1)`` reaches a printed value, while a
  sequential DCE would wrongly kill it;
* a live statement makes the branches it is control dependent on live
  (control dependence = post-dominance frontier);
* a ``cobegin`` is live if any child thread contains a live statement;
  when exactly one thread survives, the construct is replaced by that
  thread's sequential code (paper modification 2).
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.builder import build_flow_graph
from repro.cfg.dominance import compute_postdominators, postdominance_frontiers
from repro.cfg.graph import FlowGraph
from repro.errors import TransformError
from repro.ir.stmts import (
    IRStmt,
    Phi,
    SBarrier,
    Pi,
    SAssign,
    SBranch,
    SCallStmt,
    SLock,
    SPrint,
    SSetEvent,
    SSkip,
    SUnlock,
    SWaitEvent,
)
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    WhileRegion,
    iter_statements,
    remove_stmt,
)

__all__ = ["PDCEStats", "parallel_dead_code_elimination"]

_SEED_KINDS = (SPrint, SCallStmt, SLock, SUnlock, SSetEvent, SWaitEvent, SBarrier)


class PDCEStats:
    """Outcome of one PDCE run."""

    def __init__(self) -> None:
        self.stmts_removed = 0
        self.phis_removed = 0
        self.pis_removed = 0
        self.regions_removed = 0
        self.threads_removed = 0
        self.cobegins_sequentialized = 0

    @property
    def total_removed(self) -> int:
        return self.stmts_removed + self.phis_removed + self.pis_removed

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PDCEStats(stmts={self.stmts_removed}, phis={self.phis_removed}, "
            f"pis={self.pis_removed}, regions={self.regions_removed}, "
            f"sequentialized={self.cobegins_sequentialized})"
        )


def _mark_live(
    program: ProgramIR, graph: FlowGraph
) -> tuple[set[IRStmt], int]:
    """Mark phase; returns (live set, statements scanned for seeds)."""
    pdom = compute_postdominators(graph)
    pdf = postdominance_frontiers(graph, pdom)

    live: set[IRStmt] = set()
    worklist: list[IRStmt] = []

    def mark(stmt: IRStmt) -> None:
        if stmt not in live:
            live.add(stmt)
            worklist.append(stmt)

    scanned = 0
    for stmt, _ctx in iter_statements(program):
        scanned += 1
        if isinstance(stmt, _SEED_KINDS):
            mark(stmt)

    while worklist:
        stmt = worklist.pop()
        # Data dependence: definitions feeding this statement are live.
        for use in stmt.uses():
            site = use.def_site
            if isinstance(site, IRStmt):
                mark(site)
        # Control dependence: branches this statement depends on are live.
        if graph.contains_stmt(stmt):
            block_id = graph.block_of(stmt).id
            for ctrl_id in pdf[block_id]:
                ctrl_block = graph.blocks[ctrl_id]
                if ctrl_block.stmts and isinstance(ctrl_block.stmts[-1], SBranch):
                    mark(ctrl_block.stmts[-1])
    return live, scanned


class _Sweeper:
    def __init__(self, live: set[IRStmt], stats: PDCEStats) -> None:
        self.live = live
        self.stats = stats

    def sweep_body(self, body: Body) -> None:
        for item in list(body.items):
            if isinstance(item, IRStmt):
                self._sweep_stmt(item)
            elif isinstance(item, IfRegion):
                self._sweep_if(body, item)
            elif isinstance(item, WhileRegion):
                self._sweep_while(body, item)
            elif isinstance(item, CobeginRegion):
                self._sweep_cobegin(body, item)

    def _sweep_stmt(self, stmt: IRStmt) -> None:
        if stmt in self.live:
            return
        if isinstance(stmt, (SAssign, Phi, Pi, SSkip)):
            remove_stmt(stmt)
            if isinstance(stmt, Phi):
                self.stats.phis_removed += 1
            elif isinstance(stmt, Pi):
                self.stats.pis_removed += 1
            else:
                self.stats.stmts_removed += 1

    def _assert_no_live(self, body: Body) -> None:
        for stmt, _ctx in iter_statements_body(body):
            if stmt in self.live:
                raise TransformError(
                    "live statement inside a region with a dead branch"
                )

    def _sweep_if(self, body: Body, region: IfRegion) -> None:
        if region.branch in self.live:
            self.sweep_body(region.then_body)
            self.sweep_body(region.else_body)
            return
        self._assert_no_live(region.then_body)
        self._assert_no_live(region.else_body)
        body.remove(region)
        self.stats.regions_removed += 1

    def _sweep_while(self, body: Body, region: WhileRegion) -> None:
        if region.branch in self.live:
            for header in list(region.header_phis):
                self._sweep_stmt(header)
            self.sweep_body(region.body)
            return
        self._assert_no_live(region.body)
        for header in list(region.header_phis):
            if header in self.live:
                raise TransformError("live loop-header term in a dead loop")
        body.remove(region)
        self.stats.regions_removed += 1

    def _sweep_cobegin(self, body: Body, region: CobeginRegion) -> None:
        for thread in region.threads:
            self.sweep_body(thread.body)
        surviving = [t for t in region.threads if len(t.body) > 0]
        removed = len(region.threads) - len(surviving)
        self.stats.threads_removed += removed
        if len(surviving) == len(region.threads):
            return
        if len(surviving) >= 2:
            region.threads = surviving
            return
        if len(surviving) == 1:
            # Paper modification 2: one live thread → sequential code.
            body.replace(region, list(surviving[0].body.items))
            self.stats.cobegins_sequentialized += 1
        else:
            body.remove(region)
            self.stats.regions_removed += 1


def iter_statements_body(body: Body):
    """Iterate statements under one body (helper for assertions)."""
    from repro.ir.structured import _iter_body  # shared traversal

    return _iter_body(body, (), True)


def parallel_dead_code_elimination(
    program: ProgramIR,
    graph: Optional[FlowGraph] = None,
) -> PDCEStats:
    """Run PDCE on an SSA/CSSA/CSSAME-form ``program``, in place."""
    if graph is None:
        graph = build_flow_graph(program)
    live, scanned = _mark_live(program, graph)
    stats = PDCEStats()
    _Sweeper(live, stats).sweep_body(program.body)
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "pdce",
            stmts_scanned=scanned,
            marked_live=len(live),
            removed=stats.total_removed,
            regions_removed=stats.regions_removed,
        )
    return stats
