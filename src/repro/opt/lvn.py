"""Local value numbering / common-subexpression elimination on CSSAME.

The paper's Section 7 observes that "the CSSAME form facilitates the
translation of scalar optimizations to the parallel case, especially if
the sequential strategy is SSA based".  This pass demonstrates the
claim with classic value numbering:

* Two occurrences of the same expression *over the same SSA names* are
  guaranteed to compute the same value — even in a parallel program —
  because CSSA interposes a π term (a fresh name) wherever a concurrent
  definition may intervene.  Racy re-reads therefore get different
  names and never match; protected or thread-local values match and can
  be reused.  This is the same invariant that makes concurrent constant
  propagation's use-folding sound.
* Scope is one basic block at a time.  Since Lock/Unlock/barrier
  operations occupy their own PFG nodes, a table never crosses a
  synchronization point.
* Replacing an expression with a reference to an earlier definition
  ``t`` must survive conventional-SSA destruction (versions drop to the
  base variable), so the reuse is valid only while the base variable of
  ``t`` has not been redefined within the block.

The pass runs on the CSSAME form, in place, like the other passes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cfg.builder import build_flow_graph
from repro.cfg.graph import FlowGraph
from repro.ir.expr import EBin, ECall, EConst, EUn, EVar, IRExpr
from repro.ir.stmts import (
    IRStmt,
    Phi,
    Pi,
    SAssign,
    SBranch,
    SCallStmt,
    SPrint,
)
from repro.ir.structured import ProgramIR

__all__ = ["LVNStats", "local_value_numbering"]

_Key = tuple


class LVNStats:
    """Outcome of one value-numbering run."""

    def __init__(self) -> None:
        self.expressions_replaced = 0
        self.blocks_processed = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LVNStats(replaced={self.expressions_replaced}, "
            f"blocks={self.blocks_processed})"
        )


def _key_of(expr: IRExpr) -> Optional[_Key]:
    """Structural key over SSA names; ``None`` for unkeyable (calls)."""
    if isinstance(expr, EConst):
        return ("const", expr.value)
    if isinstance(expr, EVar):
        return ("var", expr.name, expr.version)
    if isinstance(expr, EUn):
        inner = _key_of(expr.operand)
        if inner is None:
            return None
        return ("un", expr.op, inner)
    if isinstance(expr, EBin):
        left = _key_of(expr.left)
        right = _key_of(expr.right)
        if left is None or right is None:
            return None
        if expr.op in ("+", "*", "==", "!=", "&&", "||"):
            # Commutative operators: canonicalize operand order.
            left, right = sorted((left, right))
        return ("bin", expr.op, left, right)
    if isinstance(expr, ECall):
        return None  # opaque, never reusable
    return None


class _BlockTable:
    """Available expressions for one block.

    ``can_reuse(base)`` must return True only when the base variable has
    no concurrent writer: replacing a recomputation with a reference to
    ``t`` introduces a *new runtime read* of ``t``'s base variable, which
    is only behaviour-preserving when nothing can clobber it between the
    definition and the reuse.
    """

    def __init__(self, stats: LVNStats, can_reuse) -> None:
        self.stats = stats
        self.can_reuse = can_reuse
        #: expression key → defining SAssign
        self.available: dict[_Key, SAssign] = {}

    def invalidate_base(self, base: str) -> None:
        self.available = {
            key: d for key, d in self.available.items() if d.target != base
        }

    def rewrite(self, expr: IRExpr, is_root: bool = False) -> IRExpr:
        """Bottom-up replacement of available subexpressions."""
        if isinstance(expr, (EConst, EVar)):
            return expr
        if isinstance(expr, ECall):
            args = [self.rewrite(a) for a in expr.args]
            if all(n is o for n, o in zip(args, expr.args)):
                return expr
            return ECall(expr.func, args)
        if isinstance(expr, EUn):
            operand = self.rewrite(expr.operand)
            rebuilt = expr if operand is expr.operand else EUn(expr.op, operand)
            return self._lookup(rebuilt)
        if isinstance(expr, EBin):
            left = self.rewrite(expr.left)
            right = self.rewrite(expr.right)
            rebuilt = (
                expr
                if left is expr.left and right is expr.right
                else EBin(expr.op, left, right)
            )
            return self._lookup(rebuilt)
        return expr

    def _lookup(self, expr: IRExpr) -> IRExpr:
        key = _key_of(expr)
        if key is None:
            return expr
        source = self.available.get(key)
        if source is None:
            return expr
        self.stats.expressions_replaced += 1
        return EVar(source.target, source.version, source)

    def record(self, stmt: SAssign) -> None:
        key = _key_of(stmt.value)
        if key is None or key[0] in ("const", "var"):
            return  # reusing literals/copies buys nothing and risks
            # copy-propagation across versions (unsound after
            # destruction)
        if not self.can_reuse(stmt.target):
            return
        self.available.setdefault(key, stmt)


def local_value_numbering(
    program: ProgramIR,
    graph: Optional[FlowGraph] = None,
) -> LVNStats:
    """Run block-local value numbering on a CSSAME-form ``program``."""
    if graph is None:
        graph = build_flow_graph(program)
    stats = LVNStats()

    from repro.cfg.concurrency import may_happen_in_parallel
    from repro.cfg.conflicts import collect_access_sites

    sites = collect_access_sites(graph)

    def make_can_reuse(block):
        def can_reuse(base: str) -> bool:
            for site in sites.get(base, []):
                if site.is_real_def and may_happen_in_parallel(
                    block, graph.blocks[site.block_id]
                ):
                    return False
            return True

        return can_reuse

    for block in graph.blocks:
        if not block.stmts:
            continue
        stats.blocks_processed += 1
        table = _BlockTable(stats, make_can_reuse(block))
        for stmt in block.stmts:
            if isinstance(stmt, SAssign):
                stmt.value = table.rewrite(stmt.value, is_root=True)
                table.invalidate_base(stmt.target)
                table.record(stmt)
            elif isinstance(stmt, (SPrint, SCallStmt)):
                stmt.args = [table.rewrite(a) for a in stmt.args]
            elif isinstance(stmt, SBranch):
                stmt.cond = table.rewrite(stmt.cond)
            elif isinstance(stmt, (Phi, Pi)):
                target = stmt.def_name()
                if target is not None:
                    table.invalidate_base(target)
            # sync ops occupy their own nodes; nothing to do here
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "lvn",
            blocks_processed=stats.blocks_processed,
            replaced=stats.expressions_replaced,
        )
    return stats
