"""The optimization pipeline of the paper's running example.

Figures 2–5 walk one program through: CSSAME construction → constant
propagation (Fig. 4) → parallel dead code elimination (Fig. 5a) → lock
independent code motion (Fig. 5b).  :func:`optimize` packages exactly
that sequence, with ``use_mutex=False`` degrading the form to plain CSSA
so the two columns of each figure can be compared.

Pass-interaction contract: CSSAME is built **once**; every later pass
keeps the SSA chains consistent and rebuilds only the flow graph it
needs.  Version numbers therefore stay stable across passes, which is
why the listings come out with the same names the paper prints.
"""

from __future__ import annotations

from typing import Optional

from repro.cssame.builder import CSSAMEForm, build_cssame
from repro.ir.printer import format_ir
from repro.ir.structured import ProgramIR, count_statements
from repro.obs.events import PassEnd, PassStart
from repro.obs.trace import get_tracer
from repro.opt.concprop import ConstPropStats, concurrent_constant_propagation
from repro.opt.licm import LICMStats, lock_independent_code_motion
from repro.opt.lvn import LVNStats, local_value_numbering
from repro.opt.pdce import PDCEStats, parallel_dead_code_elimination
from repro.opt.simplify import simplify_structure

__all__ = ["OptimizationReport", "optimize"]

_ALL_PASSES = ("constprop", "lvn", "pdce", "licm")
#: default pipeline = the paper's Figures 4-5 sequence (lvn is opt-in)
_DEFAULT_PASSES = ("constprop", "pdce", "licm")


class OptimizationReport:
    """Everything one pipeline run produced."""

    def __init__(self, program: ProgramIR, form: CSSAMEForm) -> None:
        self.program = program
        self.form = form
        #: clone of the program in CSSA(ME) form, before any pass ran —
        #: the equality baseline for semantic verification (see
        #: repro.verify.equivalence's atomicity contract)
        self.baseline: Optional[ProgramIR] = None
        self.constprop: Optional[ConstPropStats] = None
        self.lvn: Optional[LVNStats] = None
        self.pdce: Optional[PDCEStats] = None
        self.licm: Optional[LICMStats] = None
        self.listings: dict[str, str] = {}
        #: True only while no transform has run since build_cssame, i.e.
        #: while ``form.graph`` still describes ``program`` exactly
        self.graph_is_fresh = True
        self.simplified_items = 0

    def listing(self, phase: str = "final") -> str:
        return self.listings[phase]

    def statement_count(self) -> int:
        return count_statements(self.program)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OptimizationReport(stmts={self.statement_count()}, "
            f"constprop={self.constprop}, pdce={self.pdce}, licm={self.licm})"
        )


def optimize(
    program: ProgramIR,
    passes: tuple[str, ...] = _DEFAULT_PASSES,
    use_mutex: bool = True,
    simplify: bool = True,
    fold_output_uses: bool = True,
) -> OptimizationReport:
    """Run the paper's pipeline on a *non-SSA* ``program``, in place.

    Parameters
    ----------
    passes:
        Subset (in order) of ``("constprop", "lvn", "pdce", "licm")``;
        the default is the paper's pipeline (value numbering is the
        Section 7 "translated scalar optimization" demo, opt-in).
    use_mutex:
        ``True`` builds the CSSAME form (Algorithm A.3 prunes π terms);
        ``False`` leaves plain CSSA — the paper's comparison baseline.
    simplify:
        Run the structural cleanup after the passes.
    """
    unknown = set(passes) - set(_ALL_PASSES)
    if unknown:
        raise ValueError(f"unknown passes: {sorted(unknown)}")

    tracer = get_tracer()
    with tracer.span(
        "optimize", passes=",".join(passes), use_mutex=use_mutex
    ) as pipeline_span:
        form = build_cssame(program, prune=use_mutex)
        report = OptimizationReport(program, form)
        from repro.ir.structured import clone_program

        report.baseline = clone_program(program)
        report.listings["cssa" if not use_mutex else "cssame"] = format_ir(program)

        for name in passes:
            if tracer.enabled:
                tracer.event(PassStart(name))
            with tracer.span(f"pass:{name}") as span:
                if name == "constprop":
                    # The freshly built graph gives exact edge-executability
                    # reasoning; after any transform it is stale and the
                    # pass must fall back to chain-only propagation.
                    graph = form.graph if report.graph_is_fresh else None
                    report.constprop = concurrent_constant_propagation(
                        program, graph, fold_output_uses=fold_output_uses
                    )
                    stats = {
                        "constants": len(report.constprop.constants),
                        "uses_replaced": report.constprop.uses_replaced,
                        "branches_folded": report.constprop.branches_folded,
                    }
                elif name == "lvn":
                    report.lvn = local_value_numbering(program)
                    stats = {"replaced": report.lvn.expressions_replaced}
                elif name == "pdce":
                    report.pdce = parallel_dead_code_elimination(program)
                    stats = {
                        "removed": report.pdce.total_removed,
                        "regions_removed": report.pdce.regions_removed,
                    }
                else:  # licm
                    report.licm = lock_independent_code_motion(program)
                    stats = {
                        "moved": report.licm.total_moved,
                        "locks_removed": report.licm.locks_removed,
                    }
                report.graph_is_fresh = False
                report.listings[name] = format_ir(program)
                span.set(**stats)
            if tracer.enabled:
                tracer.event(PassEnd(name, stats))

        if simplify:
            with tracer.span("simplify") as span:
                report.simplified_items = simplify_structure(program)
                span.set(items=report.simplified_items)
        report.listings["final"] = format_ir(program)
        pipeline_span.set(statements=report.statement_count())
    return report
