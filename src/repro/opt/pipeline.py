"""The optimization pipeline of the paper's running example.

Figures 2–5 walk one program through: CSSAME construction → constant
propagation (Fig. 4) → parallel dead code elimination (Fig. 5a) → lock
independent code motion (Fig. 5b).  :func:`optimize` packages exactly
that sequence, with ``use_mutex=False`` degrading the form to plain CSSA
so the two columns of each figure can be compared.

Pass-interaction contract: CSSAME is built **once**; every later pass
keeps the SSA chains consistent and rebuilds only the flow graph it
needs.  Version numbers therefore stay stable across passes, which is
why the listings come out with the same names the paper prints.
"""

from __future__ import annotations

from typing import Optional

from repro.cssame.builder import CSSAMEForm, build_cssame
from repro.ir.printer import format_ir
from repro.ir.structured import ProgramIR, count_statements
from repro.opt.concprop import ConstPropStats, concurrent_constant_propagation
from repro.opt.licm import LICMStats, lock_independent_code_motion
from repro.opt.lvn import LVNStats, local_value_numbering
from repro.opt.pdce import PDCEStats, parallel_dead_code_elimination
from repro.opt.simplify import simplify_structure

__all__ = ["OptimizationReport", "optimize"]

_ALL_PASSES = ("constprop", "lvn", "pdce", "licm")
#: default pipeline = the paper's Figures 4-5 sequence (lvn is opt-in)
_DEFAULT_PASSES = ("constprop", "pdce", "licm")


class OptimizationReport:
    """Everything one pipeline run produced."""

    def __init__(self, program: ProgramIR, form: CSSAMEForm) -> None:
        self.program = program
        self.form = form
        #: clone of the program in CSSA(ME) form, before any pass ran —
        #: the equality baseline for semantic verification (see
        #: repro.verify.equivalence's atomicity contract)
        self.baseline: Optional[ProgramIR] = None
        self.constprop: Optional[ConstPropStats] = None
        self.lvn: Optional[LVNStats] = None
        self.pdce: Optional[PDCEStats] = None
        self.licm: Optional[LICMStats] = None
        self.listings: dict[str, str] = {}
        self.simplified_items = 0

    def listing(self, phase: str = "final") -> str:
        return self.listings[phase]

    def statement_count(self) -> int:
        return count_statements(self.program)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OptimizationReport(stmts={self.statement_count()}, "
            f"constprop={self.constprop}, pdce={self.pdce}, licm={self.licm})"
        )


def optimize(
    program: ProgramIR,
    passes: tuple[str, ...] = _DEFAULT_PASSES,
    use_mutex: bool = True,
    simplify: bool = True,
    fold_output_uses: bool = True,
) -> OptimizationReport:
    """Run the paper's pipeline on a *non-SSA* ``program``, in place.

    Parameters
    ----------
    passes:
        Subset (in order) of ``("constprop", "lvn", "pdce", "licm")``;
        the default is the paper's pipeline (value numbering is the
        Section 7 "translated scalar optimization" demo, opt-in).
    use_mutex:
        ``True`` builds the CSSAME form (Algorithm A.3 prunes π terms);
        ``False`` leaves plain CSSA — the paper's comparison baseline.
    simplify:
        Run the structural cleanup after the passes.
    """
    unknown = set(passes) - set(_ALL_PASSES)
    if unknown:
        raise ValueError(f"unknown passes: {sorted(unknown)}")

    form = build_cssame(program, prune=use_mutex)
    report = OptimizationReport(program, form)
    from repro.ir.structured import clone_program

    report.baseline = clone_program(program)
    report.listings["cssa" if not use_mutex else "cssame"] = format_ir(program)

    for name in passes:
        if name == "constprop":
            # The freshly built graph is still valid here (no transform
            # has run yet), giving exact edge-executability reasoning.
            graph = form.graph if not report.listings.keys() - {"cssa", "cssame"} else None
            report.constprop = concurrent_constant_propagation(
                program, graph, fold_output_uses=fold_output_uses
            )
            report.listings["constprop"] = format_ir(program)
        elif name == "lvn":
            report.lvn = local_value_numbering(program)
            report.listings["lvn"] = format_ir(program)
        elif name == "pdce":
            report.pdce = parallel_dead_code_elimination(program)
            report.listings["pdce"] = format_ir(program)
        elif name == "licm":
            report.licm = lock_independent_code_motion(program)
            report.listings["licm"] = format_ir(program)

    if simplify:
        report.simplified_items = simplify_structure(program)
    report.listings["final"] = format_ir(program)
    return report
