"""Expression evaluation and folding over the constant lattice.

Integer semantics are C-like and *identical* to the VM's
(:mod:`repro.vm.machine`): truncating division/modulo, 0/1 comparisons
and logical operators, no short-circuit evaluation.  Division or modulo
by zero is a runtime error, so folding refuses to evaluate it
(``BOTTOM``) and leaves the fault to the execution that actually reaches
it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import VMError
from repro.ir.expr import EBin, ECall, EConst, EUn, EVar, IRExpr
from repro.opt.lattice import BOTTOM, TOP, ConstValue, LatticeValue

__all__ = ["apply_binop", "apply_unop", "eval_expr", "eval_expr_concrete"]


def c_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise VMError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a: int, b: int) -> int:
    """C-style remainder: ``a == c_div(a,b)*b + c_mod(a,b)``."""
    if b == 0:
        raise VMError("modulo by zero")
    return a - c_div(a, b) * b


_BINOPS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_mod,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}

_UNOPS: dict[str, Callable[[int], int]] = {
    "-": lambda a: -a,
    "!": lambda a: int(not a),
}


def apply_binop(op: str, a: int, b: int) -> int:
    """Concrete binary evaluation (shared with the VM)."""
    fn = _BINOPS.get(op)
    if fn is None:
        raise VMError(f"unknown binary operator {op!r}")
    return fn(a, b)


def apply_unop(op: str, a: int) -> int:
    """Concrete unary evaluation (shared with the VM)."""
    fn = _UNOPS.get(op)
    if fn is None:
        raise VMError(f"unknown unary operator {op!r}")
    return fn(a)


def eval_expr(
    expr: IRExpr,
    value_of_var: Callable[[EVar], LatticeValue],
) -> LatticeValue:
    """Abstract evaluation over the lattice.

    Any TOP operand makes the result TOP (optimistically awaiting more
    information); otherwise any BOTTOM operand makes it BOTTOM.  Calls
    are opaque: always BOTTOM.
    """
    if isinstance(expr, EConst):
        return ConstValue(expr.value)
    if isinstance(expr, EVar):
        return value_of_var(expr)
    if isinstance(expr, ECall):
        return BOTTOM
    if isinstance(expr, EUn):
        inner = eval_expr(expr.operand, value_of_var)
        if inner is TOP or inner is BOTTOM:
            return inner
        assert isinstance(inner, ConstValue)
        return ConstValue(apply_unop(expr.op, inner.value))
    if isinstance(expr, EBin):
        left = eval_expr(expr.left, value_of_var)
        right = eval_expr(expr.right, value_of_var)
        if left is TOP or right is TOP:
            return TOP
        if left is BOTTOM or right is BOTTOM:
            return BOTTOM
        assert isinstance(left, ConstValue) and isinstance(right, ConstValue)
        if expr.op in ("/", "%") and right.value == 0:
            return BOTTOM  # leave the fault for runtime
        return ConstValue(apply_binop(expr.op, left.value, right.value))
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover


def fold_expr(expr: IRExpr) -> IRExpr:
    """Structurally fold constant subexpressions.

    Rebuilds the tree bottom-up, collapsing operator nodes whose
    operands are all literals; division/modulo by a literal zero is left
    intact (it is a runtime fault, not a compile-time value).
    """
    if isinstance(expr, EUn):
        inner = fold_expr(expr.operand)
        if isinstance(inner, EConst):
            return EConst(apply_unop(expr.op, inner.value))
        return EUn(expr.op, inner) if inner is not expr.operand else expr
    if isinstance(expr, EBin):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if isinstance(left, EConst) and isinstance(right, EConst):
            if not (expr.op in ("/", "%") and right.value == 0):
                return EConst(apply_binop(expr.op, left.value, right.value))
        if left is expr.left and right is expr.right:
            return expr
        return EBin(expr.op, left, right)
    if isinstance(expr, ECall):
        args = [fold_expr(a) for a in expr.args]
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return ECall(expr.func, args)
    return expr


def eval_expr_concrete(
    expr: IRExpr,
    env: Callable[[str], int],
    call: Optional[Callable[[str, list[int]], int]] = None,
) -> int:
    """Concrete evaluation (used by the VM); ``env`` maps names to ints."""
    if isinstance(expr, EConst):
        return expr.value
    if isinstance(expr, EVar):
        return env(expr.name)
    if isinstance(expr, ECall):
        args = [eval_expr_concrete(a, env, call) for a in expr.args]
        if call is None:
            raise VMError(f"no binding for function {expr.func!r}")
        return call(expr.func, args)
    if isinstance(expr, EUn):
        return apply_unop(expr.op, eval_expr_concrete(expr.operand, env, call))
    if isinstance(expr, EBin):
        left = eval_expr_concrete(expr.left, env, call)
        right = eval_expr_concrete(expr.right, env, call)
        return apply_binop(expr.op, left, right)
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover
