"""The three-level constant-propagation lattice (Wegman–Zadeck).

``TOP`` — no evidence yet (optimistic); ``ConstValue(c)`` — provably the
integer ``c`` on every execution; ``BOTTOM`` — not a constant.

``meet`` is the lattice meet: ``TOP ∧ x = x``; two equal constants stay;
anything else collapses to ``BOTTOM``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

__all__ = ["BOTTOM", "TOP", "ConstValue", "LatticeValue", "meet", "meet_all"]


class _Top:
    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


class _Bottom:
    __slots__ = ()

    def __repr__(self) -> str:
        return "BOTTOM"


TOP = _Top()
BOTTOM = _Bottom()


class ConstValue:
    """A known integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstValue) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return f"Const({self.value})"


LatticeValue = Union[_Top, _Bottom, ConstValue]


def meet(a: LatticeValue, b: LatticeValue) -> LatticeValue:
    """Lattice meet of two values."""
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if isinstance(a, ConstValue) and isinstance(b, ConstValue):
        return a if a.value == b.value else BOTTOM
    raise TypeError(f"not lattice values: {a!r}, {b!r}")  # pragma: no cover


def meet_all(values: Iterable[LatticeValue]) -> LatticeValue:
    """Meet of a sequence (TOP when empty)."""
    result: LatticeValue = TOP
    for value in values:
        result = meet(result, value)
        if result is BOTTOM:
            return BOTTOM
    return result


def as_constant(value: LatticeValue) -> Optional[int]:
    """The integer if ``value`` is a constant, else ``None``."""
    if isinstance(value, ConstValue):
        return value.value
    return None
