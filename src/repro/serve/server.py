"""The asyncio compile server.

One :class:`CompileServer` owns:

* a shared, thread-safe :class:`~repro.session.session.Session` whose
  artifact cache is (optionally) a
  :class:`~repro.serve.store.PersistentStore`, so every request
  amortizes every previous request — across restarts;
* a bounded ``ThreadPoolExecutor`` of ``jobs`` workers that runs the
  actual stage computation (the pipeline is pure-Python CPU work; the
  event loop only parses frames and shuffles bytes);
* **backpressure**: at most ``queue_limit`` compile requests may be in
  flight; the next one is answered *immediately* with a typed
  ``E_OVERLOADED`` frame — the server never builds an unbounded queue
  and never silently stalls a client;
* **deadlines**: a compile request that exceeds ``deadline_ms`` gets a
  typed ``E_TIMEOUT`` frame.  The worker thread cannot be killed
  mid-computation, but its slot stays accounted until it finishes, so
  backpressure stays honest; a request still queued is cancelled
  outright;
* **cancellation**: when a client disconnects, its outstanding requests
  are cancelled (queued work is dropped; running work is abandoned and
  its result discarded);
* **graceful drain**: SIGTERM (or a ``shutdown`` request) stops
  accepting connections, answers new compile requests on existing
  connections with ``E_SHUTDOWN``, completes every in-flight request,
  then exits.  No request is ever dropped without a response frame.

Failure contract: *every* outcome of a request is a frame — a typed
result or a typed error.  A worker exception becomes an ``E_INTERNAL``
(or more specific taxonomy) frame, never a hung socket.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import signal
from typing import Callable, Optional

from repro._version import __version__
from repro.errors import (
    DeadlineExceeded,
    OverloadedError,
    ProtocolError,
    ShuttingDown,
    error_code,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)
from repro.serve.store import PersistentStore
from repro.session.session import Session

__all__ = ["CompileServer", "default_worker"]


def default_worker(
    session: Session, stage: str, source: str, options: dict
) -> dict:
    """Compute one compile request's wire payload (runs on a pool thread).

    Delegates to the typed facade, so a server response is bit-identical
    to the in-process ``api.compile_source(...).as_dict()``.
    """
    from repro import api

    return api.compile_source(source, stage, options, session=session).as_dict()


class CompileServer:
    """JSON-lines-over-TCP compile service over the Session stage graph.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (``self.port``
        holds the real one after :meth:`start`).
    jobs:
        Worker threads for stage computation (default: CPU count,
        capped at 8).
    store_dir:
        Directory for the persistent artifact store; ``None`` keeps the
        cache in memory only (it then dies with the process).
    deadline_ms:
        Per-request stage deadline; ``None`` disables deadlines.
    queue_limit:
        In-flight compile-request cap (default ``4 × jobs``); beyond it
        requests are refused with ``E_OVERLOADED``.
    max_entries:
        Memory-tier LRU bound of the artifact cache.
    session, worker:
        Injection points for tests: a pre-built session, and/or a
        replacement for :func:`default_worker` (fault injection).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        jobs: Optional[int] = None,
        store_dir: Optional[str] = None,
        deadline_ms: Optional[float] = 30_000.0,
        queue_limit: Optional[int] = None,
        max_entries: Optional[int] = None,
        session: Optional[Session] = None,
        worker: Optional[Callable[[Session, str, str, dict], dict]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = jobs if jobs is not None else min(8, os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.deadline_ms = deadline_ms
        self.queue_limit = (
            queue_limit if queue_limit is not None else 4 * self.jobs
        )
        self.store: Optional[PersistentStore] = None
        if session is not None:
            self.session = session
            if isinstance(session.cache, PersistentStore):
                self.store = session.cache
        else:
            if store_dir is not None:
                self.store = PersistentStore(store_dir, max_entries=max_entries)
                self.session = Session(cache=self.store)
            else:
                self.session = Session(max_entries=max_entries)
        self.worker = worker if worker is not None else default_worker
        self.metrics = MetricsRegistry()

        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight = 0
        self._request_tasks: set = set()
        self._writers: set = set()
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the (host, port) bound."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._started_at = self._loop.time()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES + 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def run_async(
        self, ready: Optional[Callable[[str, int], None]] = None
    ) -> None:
        """Start, install signal handlers, and serve until drained."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signal support
        if ready is not None:
            ready(self.host, self.port)
        await self._drained.wait()

    def run(self, ready: Optional[Callable[[str, int], None]] = None) -> int:
        """Blocking entry point (what ``repro serve`` calls)."""
        asyncio.run(self.run_async(ready))
        return 0

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; callable from the loop)."""
        if self._loop is None:
            return
        asyncio.ensure_future(self.drain())

    def request_drain_threadsafe(self) -> None:
        """Begin a graceful drain from any thread (test harnesses)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_drain)

    async def drain(self) -> None:
        """Stop accepting, finish in-flight requests, release resources."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight requests run to completion and get their frames.
        while self._request_tasks:
            await asyncio.gather(
                *list(self._request_tasks), return_exceptions=True
            )
        # Abandoned (timed-out) workers may still be running; don't wait
        # on them — their results are already discarded.
        self._executor.shutdown(wait=False, cancel_futures=True)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass
        self._drained.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        own_tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break  # client closed its end
                task = asyncio.create_task(self._handle_line(line, writer))
                for book in (own_tasks, self._request_tasks):
                    book.add(task)
                    task.add_done_callback(book.discard)
        finally:
            # Client gone: cancel whatever it was still waiting for.
            for task in list(own_tasks):
                task.cancel()
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already reset
                pass

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        try:
            writer.write(encode_frame(frame))
            await writer.drain()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass  # client vanished between compute and reply

    def _count(self, ok: bool, exc: Optional[BaseException] = None) -> None:
        self.metrics.counter("serve.requests").inc()
        if ok:
            self.metrics.counter("serve.ok").inc()
        else:
            code = error_code(exc) if exc is not None else "E_INTERNAL"
            self.metrics.counter(f"serve.errors.{code}").inc()

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        t0 = self._loop.time()
        request_id = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            request = validate_request(frame)
        except ProtocolError as exc:
            self._count(ok=False, exc=exc)
            await self._send(writer, error_response(request_id, exc))
            return

        kind = request["kind"]
        if kind == "ping":
            self._count(ok=True)
            await self._send(
                writer,
                ok_response(
                    request_id,
                    {"pong": True, "version": __version__},
                    (self._loop.time() - t0) * 1e3,
                ),
            )
        elif kind == "ops":
            self._count(ok=True)
            await self._send(
                writer,
                ok_response(
                    request_id,
                    self.ops_payload(),
                    (self._loop.time() - t0) * 1e3,
                ),
            )
        elif kind == "shutdown":
            self._count(ok=True)
            await self._send(
                writer,
                ok_response(
                    request_id,
                    {"draining": True},
                    (self._loop.time() - t0) * 1e3,
                ),
            )
            self.request_drain()
        else:
            await self._handle_compile(request, writer, t0)

    async def _handle_compile(
        self, request: dict, writer: asyncio.StreamWriter, t0: float
    ) -> None:
        request_id = request["id"]
        stage = request["stage"]
        if self._draining:
            exc = ShuttingDown()
            self._count(ok=False, exc=exc)
            await self._send(writer, error_response(request_id, exc))
            return
        if self._inflight >= self.queue_limit:
            exc = OverloadedError(self._inflight, self.queue_limit)
            self._count(ok=False, exc=exc)
            await self._send(writer, error_response(request_id, exc))
            return

        self._inflight += 1
        future = self._loop.run_in_executor(
            self._executor,
            self.worker,
            self.session,
            stage,
            request["source"],
            request["options"],
        )
        future.add_done_callback(self._work_finished)
        timeout = None if self.deadline_ms is None else self.deadline_ms / 1e3
        try:
            payload = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            future.cancel()  # drops it if still queued; else abandons
            exc = DeadlineExceeded(stage, self.deadline_ms)
            self._count(ok=False, exc=exc)
            await self._send(
                writer,
                error_response(
                    request_id, exc, (self._loop.time() - t0) * 1e3
                ),
            )
            return
        except asyncio.CancelledError:
            future.cancel()
            raise
        except Exception as exc:  # worker raised: typed frame, not a hang
            self._count(ok=False, exc=exc)
            await self._send(
                writer,
                error_response(
                    request_id, exc, (self._loop.time() - t0) * 1e3
                ),
            )
            return
        elapsed_ms = (self._loop.time() - t0) * 1e3
        self._count(ok=True)
        self.metrics.histogram(f"serve.stage.{stage}.ms").observe(elapsed_ms)
        await self._send(writer, ok_response(request_id, payload, elapsed_ms))

    def _work_finished(self, future) -> None:
        """Executor-future bookkeeping (runs on the event loop)."""
        self._inflight -= 1
        if not future.cancelled():
            future.exception()  # consume, so abandoned failures don't warn

    # -- health / metrics ----------------------------------------------------

    def ops_payload(self) -> dict:
        """The ``ops`` response: health, queue, cache, store, latencies."""
        counters = self.metrics.counters
        errors = {
            name[len("serve.errors."):]: counter.value
            for name, counter in sorted(counters.items())
            if name.startswith("serve.errors.")
        }
        stages = {}
        prefix, suffix = "serve.stage.", ".ms"
        for name, hist in sorted(self.metrics.histograms.items()):
            if name.startswith(prefix) and name.endswith(suffix):
                summary = hist.summary()
                stages[name[len(prefix):-len(suffix)]] = {
                    "count": summary["count"],
                    "mean_ms": round(summary["mean"], 3),
                    "p50_ms": round(summary["p50"], 3),
                    "p90_ms": round(summary["p90"], 3),
                    "p99_ms": round(summary["p99"], 3),
                    "max_ms": round(summary["max"], 3),
                }
        uptime_ms = 0.0
        if self._loop is not None:
            uptime_ms = (self._loop.time() - self._started_at) * 1e3
        total = counters["serve.requests"].value if "serve.requests" in counters else 0
        ok = counters["serve.ok"].value if "serve.ok" in counters else 0
        return {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_ms": round(uptime_ms, 3),
            "jobs": self.jobs,
            "queue_depth": self._inflight,
            "queue_limit": self.queue_limit,
            "draining": self._draining,
            "deadline_ms": self.deadline_ms,
            "requests": {"total": total, "ok": ok, "errors": errors},
            "cache": self.session.cache_stats().as_dict(),
            "store": (
                self.store.store_stats.as_dict()
                if self.store is not None
                else None
            ),
            "stages": stages,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CompileServer({self.host}:{self.port}, jobs={self.jobs}, "
            f"inflight={self._inflight}, draining={self._draining})"
        )
