"""repro.serve — the resilient compile service.

A long-lived daemon that fronts the :class:`~repro.session.session.Session`
stage graph over a JSON-lines-over-TCP protocol (stdlib only):

* :mod:`repro.serve.store` — a persistent, content-addressed artifact
  store layered under the in-memory LRU, so a restarted server answers
  warm from disk;
* :mod:`repro.serve.protocol` — the wire frames (requests, typed
  results, machine-readable error frames);
* :mod:`repro.serve.server` — the asyncio server: bounded worker pool,
  queue-depth backpressure, per-request deadlines, graceful drain on
  SIGTERM, and an ``ops`` endpoint for health/metrics;
* :mod:`repro.serve.client` — a blocking client with jittered
  exponential-backoff retries (requests are idempotent by construction:
  they are keyed by source hash).

Quickstart::

    repro serve --port 7411 --store .repro-store &
    repro request program.par --stage diagnostics --json

or programmatically::

    from repro.serve import CompileServer, ServeClient

    server = CompileServer(port=0, store_dir=".repro-store")
    # server.run() blocks; see tests/serve/conftest.py for the
    # background-thread harness pattern.

    with ServeClient(port=server.port) as client:
        result = client.compile(source, stage="diagnostics")
        print(result.clean, result.provenance.cache_hits)
"""

from repro.serve.client import RetryPolicy, ServeClient
from repro.serve.protocol import DEFAULT_PORT, PROTOCOL_VERSION
from repro.serve.server import CompileServer
from repro.serve.store import PersistentStore, StoreStats

__all__ = [
    "CompileServer",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "PersistentStore",
    "RetryPolicy",
    "ServeClient",
    "StoreStats",
]
