"""Persistent, content-addressed artifact store.

:class:`PersistentStore` layers a disk tier under the in-memory LRU of
:class:`~repro.session.artifacts.ArtifactCache`:

* every ``put`` lands in memory **and** is spilled to disk as a
  checksummed pickle, written atomically (temp file + ``os.replace``)
  so readers never observe a half-written artifact;
* a ``get`` that misses memory tries the disk tier; a load re-warms the
  memory LRU, so hot keys pay the disk cost once per process;
* a file that is truncated, tampered with, or unpicklable is treated
  as a **miss, never an error**: the store unlinks it, counts a
  corruption, and the session recomputes the artifact — corruption
  costs latency, not availability.

Keys already fold in the package version and each stage's option
schema (:mod:`repro.session.artifacts`), so artifacts persisted by an
older release are simply never addressed again — no migration, no
compatibility window, no stale answers.

The disk layout is two-level: ``root/<key[:2]>/<key>.art``, the usual
fan-out trick so no directory grows unboundedly.  File format::

    RPROART1\\n<sha256-hex-of-payload>\\n<pickled payload>

Spill failures (unpicklable artifact, disk full, permission trouble)
degrade the store to memory-only for that artifact and count an
``errors`` stat — the compile service never fails a request because
the cache could not persist it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Optional

from repro.session.artifacts import ArtifactCache

__all__ = ["PersistentStore", "StoreStats"]

_MAGIC = b"RPROART1"


@dataclass
class StoreStats:
    """Disk-tier accounting (the memory tier keeps its own CacheStats)."""

    spills: int = 0
    spill_bytes: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    corruptions: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "spills": self.spills,
            "spill_bytes": self.spill_bytes,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "corruptions": self.corruptions,
            "errors": self.errors,
        }


class PersistentStore(ArtifactCache):
    """An :class:`ArtifactCache` with a content-addressed disk tier.

    Drop-in for ``Session(cache=...)``: the session sees one ``get`` /
    ``put`` surface and one hit/miss accounting; whether a hit was
    served from memory or disk shows up in :attr:`store_stats`.
    """

    def __init__(self, root: str, max_entries: Optional[int] = None) -> None:
        super().__init__(max_entries=max_entries)
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.store_stats = StoreStats()

    # -- layered lookup ------------------------------------------------------

    def get(self, key: str, stage: str) -> Any:
        value = self.peek(key)
        if value is self._MISSING:
            value = self._load(key)
            if value is not self._MISSING:
                self.store_stats.disk_hits += 1
                # Re-warm the memory tier without re-spilling.
                ArtifactCache.put(self, key, value)
            else:
                self.store_stats.disk_misses += 1
        self.record(stage, hit=value is not self._MISSING)
        return value

    def put(self, key: str, value: Any) -> None:
        ArtifactCache.put(self, key, value)
        self._spill(key, value)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` unlink the files too."""
        super().clear()
        if disk:
            for path in self._artifact_paths():
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- disk tier -----------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.art")

    def _artifact_paths(self) -> list[str]:
        paths = []
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".art"):
                    paths.append(os.path.join(dirpath, name))
        return sorted(paths)

    def __contains__(self, key: str) -> bool:
        """True when ``key`` is resident in either tier (no load)."""
        return self.peek(key) is not self._MISSING or os.path.exists(
            self._path(key)
        )

    def persisted_count(self) -> int:
        """Number of artifacts currently on disk."""
        return len(self._artifact_paths())

    def _spill(self, key: str, value: Any) -> None:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable artifact: memory-only for this key.
            self.store_stats.errors += 1
            return
        path = self._path(key)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            digest = hashlib.sha256(payload).hexdigest().encode("ascii")
            # Atomic publish: a reader either sees the complete file or
            # no file — never a prefix.  The temp file lives in the
            # same directory so os.replace stays a same-filesystem
            # rename.
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_MAGIC + b"\n" + digest + b"\n" + payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.store_stats.errors += 1
            return
        self.store_stats.spills += 1
        self.store_stats.spill_bytes += len(payload)

    def _load(self, key: str) -> Any:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return self._MISSING
        try:
            magic, digest, payload = blob.split(b"\n", 2)
            if magic != _MAGIC:
                raise ValueError("bad magic")
            if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
                raise ValueError("checksum mismatch")
            return pickle.loads(payload)
        except Exception:
            # Corruption → recompute, not crash: unlink the bad file so
            # the next spill rewrites it cleanly.
            self.store_stats.corruptions += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return self._MISSING

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PersistentStore(root={self.root!r}, entries={len(self)}, "
            f"disk={self.persisted_count()})"
        )
