"""Blocking client for the compile service, with a typed retry policy.

Requests are **idempotent by construction** — a compile request is
keyed by its source hash, stage, and options, so replaying one can at
worst warm the server's cache twice.  The client therefore retries
freely on the two transient failure shapes:

* a typed ``E_OVERLOADED`` (or ``E_SHUTDOWN``) error frame — the
  server is alive but refusing work right now;
* a connection-level failure (refused, reset, EOF mid-frame) — the
  server is restarting or the network hiccuped.

Backoff is exponential with full jitter (``delay × (1 + jitter·U)``,
doubling per attempt, capped), the standard shape that avoids
synchronized retry stampedes.  Both the RNG and the sleep function are
injectable so the fault-injection tests run deterministically and
instantly.

Definite errors — ``E_PARSE``, ``E_UNSUPPORTED``, ``E_TIMEOUT``,
``E_INTERNAL``, ... — are *not* retried; they surface immediately as
:class:`~repro.errors.RemoteError` carrying the server's taxonomy code
verbatim.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.errors import E_OVERLOADED, E_SHUTDOWN, ProtocolError, RemoteError
from repro.results import CompileResult, result_from_dict
from repro.serve.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
)

__all__ = ["RetryPolicy", "ServeClient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient failures."""

    #: total attempts (1 = no retries)
    attempts: int = 5
    #: first backoff delay, seconds
    base_delay: float = 0.05
    #: growth factor per retry
    multiplier: float = 2.0
    #: backoff ceiling, seconds
    max_delay: float = 2.0
    #: fraction of the delay added as uniform random jitter
    jitter: float = 0.5
    #: taxonomy codes worth retrying (server alive, refusing for now)
    retry_codes: tuple = (E_OVERLOADED, E_SHUTDOWN)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        return raw * (1.0 + self.jitter * rng.random())


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.CompileServer`.

    The connection is opened lazily and re-opened per retry attempt
    when it breaks.  Not thread-safe: give each thread its own client
    (the stress tests do exactly that).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
        self._sock = None
        self._file = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call_once(self, frame: Mapping[str, Any]) -> dict:
        """One request/response round trip on the current connection."""
        self._connect()
        self._sock.sendall(encode_frame(frame))
        line = self._file.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        response = decode_frame(line)
        if "ok" not in response:
            raise ProtocolError(f"response frame without 'ok': {response!r}")
        return response

    def call(self, frame: Mapping[str, Any]) -> dict:
        """Send one frame, retrying per the policy; returns the response.

        Connection failures and retryable error frames back off and
        retry.  Once attempts are exhausted the last response frame is
        returned (so callers always see the typed error); the call only
        *raises* when no response was ever received.
        """
        last_exc: Optional[Exception] = None
        response: Optional[dict] = None
        for attempt in range(1, self.retry.attempts + 1):
            try:
                response = self._call_once(frame)
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.close()
                last_exc = exc
                response = None
            else:
                error = None if response.get("ok") else response.get("error", {})
                if error is None or error.get("code") not in self.retry.retry_codes:
                    return response
            if attempt < self.retry.attempts:
                self._sleep(self.retry.delay(attempt, self._rng))
        if response is not None:
            return response
        assert last_exc is not None
        raise last_exc

    def _request_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    # -- the protocol surface ------------------------------------------------

    def request(
        self,
        source: str,
        stage: str = "diagnostics",
        options: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        """Raw compile request; returns the full response frame."""
        return self.call(
            {
                "v": PROTOCOL_VERSION,
                "id": self._request_id(),
                "kind": "compile",
                "source": source,
                "stage": stage,
                "options": dict(options or {}),
            }
        )

    def compile(
        self,
        source: str,
        stage: str = "diagnostics",
        options: Optional[Mapping[str, Any]] = None,
    ) -> CompileResult:
        """Typed compile: a result dataclass, or :class:`RemoteError`."""
        response = self.request(source, stage, options)
        if not response["ok"]:
            error = response["error"]
            raise RemoteError(
                error["code"],
                error["message"],
                {k: v for k, v in error.items() if k not in ("code", "message")},
            )
        return result_from_dict(response["result"])

    def ops(self) -> dict:
        """Server health/metrics (raises :class:`RemoteError` on failure)."""
        response = self.call(
            {"v": PROTOCOL_VERSION, "id": self._request_id(), "kind": "ops"}
        )
        if not response["ok"]:
            error = response["error"]
            raise RemoteError(error["code"], error["message"])
        return response["result"]

    def ping(self) -> dict:
        response = self.call(
            {"v": PROTOCOL_VERSION, "id": self._request_id(), "kind": "ping"}
        )
        if not response["ok"]:
            error = response["error"]
            raise RemoteError(error["code"], error["message"])
        return response["result"]

    def shutdown(self) -> dict:
        """Ask the server to drain gracefully (same path as SIGTERM)."""
        response = self.call(
            {
                "v": PROTOCOL_VERSION,
                "id": self._request_id(),
                "kind": "shutdown",
            }
        )
        if not response["ok"]:
            error = response["error"]
            raise RemoteError(error["code"], error["message"])
        return response["result"]
