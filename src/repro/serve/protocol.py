"""The wire protocol: JSON lines over TCP.

Every frame — request or response — is one JSON object on one line,
UTF-8, ``\\n``-terminated.  Connections are persistent: a client may
send any number of requests; the server may answer out of order, so
every frame carries the client-chosen ``id`` for correlation.

Request frames::

    {"v": 1, "id": "r1", "kind": "compile",
     "stage": "diagnostics", "source": "...", "options": {...}}
    {"v": 1, "id": "r2", "kind": "ops"}
    {"v": 1, "id": "r3", "kind": "ping"}
    {"v": 1, "id": "r4", "kind": "shutdown"}

``stage`` is one of :data:`repro.api.SERVE_STAGES`; ``options`` is
validated against that stage's schema.  ``ops`` returns server
health/metrics, ``ping`` is a liveness probe, ``shutdown`` asks the
server to drain gracefully (same path as SIGTERM).

Response frames::

    {"v": 1, "id": "r1", "ok": true,  "result": {...}, "elapsed_ms": 3.2}
    {"v": 1, "id": "r1", "ok": false, "error": {"code": "E_TIMEOUT",
                                                "type": "DeadlineExceeded",
                                                "message": "..."}}

``result`` of a compile response is exactly
``repro.results.CompileResult.as_dict()`` — bit-identical to what the
in-process facade returns for the same source/stage/options.  ``error``
is :func:`repro.errors.error_frame`: the ``code`` is always one of the
documented taxonomy codes, so clients never parse prose.

Malformed frames raise :class:`~repro.errors.ProtocolError`
(``E_PROTOCOL``); the server answers them with an error frame instead
of dropping the connection, unless the line is not even JSON-decodable
text, in which case it answers once and closes.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.errors import ProtocolError, error_frame

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_KINDS",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "validate_request",
]

PROTOCOL_VERSION = 1

#: the registered-ish default port of ``repro serve``
DEFAULT_PORT = 7411

#: hard cap on one frame (sources are small; 32 MiB is generous)
MAX_FRAME_BYTES = 32 * 1024 * 1024

REQUEST_KINDS = ("compile", "ops", "ping", "shutdown")


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One JSON object, one line.  Deterministic (sorted keys)."""
    return json.dumps(frame, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` when the line is not a JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def validate_request(frame: Mapping[str, Any]) -> dict:
    """Check a decoded frame is a well-formed request.

    Returns a normalised copy (defaults filled in).  Stage/option
    validation happens later, against :data:`repro.api.SERVE_STAGES`,
    so unsupported stages get ``E_UNSUPPORTED`` rather than
    ``E_PROTOCOL``.
    """
    version = frame.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    kind = frame.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r} (expected one of {REQUEST_KINDS})"
        )
    request_id = frame.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("request id must be a string or integer")
    request = {"v": PROTOCOL_VERSION, "id": request_id, "kind": kind}
    if kind == "compile":
        source = frame.get("source")
        if not isinstance(source, str):
            raise ProtocolError("compile request needs a string 'source'")
        stage = frame.get("stage", "diagnostics")
        if not isinstance(stage, str):
            raise ProtocolError("compile 'stage' must be a string")
        options = frame.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError("compile 'options' must be an object")
        request.update(source=source, stage=stage, options=options)
    return request


def ok_response(
    request_id: Any, result: Mapping[str, Any], elapsed_ms: float
) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": dict(result),
        "elapsed_ms": round(elapsed_ms, 3),
    }


def error_response(
    request_id: Any,
    exc: BaseException,
    elapsed_ms: Optional[float] = None,
) -> dict:
    frame = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error_frame(exc),
    }
    if elapsed_ms is not None:
        frame["elapsed_ms"] = round(elapsed_ms, 3)
    return frame
