"""Event-ordering π pruning (the Lee et al. substrate, Section 3.1).

The paper inherits event (``set``/``wait``) synchronization handling
from Lee, Midkiff and Padua and contributes the mutex side; this module
implements the sound core of the event side so the PFG's directed sync
edges actually feed the analysis:

    A π conflict argument ``d`` can be removed when the protected use
    **must complete before ``d`` can execute** — then no execution lets
    the definition reach the use.

"Must happen before" is derived from the guaranteed-ordering structure:

* within a thread of control, a block that dominates another precedes
  it on every execution;
* a ``wait(e)`` node cannot proceed until some ``set(e)`` has executed;
  so if *every* ``set(e)`` in the program is preceded (recursively, by
  this same relation) by block ``A``, then ``A`` precedes everything
  dominated by the ``wait``.

The relation is evaluated with memoized recursion over the (finite)
event set; it is conservative — ``False`` is always safe.

Contrast with the mutex theorems: those prune arguments that *reach*
but are *killed*; this prunes arguments that can never execute early
enough at all.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.blocks import NodeKind
from repro.cfg.dominance import DominatorTree, compute_dominators
from repro.cfg.graph import FlowGraph
from repro.ir.stmts import Pi, SAssign
from repro.ir.structured import ProgramIR, iter_statements, remove_stmt
from repro.ssa.chains import build_use_map

__all__ = ["EventOrdering", "OrderingStats", "prune_pi_terms_by_ordering"]


class OrderingStats:
    """What event-ordering pruning accomplished."""

    __slots__ = ("args_removed", "pis_deleted")

    def __init__(self) -> None:
        self.args_removed = 0
        self.pis_deleted = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OrderingStats(args_removed={self.args_removed}, "
            f"pis_deleted={self.pis_deleted})"
        )


class EventOrdering:
    """Must-happen-before queries over PFG blocks."""

    def __init__(self, graph: FlowGraph, domtree: Optional[DominatorTree] = None) -> None:
        self.graph = graph
        self.domtree = domtree or compute_dominators(graph)
        #: event name → list of SET block ids
        self.set_nodes: dict[str, list[int]] = {}
        #: event name → list of WAIT block ids
        self.wait_nodes: dict[str, list[int]] = {}
        for block in graph.nodes_of_kind(NodeKind.SET):
            self.set_nodes.setdefault(block.stmts[0].event_name, []).append(block.id)
        for block in graph.nodes_of_kind(NodeKind.WAIT):
            self.wait_nodes.setdefault(block.stmts[0].event_name, []).append(block.id)
        #: one-shot barrier name → list of its block ids.  A barrier
        #: contributes ordering only when every occurrence executes at
        #: most once (no occurrence sits in a CFG cycle) and each
        #: participating thread mentions it exactly once — then "a
        #: precedes some arrival" implies "a precedes every release".
        self.barrier_nodes: dict[str, list[int]] = {}
        candidates: dict[str, list[int]] = {}
        for block in graph.nodes_of_kind(NodeKind.BARRIER):
            candidates.setdefault(
                block.stmts[0].barrier_name, []
            ).append(block.id)
        for name, blocks in candidates.items():
            threads = [graph.blocks[b].thread_path for b in blocks]
            if len(set(threads)) != len(threads):
                continue  # a thread mentions it twice: phases ambiguous
            if any(self._in_cycle(b) for b in blocks):
                continue  # cyclic barrier: arrivals repeat
            self.barrier_nodes[name] = blocks
        self._memo: dict[tuple[int, int], bool] = {}

    def _in_cycle(self, block_id: int) -> bool:
        """Can this block reach itself along control edges?"""
        stack = list(self.graph.blocks[block_id].succs)
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == block_id:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.graph.blocks[node].succs)
        return False

    def must_precede(self, a: int, b: int) -> bool:
        """True when block ``a`` always finishes before block ``b``
        starts, on every execution that runs both."""
        return self._query(a, b, frozenset())

    def _query(self, a: int, b: int, active: frozenset) -> bool:
        if a == b:
            return False
        key = (a, b)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in active:
            return False  # break cycles conservatively
        active = active | {key}

        result = False
        if self.domtree.dominates(a, b):
            # Every control path to b passes through (and completes) a.
            result = True
        if not result:
            # a ≤ set(e) for every set of e, and some wait(e) ≤ b.
            for event, sets in self.set_nodes.items():
                waits = self.wait_nodes.get(event, [])
                if not waits or not sets:
                    continue
                if not all(
                    s != a and self._query(a, s, active) for s in sets
                ):
                    continue
                if any(self._wait_guards(w, b) for w in waits):
                    result = True
                    break
        if not result:
            # One-shot barrier: a precedes some arrival → a precedes
            # every release; b strictly after some barrier node.
            for _name, nodes in self.barrier_nodes.items():
                before_arrival = any(
                    n == a or self._query(a, n, active) for n in nodes
                )
                if not before_arrival:
                    continue
                if any(
                    n != b and self.domtree.strictly_dominates(n, b)
                    for n in nodes
                ):
                    result = True
                    break
        # Memoize only completed (non-cycle-guarded) queries from the
        # top level; nested guarded queries stay unmemoized for safety.
        if not (active - {key}):
            self._memo[key] = result
        return result

    def _wait_guards(self, wait_block: int, b: int) -> bool:
        return wait_block == b or self.domtree.dominates(wait_block, b)


def prune_pi_terms_by_ordering(
    program: ProgramIR,
    graph: FlowGraph,
    domtree: Optional[DominatorTree] = None,
) -> OrderingStats:
    """Remove π conflict arguments whose definition must execute after
    the protected use; delete π terms reduced to their control argument."""
    stats = OrderingStats()
    ordering = EventOrdering(graph, domtree)
    if not ordering.set_nodes or not ordering.wait_nodes:
        return stats  # no events, nothing to do

    pis = [s for s, _ in iter_statements(program) if isinstance(s, Pi)]
    args_examined = 0
    for pi in pis:
        if not graph.contains_stmt(pi):
            continue
        use_block = graph.block_of(pi).id
        kept = []
        for arg in pi.conflicts:
            args_examined += 1
            site = arg.def_site
            if isinstance(site, SAssign) and graph.contains_stmt(site):
                def_block = graph.block_of(site).id
                if ordering.must_precede(use_block, def_block):
                    stats.args_removed += 1
                    continue
            kept.append(arg)
        pi.conflicts = kept

    reduced = [pi for pi in pis if not pi.conflicts and pi.parent is not None]
    if reduced:
        usemap = build_use_map(program)
        for pi in reduced:
            control = pi.control
            for use, _holder in usemap.uses_of(pi):
                use.name = control.name
                use.version = control.version
                use.def_site = control.def_site
            remove_stmt(pi)
            block = graph.block_of(pi)
            for i, existing in enumerate(block.stmts):
                if existing is pi:
                    block.stmts.pop(i)
                    break
            stats.pis_deleted += 1
        graph.reindex_statements()
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "ordering",
            pi_terms=len(pis),
            args_examined=args_examined,
            args_removed=stats.args_removed,
            pis_deleted=stats.pis_deleted,
        )
    return stats
