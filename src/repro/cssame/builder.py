"""Algorithm A.2 — the full CSSAME pipeline.

1. Build the PFG (extended CFG construction).
2. Identify mutex structures (Algorithm A.1).
3. Compute the CSSA form (sequential SSA + π placement).
4. Rewrite π terms using the mutex structures (Algorithm A.3).

``build_cssame(program, prune=False)`` stops after step 3, yielding the
plain CSSA form used as the comparison baseline throughout the paper's
figures.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.dominance import compute_postdominators
from repro.cssa.builder import CSSAForm, build_cssa
from repro.cssame.ordering import OrderingStats, prune_pi_terms_by_ordering
from repro.cssame.rewrite import RewriteStats, rewrite_pi_terms
from repro.ir.structured import ProgramIR
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.structures import MutexStructure
from repro.obs.trace import get_tracer

__all__ = ["CSSAMEForm", "build_cssame"]


class CSSAMEForm(CSSAForm):
    """A :class:`~repro.cssa.builder.CSSAForm` plus mutex information.

    Attributes
    ----------
    structures:
        Lock name → :class:`~repro.mutex.structures.MutexStructure`.
    rewrite_stats:
        What Algorithm A.3 removed (``None`` when ``prune=False``).
    """

    def __init__(
        self,
        cssa: CSSAForm,
        structures: dict[str, MutexStructure],
        rewrite_stats: Optional[RewriteStats],
        ordering_stats: Optional[OrderingStats] = None,
    ) -> None:
        super().__init__(cssa.program, cssa.graph, cssa.ssa, cssa.pis, cssa.shared)
        self.structures = structures
        self.rewrite_stats = rewrite_stats
        #: event-ordering pruning results (None when prune_events=False)
        self.ordering_stats = ordering_stats

    def mutex_bodies(self) -> list:
        return [body for s in self.structures.values() for body in s.bodies]


def build_cssame(
    program: ProgramIR,
    prune: bool = True,
    prune_events: bool = True,
) -> CSSAMEForm:
    """Convert a non-SSA ``program`` (in place) to CSSAME form.

    With ``prune=False`` the π terms are left untouched (plain CSSA,
    the baseline the paper compares against in Figures 3–4); in that
    mode event-ordering pruning is skipped too.  ``prune_events``
    controls the inherited Lee-et-al. guaranteed-ordering refinement
    (π arguments whose definition must execute after the use).
    """
    tracer = get_tracer()
    with tracer.span("build-cssame", prune=prune) as outer:
        with tracer.span("cssa"):
            cssa = build_cssa(program)
        with tracer.span("identify-mutex") as sp:
            pdomtree = compute_postdominators(cssa.graph)
            structures = identify_mutex_structures(
                cssa.graph, cssa.ssa.domtree, pdomtree
            )
            sp.set(
                structures=len(structures),
                bodies=sum(len(s) for s in structures.values()),
            )
        stats: Optional[RewriteStats] = None
        ordering_stats: Optional[OrderingStats] = None
        if prune:
            with tracer.span("rewrite-pi") as sp:
                stats = rewrite_pi_terms(program, cssa.graph, structures)
                sp.set(
                    args_removed=stats.args_removed,
                    pis_deleted=stats.pis_deleted,
                )
            if prune_events:
                with tracer.span("ordering") as sp:
                    ordering_stats = prune_pi_terms_by_ordering(
                        program, cssa.graph, cssa.ssa.domtree
                    )
                    sp.set(
                        args_removed=ordering_stats.args_removed,
                        pis_deleted=ordering_stats.pis_deleted,
                    )
        form = CSSAMEForm(cssa, structures, stats, ordering_stats)
        outer.set(mutex_bodies=len(form.mutex_bodies()))
    return form
