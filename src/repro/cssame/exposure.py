"""Intra-mutex-body path analyses for Theorems 1 and 2.

Both theorems reason about def-free control paths *inside one mutex
body*:

* **Theorem 2** needs to know whether a use of ``v`` is *upward-exposed*
  from its body ``B_L(n, x)`` — is there a control path from the Lock
  node ``n`` to the use along which ``v`` is never defined?  If not,
  every execution of the body overwrites ``v`` before the use, so no
  definition from another body of the same structure can reach it.
* **Theorem 1** needs to know whether a definition of ``v`` *reaches the
  exit node* ``x`` of its body — is there a control path from the
  definition to the Unlock along which ``v`` is not redefined?  If not,
  the definition is always killed inside the body and can never be seen
  by any other body of the same structure.

Only *real* definitions (plain assignments) generate or kill values; φ
and π terms are bookkeeping.  Positions are statement-precise within
blocks.
"""

from __future__ import annotations

from repro.cfg.graph import FlowGraph
from repro.ir.stmts import SAssign
from repro.mutex.structures import MutexBody

__all__ = ["BodyDataflow"]


class BodyDataflow:
    """Cached def-free reachability queries for one mutex body."""

    def __init__(self, graph: FlowGraph, body: MutexBody) -> None:
        self.graph = graph
        self.body = body
        self._defs_in_block: dict[int, dict[str, list[int]]] = {}
        self._entry_reach: dict[str, frozenset[int]] = {}
        self._exit_reach: dict[str, frozenset[int]] = {}

    # -- per-block def positions ------------------------------------------

    def _block_defs(self, block_id: int) -> dict[str, list[int]]:
        cached = self._defs_in_block.get(block_id)
        if cached is not None:
            return cached
        positions: dict[str, list[int]] = {}
        for index, stmt in enumerate(self.graph.blocks[block_id].stmts):
            if isinstance(stmt, SAssign):
                positions.setdefault(stmt.target, []).append(index)
        self._defs_in_block[block_id] = positions
        return positions

    def _block_has_def(self, block_id: int, var: str) -> bool:
        return bool(self._block_defs(block_id).get(var))

    # -- Theorem 2: upward exposure ----------------------------------------

    def _entry_reachable(self, var: str) -> frozenset[int]:
        """Blocks of the body whose *start* is reachable from the Lock
        node along a path with no definition of ``var``."""
        cached = self._entry_reach.get(var)
        if cached is not None:
            return cached
        nodes = self.body.nodes
        reach: set[int] = set()
        worklist = [
            succ
            for succ in self.graph.blocks[self.body.lock_node].succs
            if succ in nodes
        ]
        for block_id in worklist:
            reach.add(block_id)
        while worklist:
            block_id = worklist.pop()
            if self._block_has_def(block_id, var):
                continue  # the path dies inside this block
            for succ in self.graph.blocks[block_id].succs:
                if succ in nodes and succ not in reach:
                    reach.add(succ)
                    worklist.append(succ)
        result = frozenset(reach)
        self._entry_reach[var] = result
        return result

    def upward_exposed(self, var: str, block_id: int, index: int) -> bool:
        """Is a use of ``var`` at (block, statement index) upward-exposed
        from this mutex body?"""
        defs_before = [i for i in self._block_defs(block_id).get(var, []) if i < index]
        if defs_before:
            return False
        return block_id in self._entry_reachable(var)

    # -- Theorem 1: reaching the body exit ----------------------------------

    def _exit_reachable(self, var: str) -> frozenset[int]:
        """Blocks of the body whose *end* can reach the Unlock node along
        a path with no definition of ``var``."""
        cached = self._exit_reach.get(var)
        if cached is not None:
            return cached
        nodes = self.body.nodes
        exit_node = self.body.unlock_node
        reach: set[int] = set()
        worklist: list[int] = []
        for pred in self.graph.blocks[exit_node].preds:
            if pred in nodes or pred == self.body.lock_node:
                if pred not in reach:
                    reach.add(pred)
                    worklist.append(pred)
        while worklist:
            block_id = worklist.pop()
            # Walking backwards: a predecessor P can reach the exit from
            # its end through `block_id` only if `block_id` itself is
            # def-free (the path traverses all of it).
            if block_id != exit_node and self._block_has_def(block_id, var):
                continue
            for pred in self.graph.blocks[block_id].preds:
                if (pred in nodes or pred == self.body.lock_node) and pred not in reach:
                    reach.add(pred)
                    worklist.append(pred)
        result = frozenset(reach)
        self._exit_reach[var] = result
        return result

    def reaches_exit(self, var: str, block_id: int, index: int) -> bool:
        """Does the definition of ``var`` at (block, statement index)
        reach this body's Unlock node?"""
        defs_after = [i for i in self._block_defs(block_id).get(var, []) if i > index]
        if defs_after:
            return False
        return block_id in self._exit_reachable(var)
