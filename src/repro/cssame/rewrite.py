"""Algorithm A.3 — rewrite π terms using mutual exclusion.

For every π term located inside a mutex body ``b`` of structure ``M_L``,
each conflict argument ``d`` that comes from *another* body ``b'`` of
the same structure is removed when either sufficient condition holds:

* the protected use is **not upward-exposed** from ``b`` (Theorem 2), or
* ``d`` **does not reach the exit node** of ``b'`` (Theorem 1).

A π term whose conflict arguments all disappear carries only its control
argument; it is deleted and its uses are redirected to the control
argument (``chain(u)``), exactly as A.3 lines 21–25 prescribe.
"""

from __future__ import annotations

from repro.cfg.graph import FlowGraph
from repro.cssame.exposure import BodyDataflow
from repro.errors import AnalysisError
from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt, Pi, SAssign
from repro.ir.structured import ProgramIR, iter_statements, remove_stmt
from repro.mutex.structures import MutexBody, MutexStructure
from repro.obs.events import (
    REASON_DOES_NOT_REACH_EXIT,
    REASON_NOT_UPWARD_EXPOSED,
    PiArgRemoved,
    PiDeleted,
)
from repro.obs.trace import get_tracer
from repro.ssa.chains import build_use_map

__all__ = ["RewriteStats", "rewrite_pi_terms"]


class RewriteStats:
    """What Algorithm A.3 accomplished (consumed by tests and benches)."""

    __slots__ = ("pis_before", "pis_deleted", "args_before", "args_removed")

    def __init__(self) -> None:
        self.pis_before = 0
        self.pis_deleted = 0
        self.args_before = 0
        self.args_removed = 0

    @property
    def pis_after(self) -> int:
        return self.pis_before - self.pis_deleted

    @property
    def args_after(self) -> int:
        return self.args_before - self.args_removed

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RewriteStats(pis {self.pis_before}->{self.pis_after}, "
            f"conflict args {self.args_before}->{self.args_after})"
        )


def _collect_pis(program: ProgramIR) -> list[Pi]:
    return [
        stmt for stmt, _ctx in iter_statements(program) if isinstance(stmt, Pi)
    ]


def rewrite_pi_terms(
    program: ProgramIR,
    graph: FlowGraph,
    structures: dict[str, MutexStructure],
) -> RewriteStats:
    """Run Algorithm A.3 in place; returns rewrite statistics."""
    stats = RewriteStats()
    tracer = get_tracer()
    pis = _collect_pis(program)
    stats.pis_before = len(pis)
    stats.args_before = sum(len(pi.conflicts) for pi in pis)

    dataflow_cache: dict[int, BodyDataflow] = {}
    #: (body identity, def uid) → does the def reach that body's exit?
    reach_cache: dict[tuple, bool] = {}

    def dataflow(body: MutexBody) -> BodyDataflow:
        key = id(body)
        cached = dataflow_cache.get(key)
        if cached is None:
            cached = BodyDataflow(graph, body)
            dataflow_cache[key] = cached
        return cached

    for _lock_name, structure in sorted(structures.items()):
        for body in structure.bodies:
            for block_id in sorted(body.nodes):
                block = graph.blocks[block_id]
                for stmt in block.stmts:
                    if not isinstance(stmt, Pi):
                        continue
                    _rewrite_one(
                        stmt, body, structure, graph, dataflow, reach_cache,
                        stats, tracer,
                    )

    # Delete π terms reduced to their control argument.
    reduced = [pi for pi in pis if not pi.conflicts and pi.parent is not None]
    if reduced:
        usemap = build_use_map(program)
        for pi in reduced:
            control = pi.control
            uses = usemap.uses_of(pi)
            for use, _holder in uses:
                use.name = control.name
                use.version = control.version
                use.def_site = control.def_site
            remove_stmt(pi)
            _remove_from_block(graph, pi)
            stats.pis_deleted += 1
            if tracer.enabled:
                tracer.event(
                    PiDeleted(
                        pi.var_name, pi.target, control.ssa_name, len(uses)
                    )
                )
                tracer.counter("cssame.pis_deleted").inc()
        graph.reindex_statements()
    if tracer.enabled:
        from repro.obs.prof import record_work

        record_work(
            "rewrite-pi",
            pi_terms=stats.pis_before,
            conflict_args=stats.args_before,
            args_removed=stats.args_removed,
            pis_deleted=stats.pis_deleted,
        )
    return stats


def _rewrite_one(
    pi: Pi,
    body: MutexBody,
    structure: MutexStructure,
    graph: FlowGraph,
    dataflow,
    reach_cache: dict[tuple, bool],
    stats: RewriteStats,
    tracer,
) -> None:
    var = pi.var_name
    use_block, use_index = graph.location_of(pi)
    # Theorem 2's condition depends only on the use, so compute it once
    # per π (lazily — only when some argument needs it).
    not_exposed: bool | None = None
    kept: list[EVar] = []
    for arg in pi.conflicts:
        def_site = arg.def_site
        if not isinstance(def_site, SAssign):
            raise AnalysisError(
                f"π conflict argument without a real definition: {arg!r}"
            )
        def_block, def_index = graph.location_of(def_site)
        other_body = structure.body_of_block(def_block)
        if other_body is None or other_body is body:
            # Unsynchronized definition, or a definition in the same
            # body (possible when the body spans a whole cobegin):
            # the theorems do not apply — keep the argument.
            kept.append(arg)
            continue
        if not_exposed is None:
            not_exposed = not dataflow(body).upward_exposed(
                var, use_block, use_index
            )
        if not_exposed:
            stats.args_removed += 1
            _record_removal(tracer, structure, pi, arg, REASON_NOT_UPWARD_EXPOSED)
            continue
        # Theorem 1's condition depends only on the definition and the
        # body it is judged against (a def under nested locks belongs to
        # one body per structure); cache it across every π that lists
        # this definition.
        cache_key = (id(other_body), def_site.uid)
        killed = reach_cache.get(cache_key)
        if killed is None:
            killed = not dataflow(other_body).reaches_exit(
                var, def_block, def_index
            )
            reach_cache[cache_key] = killed
        if killed:
            stats.args_removed += 1
            _record_removal(tracer, structure, pi, arg, REASON_DOES_NOT_REACH_EXIT)
        else:
            kept.append(arg)
    pi.conflicts = kept


def _record_removal(
    tracer, structure: MutexStructure, pi: Pi, arg: EVar, reason: str
) -> None:
    """Log one A.3 conflict-argument removal with its theorem."""
    if not tracer.enabled:
        return
    tracer.event(
        PiArgRemoved(structure.lock_name, pi.var_name, pi.target, arg.ssa_name, reason)
    )
    tracer.counter("cssame.args_removed").inc()
    tracer.counter(f"cssame.args_removed.{reason}").inc()


def _remove_from_block(graph: FlowGraph, stmt: IRStmt) -> None:
    block = graph.block_of(stmt)
    for i, existing in enumerate(block.stmts):
        if existing is stmt:
            block.stmts.pop(i)
            return
    raise AnalysisError(f"{stmt!r} missing from its block")  # pragma: no cover
