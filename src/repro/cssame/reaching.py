"""Algorithm A.4 — parallel reaching definitions.

Follows factored use-def chains through φ and π terms: for every use
``u``, ``followChain(chain(u), u)`` walks the SSA graph, collecting the
*real* definitions (plain assignments and entry values) whose value may
flow into ``u``, and symmetrically the reached uses of every definition.
The ``marked`` table from the paper prevents revisiting a definition for
the same use, making the walk linear per use.
"""

from __future__ import annotations

from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt, Phi, Pi, SAssign
from repro.ir.structured import ProgramIR
from repro.ssa.chains import iter_uses
from repro.ssa.names import EntryDef

__all__ = ["ReachingInfo", "parallel_reaching_definitions"]


class ReachingInfo:
    """defs(u) and uses(d) for a whole program."""

    def __init__(self) -> None:
        #: use site → list of reaching definition sites
        self.defs_of_use: dict[EVar, list[object]] = {}
        #: definition site → list of (use site, holder stmt)
        self.uses_of_def: dict[object, list[tuple[EVar, IRStmt]]] = {}
        #: use site → holder statement
        self.holder_of_use: dict[EVar, IRStmt] = {}

    def defs(self, use: EVar) -> list[object]:
        return self.defs_of_use.get(use, [])

    def uses(self, def_site: object) -> list[tuple[EVar, IRStmt]]:
        return self.uses_of_def.get(def_site, [])

    def reached_stmts(self, def_site: object) -> list[IRStmt]:
        return [holder for _use, holder in self.uses(def_site)]


def parallel_reaching_definitions(program: ProgramIR) -> ReachingInfo:
    """Run Algorithm A.4 over an SSA/CSSA/CSSAME-form program."""
    info = ReachingInfo()
    marked: dict[object, EVar] = {}

    for use, holder in iter_uses(program):
        info.holder_of_use[use] = holder
        defs_list = info.defs_of_use.setdefault(use, [])
        start = use.def_site
        if start is None:
            continue
        stack = [start]
        while stack:
            d = stack.pop()
            if marked.get(id(d)) is use:
                continue
            marked[id(d)] = use
            if isinstance(d, (SAssign, EntryDef)):
                defs_list.append(d)
                info.uses_of_def.setdefault(d, []).append((use, holder))
            if isinstance(d, Phi):
                for arg in d.args:
                    if arg.var.def_site is not None:
                        stack.append(arg.var.def_site)
            elif isinstance(d, Pi):
                if d.control.def_site is not None:
                    stack.append(d.control.def_site)
                for conflict in d.conflicts:
                    if conflict.def_site is not None:
                        stack.append(conflict.def_site)
    return info
