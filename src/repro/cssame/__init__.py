"""CSSAME — Concurrent SSA with Mutual Exclusion (the paper's core).

* :mod:`repro.cssame.exposure` — the two path analyses behind Theorems
  1 and 2: *upward exposure* of a use from its mutex body, and whether a
  definition *reaches the exit* (Unlock node) of its body.
* :mod:`repro.cssame.rewrite` — Algorithm A.3: remove π conflict
  arguments proven unreachable; delete π terms reduced to their control
  argument.
* :mod:`repro.cssame.builder` — Algorithm A.2: the full
  program → CSSAME pipeline.
* :mod:`repro.cssame.reaching` — Algorithm A.4: parallel reaching
  definitions / reached uses through φ and π terms.
"""

from repro.cssame.exposure import BodyDataflow
from repro.cssame.ordering import EventOrdering, OrderingStats, prune_pi_terms_by_ordering
from repro.cssame.rewrite import RewriteStats, rewrite_pi_terms
from repro.cssame.builder import CSSAMEForm, build_cssame
from repro.cssame.reaching import ReachingInfo, parallel_reaching_definitions

__all__ = [
    "BodyDataflow",
    "CSSAMEForm",
    "EventOrdering",
    "OrderingStats",
    "ReachingInfo",
    "RewriteStats",
    "build_cssame",
    "parallel_reaching_definitions",
    "prune_pi_terms_by_ordering",
    "rewrite_pi_terms",
]
