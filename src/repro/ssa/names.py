"""SSA definition-site sentinels.

Real definitions are IR statements (:class:`repro.ir.stmts.SAssign`,
:class:`~repro.ir.stmts.Phi`, :class:`~repro.ir.stmts.Pi`).  The value a
variable holds *at program entry* — before any assignment — is modelled
by an :class:`EntryDef` sentinel so renaming stacks are never empty and
every use has a ``chain(u)`` link.
"""

from __future__ import annotations

import itertools

__all__ = ["EntryDef", "is_real_def"]

_entry_ids = itertools.count()


class EntryDef:
    """The implicit definition of ``name`` at program entry.

    Mimics the def-site interface of IR statements (:meth:`def_name`,
    :meth:`def_version`) so analyses can treat it uniformly.  Its version
    is ``None`` and it prints as the bare variable name.
    """

    __slots__ = ("name", "serial")

    def __init__(self, name: str) -> None:
        self.name = name
        self.serial = next(_entry_ids)

    def def_name(self) -> str:
        return self.name

    def def_version(self) -> None:
        return None

    def to_str(self) -> str:
        return f"<entry value of {self.name}>"

    def __repr__(self) -> str:  # pragma: no cover
        return f"EntryDef({self.name!r})"


def is_real_def(site: object) -> bool:
    """True for genuine assignments (not φ/π merges, not entry values).

    The theorems of Section 4 and π conflict arguments only consider
    real definitions.
    """
    from repro.ir.stmts import SAssign

    return isinstance(site, SAssign)
