"""Use-def / def-use maps over an SSA-form program.

``chain(u)`` itself lives on each use site
(:attr:`repro.ir.expr.EVar.def_site`); this module builds the reverse
maps passes need: which use sites a definition feeds, and which
statement holds each use.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt
from repro.ir.structured import ProgramIR, iter_statements

__all__ = ["UseMap", "build_use_map", "defs_in_program", "iter_uses"]


class UseMap:
    """Reverse FUD chains: def site → list of (use site, holder stmt)."""

    def __init__(self) -> None:
        self._map: dict[object, list[tuple[EVar, IRStmt]]] = {}

    def add(self, def_site: object, use: EVar, holder: IRStmt) -> None:
        self._map.setdefault(def_site, []).append((use, holder))

    def uses_of(self, def_site: object) -> list[tuple[EVar, IRStmt]]:
        return self._map.get(def_site, [])

    def holders_of(self, def_site: object) -> list[IRStmt]:
        return [holder for _use, holder in self.uses_of(def_site)]

    def is_dead(self, def_site: object) -> bool:
        return not self._map.get(def_site)

    def __len__(self) -> int:
        return len(self._map)


def iter_uses(program: ProgramIR) -> Iterator[tuple[EVar, IRStmt]]:
    """Every (use site, holder statement) in the program, including φ
    arguments, π arguments and branch conditions."""
    for stmt, _ctx in iter_statements(program):
        for use in stmt.uses():
            yield use, stmt


def build_use_map(program: ProgramIR) -> UseMap:
    """Build the def→uses map for an SSA-form program."""
    usemap = UseMap()
    for use, holder in iter_uses(program):
        if use.def_site is not None:
            usemap.add(use.def_site, use, holder)
    return usemap


def defs_in_program(program: ProgramIR) -> list[IRStmt]:
    """All defining statements (assignments, φ terms, π terms)."""
    return [
        stmt
        for stmt, _ctx in iter_statements(program)
        if stmt.def_name() is not None
    ]
