"""Sequential SSA over the PFG, with factored use-def chains.

The paper computes its underlying sequential SSA form using factored
use-def (FUD) chains "with appropriate modifications to avoid placing
superfluous φ terms at coend nodes".  This package implements:

* minimal φ placement via iterated dominance frontiers,
* dominator-tree renaming that stamps every use site
  (:class:`repro.ir.expr.EVar`) with its version and its ``chain(u)``
  def-site link,
* the coend trimming rule — a φ at a coend keeps one argument per child
  thread that actually defines the variable, and collapses entirely when
  fewer than two threads define it,
* SSA destruction (dropping versions, deleting φs, turning π terms into
  plain copies), valid because every pass keeps the form conventional.
"""

from repro.ssa.names import EntryDef
from repro.ssa.construct import SSAContext, build_ssa
from repro.ssa.chains import UseMap, build_use_map, defs_in_program
from repro.ssa.destruct import destruct_ssa

__all__ = [
    "EntryDef",
    "SSAContext",
    "UseMap",
    "build_ssa",
    "build_use_map",
    "defs_in_program",
    "destruct_ssa",
]
