"""SSA construction over the PFG.

Pipeline (called on a *non-SSA* program and its fresh flow graph):

1. **φ placement** — minimal SSA via iterated dominance frontiers
   (Cytron et al.), one pass per base variable.
2. **Renaming** — a dominator-tree walk stamps every use with its
   version and FUD ``chain(u)`` link, fills φ arguments per predecessor
   edge, and numbers definitions per base variable starting at 0 (so the
   first assignment to ``a`` becomes ``a0``, matching the paper's
   figures).
3. **Coend trimming** — the paper's modification: a φ at a coend node
   keeps one argument per child thread that defines the variable.  With
   fewer than two defining threads the φ is superfluous: uses are
   redirected to the surviving argument and the φ disappears.  (Unlike a
   sequential join, *all* coend predecessors execute, so a single
   defining thread's last write always wins.)
4. **Materialization** — surviving φs are inserted into the structured
   tree at their anchors (after the if/cobegin region, or into the loop
   header list) so listings show them exactly like the paper's figures.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SSAError
from repro.cfg.blocks import NodeKind
from repro.cfg.dominance import (
    DominatorTree,
    compute_dominators,
    dominance_frontiers,
)
from repro.cfg.graph import FlowGraph
from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt, Phi, PhiArg, Pi, SAssign
from repro.ir.structured import ProgramIR
from repro.ssa.names import EntryDef

__all__ = ["SSAContext", "build_ssa"]


class SSAContext:
    """Everything SSA construction produced, for downstream phases.

    Attributes
    ----------
    program / graph:
        The (now SSA-form) program and the graph it was built on.  φ
        terms live both in ``graph`` blocks and in the structured tree.
    domtree:
        Dominator tree (reused by later analyses).
    entry_defs:
        Base name → :class:`EntryDef` sentinel.
    version_counters:
        Base name → next free version number.
    phis:
        All surviving φ terms.
    """

    def __init__(self, program: ProgramIR, graph: FlowGraph, domtree: DominatorTree) -> None:
        self.program = program
        self.graph = graph
        self.domtree = domtree
        self.entry_defs: dict[str, EntryDef] = {}
        self.version_counters: dict[str, int] = {}
        self.phis: list[Phi] = []

    def entry_def(self, name: str) -> EntryDef:
        sentinel = self.entry_defs.get(name)
        if sentinel is None:
            sentinel = EntryDef(name)
            self.entry_defs[name] = sentinel
        return sentinel

    def next_version(self, name: str) -> int:
        version = self.version_counters.get(name, 0)
        self.version_counters[name] = version + 1
        return version


def _collect_variables(graph: FlowGraph) -> tuple[set[str], dict[str, set[int]]]:
    """All base names plus, per name, the blocks containing real defs."""
    variables: set[str] = set()
    def_blocks: dict[str, set[int]] = {}
    for block in graph.blocks:
        if block.phis:
            raise SSAError("SSA construction requires a non-SSA program (φ found)")
        for stmt in block.stmts:
            if isinstance(stmt, (Phi, Pi)):
                raise SSAError("SSA construction requires a non-SSA program")
            target = stmt.def_name()
            if target is not None:
                variables.add(target)
                def_blocks.setdefault(target, set()).add(block.id)
            for use in stmt.uses():
                variables.add(use.name)
    return variables, def_blocks


def _place_phis(
    graph: FlowGraph,
    domtree: DominatorTree,
    def_blocks: dict[str, set[int]],
) -> None:
    """Minimal φ placement via iterated dominance frontiers."""
    frontiers = dominance_frontiers(graph, domtree)
    for var in sorted(def_blocks):
        worklist = list(def_blocks[var])
        placed: set[int] = set()
        on_worklist = set(worklist)
        while worklist:
            block_id = worklist.pop()
            for frontier_id in frontiers[block_id]:
                if frontier_id in placed:
                    continue
                placed.add(frontier_id)
                graph.blocks[frontier_id].phis.append(Phi(var, None, []))
                if frontier_id not in on_worklist:
                    on_worklist.add(frontier_id)
                    worklist.append(frontier_id)


def _rename(ctx: SSAContext, variables: set[str]) -> None:
    """Dominator-tree renaming; stamps versions and chain(u) links."""
    graph = ctx.graph
    domtree = ctx.domtree
    stacks: dict[str, list[object]] = {
        var: [ctx.entry_def(var)] for var in variables
    }

    def top(name: str):
        stack = stacks.get(name)
        if not stack:
            # A name never seen during collection (e.g. a lock variable
            # in an expression context) still gets an entry def.
            sentinel = ctx.entry_def(name)
            stacks[name] = [sentinel]
            return sentinel
        return stack[-1]

    def stamp(use: EVar) -> None:
        site = top(use.name)
        use.version = site.def_version()
        use.def_site = site

    # Iterative pre/post-order walk of the dominator tree.
    work: list[tuple[int, bool]] = [(graph.entry_id, False)]
    pushed_log: dict[int, list[str]] = {}
    while work:
        block_id, leaving = work.pop()
        block = graph.blocks[block_id]
        if leaving:
            for name in reversed(pushed_log.pop(block_id, [])):
                stacks[name].pop()
            continue
        pushed: list[str] = []
        pushed_log[block_id] = pushed

        for phi in block.phis:
            phi.version = ctx.next_version(phi.target)
            stacks[phi.target].append(phi)
            pushed.append(phi.target)
        for stmt in block.stmts:
            for use in stmt.uses():
                stamp(use)
            target = stmt.def_name()
            if target is not None:
                if isinstance(stmt, SAssign):
                    stmt.version = ctx.next_version(target)
                stacks.setdefault(target, [ctx.entry_def(target)])
                stacks[target].append(stmt)
                pushed.append(target)

        for succ_id in block.succs:
            succ = graph.blocks[succ_id]
            for phi in succ.phis:
                site = top(phi.target)
                arg_var = EVar(phi.target, site.def_version(), site)
                phi.args.append(PhiArg(arg_var, block_id))

        work.append((block_id, True))
        for child in sorted(domtree.children[block_id], reverse=True):
            work.append((child, False))


def _def_block_id(ctx: SSAContext, site: object) -> int:
    """Block containing a def site (entry block for EntryDef)."""
    if isinstance(site, EntryDef):
        return ctx.graph.entry_id
    if isinstance(site, IRStmt):
        return ctx.graph.block_of(site).id
    raise SSAError(f"unknown def site {site!r}")


def _trim_coend_phis(ctx: SSAContext) -> None:
    """Apply the paper's coend rule; delete superfluous φ terms."""
    graph = ctx.graph
    coend_region: dict[int, int] = {
        coend_id: region_uid
        for region_uid, (_cob, coend_id) in graph.cobegin_nodes.items()
    }

    replacements: dict[Phi, EVar] = {}
    for block in graph.blocks:
        if block.kind is not NodeKind.COEND:
            continue
        region_uid = coend_region[block.id]
        for phi in list(block.phis):
            kept: list[PhiArg] = []
            for arg in phi.args:
                try:
                    thread_index = block.preds.index(arg.pred_block)
                except ValueError as exc:  # pragma: no cover - defensive
                    raise SSAError("coend φ argument from a non-predecessor") from exc
                def_block = graph.blocks[_def_block_id(ctx, arg.var.def_site)]
                if def_block.thread_map.get(region_uid) == thread_index:
                    arg.thread_index = thread_index
                    kept.append(arg)
            if len(kept) >= 2:
                phi.args = kept
            elif len(kept) == 1:
                replacements[phi] = kept[0].var
                block.phis.remove(phi)
            else:  # pragma: no cover - placement guarantees >= 1
                raise SSAError("coend φ with no in-thread arguments")

    if not replacements:
        return

    def resolve(var: EVar) -> EVar:
        seen = set()
        while isinstance(var.def_site, Phi) and var.def_site in replacements:
            if id(var.def_site) in seen:  # pragma: no cover - defensive
                raise SSAError("cycle in coend φ replacements")
            seen.add(id(var.def_site))
            var = replacements[var.def_site]  # type: ignore[index]
        return var

    # Redirect every use that chains to a deleted φ.
    for block in graph.blocks:
        for phi in block.phis:
            for arg in phi.args:
                if isinstance(arg.var.def_site, Phi) and arg.var.def_site in replacements:
                    final = resolve(arg.var)
                    arg.var = EVar(final.name, final.version, final.def_site)
        for stmt in block.stmts:
            for use in stmt.uses():
                if isinstance(use.def_site, Phi) and use.def_site in replacements:
                    final = resolve(use)
                    use.version = final.version
                    use.def_site = final.def_site


def _sort_phi_args(ctx: SSAContext) -> None:
    """Order every φ's arguments to match its block's predecessor order.

    Renaming appends arguments in dominator-tree visit order; sorting
    them into predecessor order gives a stable positional invariant
    (``args[i]`` enters through ``preds[i]``) that survives flow-graph
    rebuilds — constant propagation relies on it for edge-executability
    reasoning.
    """
    for block in ctx.graph.blocks:
        if not block.phis:
            continue
        order = {pred: i for i, pred in enumerate(block.preds)}
        for phi in block.phis:
            phi.args.sort(key=lambda arg: order.get(arg.pred_block, len(order)))


def _materialize_phis(ctx: SSAContext) -> None:
    """Insert surviving φ terms into the structured tree."""
    for block in ctx.graph.blocks:
        if not block.phis:
            continue
        anchor = block.phi_anchor
        if anchor is None:
            raise SSAError(
                f"φ terms placed at block B{block.id} which has no anchor"
            )
        if anchor.kind == "after":
            body = anchor.body
            index = body.index(anchor.region) + 1
            for offset, phi in enumerate(block.phis):
                body.insert(index + offset, phi)
        elif anchor.kind == "header":
            for phi in block.phis:
                anchor.region.add_header_stmt(phi)
        else:  # pragma: no cover - defensive
            raise SSAError(f"unknown φ anchor kind {anchor.kind!r}")
        ctx.phis.extend(block.phis)


def build_ssa(program: ProgramIR, graph: FlowGraph) -> SSAContext:
    """Convert ``program``/``graph`` (shared statements) to SSA form.

    Returns the :class:`SSAContext`; the program tree now contains φ
    terms and every use site carries ``version``/``def_site``.
    """
    domtree = compute_dominators(graph)
    ctx = SSAContext(program, graph, domtree)
    variables, def_blocks = _collect_variables(graph)
    _place_phis(graph, domtree, def_blocks)
    graph.reindex_statements()  # φ terms need locations for coend trimming
    _rename(ctx, variables)
    _trim_coend_phis(ctx)
    _sort_phi_args(ctx)
    _materialize_phis(ctx)
    graph.reindex_statements()
    return ctx
