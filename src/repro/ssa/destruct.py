"""SSA destruction (out-of-SSA).

All of this library's transformations keep the CSSA form *conventional*:
no pass ever propagates a copy across a φ boundary or makes two versions
of the same base variable live simultaneously.  Destruction is therefore
simply:

* φ terms disappear (all their arguments collapse onto the shared base
  variable, so they would be no-op copies);
* π terms become plain copies ``temp = base_var`` — exactly the runtime
  meaning of a π: "read whichever definition reached this point";
* version stamps and chain links are cleared.

The result is directly executable by the VM and re-analyzable (a fresh
SSA construction accepts it).
"""

from __future__ import annotations

from repro.ir.expr import EVar
from repro.ir.stmts import Phi, Pi, SAssign
from repro.ir.structured import (
    Body,
    ProgramIR,
    WhileRegion,
    iter_statements,
    remove_stmt,
)
from repro.errors import TransformError

__all__ = ["destruct_ssa", "replace_stmt"]


def replace_stmt(old, new) -> None:
    """Swap ``old`` for ``new`` wherever ``old`` lives in the tree."""
    parent = old.parent
    if isinstance(parent, Body):
        idx = parent.index(old)
        parent.items[idx] = new
        new.parent = parent
        old.parent = None
    elif isinstance(parent, WhileRegion):
        for i, stmt in enumerate(parent.header_phis):
            if stmt is old:
                parent.header_phis[i] = new
                new.parent = parent
                old.parent = None
                return
        raise TransformError(f"{old!r} not found in loop header")
    else:
        raise TransformError(f"cannot replace statement with parent {parent!r}")


def destruct_ssa(program: ProgramIR) -> ProgramIR:
    """Take ``program`` out of SSA form, in place; returns it."""
    for stmt, _ctx in iter_statements(program):
        if isinstance(stmt, Phi):
            remove_stmt(stmt)
        elif isinstance(stmt, Pi):
            copy = SAssign(stmt.target, EVar(stmt.var_name))
            replace_stmt(stmt, copy)
    for stmt, _ctx in iter_statements(program):
        if isinstance(stmt, SAssign):
            stmt.version = None
        for use in stmt.uses():
            use.version = None
            use.def_site = None
    return program
