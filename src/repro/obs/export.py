"""Trace exporters: JSON-lines, Chrome ``trace_event``, text, flame.

Four consumers, four formats:

* **jsonl** — one JSON object per record (span or event) in emission
  order, terminated by a ``{"type": "metrics", ...}`` line.  The
  machine-readable archival format; :func:`load_jsonl` round-trips it.
* **chrome** — the Chrome ``trace_event`` JSON object format (a dict
  with a ``traceEvents`` list), loadable in ``chrome://tracing`` and
  `Perfetto <https://ui.perfetto.dev>`_.  Spans become complete (``X``)
  events with microsecond timestamps; typed events become instant
  (``i``) events carrying their payload in ``args``.
* **text** — a human-readable summary: the span tree with wall times,
  event counts by kind, and the metrics registry.
* **flame** — Brendan Gregg collapsed-stack format: one
  ``root;child;leaf <microseconds>`` line per distinct span stack,
  weighted by *self* time, ready for ``flamegraph.pl`` or
  `speedscope <https://www.speedscope.app>`_.
"""

from __future__ import annotations

import json
from typing import IO, Union

from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "export_chrome",
    "export_collapsed",
    "export_jsonl",
    "load_jsonl",
    "render_text",
    "trace_as_dicts",
    "write_trace",
]

TRACE_FORMATS = ("jsonl", "chrome", "text", "flame")

AnyTracer = Union[Tracer, NullTracer]


def trace_as_dicts(tracer: AnyTracer) -> list[dict]:
    """Every record plus the trailing metrics line, as plain dicts."""
    records = [r.as_dict() for r in tracer.records]
    records.append({"type": "metrics", **tracer.metrics.as_dict()})
    return records


# -- JSON lines --------------------------------------------------------------


def export_jsonl(tracer: AnyTracer, out: IO[str]) -> int:
    """Write one JSON object per line; returns the number of lines."""
    lines = 0
    for record in trace_as_dicts(tracer):
        out.write(json.dumps(record, sort_keys=True) + "\n")
        lines += 1
    return lines


def load_jsonl(path: str) -> list[dict]:
    """Read back a jsonl trace file as a list of dicts."""
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# -- Chrome trace_event ------------------------------------------------------


def _us(seconds: float) -> float:
    return seconds * 1e6


def export_chrome(tracer: AnyTracer) -> dict:
    """The Chrome ``trace_event`` object (JSON-serializable dict)."""
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro (CSSAME stack)"},
        }
    ]
    lock_tracks: dict[str, int] = {}  # lock name → pid-2 track id
    for record in tracer.records:
        if isinstance(record, Span):
            end = record.end if record.end is not None else record.start
            trace_events.append(
                {
                    "name": record.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": _us(record.start),
                    "dur": _us(end - record.start),
                    "pid": 1,
                    "tid": 1,
                    "args": dict(record.attrs),
                }
            )
        elif record.kind in ("lock-held-interval", "lock-blocked-interval"):
            # Step-interval events render as complete events on a
            # synthetic "VM locks" process (pid 2), one track per lock,
            # with global VM steps as the time unit — the per-lock
            # contention timeline, visible next to the wall-time spans.
            payload = record.payload()
            lock = payload["lock"]
            if lock not in lock_tracks:
                if not lock_tracks:
                    trace_events.append(
                        {
                            "name": "process_name",
                            "ph": "M",
                            "pid": 2,
                            "tid": 0,
                            "args": {"name": "VM locks (unit: steps)"},
                        }
                    )
                lock_tracks[lock] = len(lock_tracks) + 1
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 2,
                        "tid": lock_tracks[lock],
                        "args": {"name": f"lock {lock}"},
                    }
                )
            tid = lock_tracks[lock]
            trace_events.append(
                {
                    "name": f"{lock} {record.kind.split('-')[1]} ({payload['tid']})",
                    "cat": "vm-lock",
                    "ph": "X",
                    "ts": float(payload["from_step"]),
                    "dur": float(payload["to_step"] - payload["from_step"]),
                    "pid": 2,
                    "tid": tid,
                    "args": payload,
                }
            )
        else:
            trace_events.append(
                {
                    "name": record.kind,
                    "cat": "event",
                    "ph": "i",
                    "ts": _us(record.ts),
                    "pid": 1,
                    "tid": 1,
                    "s": "g",
                    "args": record.payload(),
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": tracer.metrics.as_dict()},
    }


# -- collapsed stacks (flamegraph) -------------------------------------------


def export_collapsed(tracer: AnyTracer) -> str:
    """The span tree as collapsed stacks, weighted by self time.

    One line per distinct stack path, ``a;b;c <weight>``, where the
    weight is the span's *exclusive* wall time in integer microseconds
    (inclusive duration minus the time spent in child spans, floored at
    zero — clock granularity can make the children sum past the
    parent).  Spans repeated at the same path aggregate into one line.
    Typed events carry no duration and are skipped.
    """
    spans = tracer.spans()
    # Self time = inclusive − sum(children): accumulate each span's
    # inclusive duration onto its own path and subtract it from the
    # parent's, using emission order + depth to rebuild the tree.
    exclusive: dict[str, float] = {}
    parents: list[tuple[str, int]] = []  # (path string, depth) stack
    for span in spans:
        end = span.end if span.end is not None else span.start
        duration = max(end - span.start, 0.0)
        while parents and parents[-1][1] >= span.depth:
            parents.pop()
        parent_path = parents[-1][0] if parents else ""
        my_path = f"{parent_path};{span.name}" if parent_path else span.name
        exclusive[my_path] = exclusive.get(my_path, 0.0) + duration
        if parent_path:
            exclusive[parent_path] = exclusive.get(parent_path, 0.0) - duration
        parents.append((my_path, span.depth))
    lines = [
        f"{stack} {max(int(seconds * 1e6), 0)}"
        for stack, seconds in exclusive.items()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable summary --------------------------------------------------


def render_text(tracer: AnyTracer) -> str:
    """Span tree + event census + metrics, for terminals."""
    lines: list[str] = ["== spans =="]
    spans = tracer.spans()
    if not spans:
        lines.append("  (none)")
    for span in spans:
        indent = "  " * (span.depth + 1)
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        lines.append(
            f"{indent}{span.name}  {span.duration * 1e3:.3f} ms"
            + (f"  [{attrs}]" if attrs else "")
        )
    counts: dict[str, int] = {}
    for event in tracer.events():
        counts[event.kind] = counts.get(event.kind, 0) + 1
    lines.append("== events ==")
    if not counts:
        lines.append("  (none)")
    for kind, count in sorted(counts.items()):
        lines.append(f"  {kind} x{count}")
    metrics_text = tracer.metrics.render_text()
    lines.append("== metrics ==")
    lines.append(metrics_text if metrics_text else "  (none)")
    return "\n".join(lines) + "\n"


# -- dispatch ----------------------------------------------------------------


def write_trace(tracer: AnyTracer, path: str, fmt: str = "jsonl") -> None:
    """Write the trace to ``path`` in one of :data:`TRACE_FORMATS`."""
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r} (want one of {TRACE_FORMATS})")
    with open(path, "w", encoding="utf-8") as handle:
        if fmt == "jsonl":
            export_jsonl(tracer, handle)
        elif fmt == "chrome":
            json.dump(export_chrome(tracer), handle, indent=1, sort_keys=True)
            handle.write("\n")
        elif fmt == "flame":
            handle.write(export_collapsed(tracer))
        else:
            handle.write(render_text(tracer))
