"""Observability for the CSSAME stack: tracing, decision logs, metrics.

The paper's algorithms are sequences of *decisions* — which mutex
bodies A.1 finds, which π conflict arguments A.3 removes and under
which theorem, what each optimization pass touched, what the
interleaving VM scheduled.  This package records those decisions as
spans (:mod:`repro.obs.trace`), typed events (:mod:`repro.obs.events`)
and metrics (:mod:`repro.obs.metrics`), and exports them as JSON-lines,
Chrome ``trace_event`` JSON, or a text summary
(:mod:`repro.obs.export`).

Tracing is off by default and costs one attribute read per
instrumentation site; see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.events import (
    ContextSwitch,
    Event,
    LockAcquire,
    LockContention,
    LockRelease,
    MutexBodyDiscovered,
    PassEnd,
    PassStart,
    PiArgRemoved,
    PiDeleted,
    REASON_DOES_NOT_REACH_EXIT,
    REASON_NOT_UPWARD_EXPOSED,
    VMStep,
    tid_str,
)
from repro.obs.export import (
    TRACE_FORMATS,
    export_chrome,
    export_collapsed,
    export_jsonl,
    load_jsonl,
    render_text,
    trace_as_dicts,
    write_trace,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.prof import (
    WORK_PREFIX,
    WorkProfile,
    profile_source,
    record_work,
    total_work,
    work_by_phase,
    work_counters,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "ContextSwitch",
    "Counter",
    "Event",
    "Histogram",
    "LockAcquire",
    "LockContention",
    "LockRelease",
    "MetricsRegistry",
    "MutexBodyDiscovered",
    "NULL_TRACER",
    "NullTracer",
    "PassEnd",
    "PassStart",
    "PiArgRemoved",
    "PiDeleted",
    "REASON_DOES_NOT_REACH_EXIT",
    "REASON_NOT_UPWARD_EXPOSED",
    "Span",
    "TRACE_FORMATS",
    "Tracer",
    "VMStep",
    "WORK_PREFIX",
    "WorkProfile",
    "export_chrome",
    "export_collapsed",
    "export_jsonl",
    "get_tracer",
    "load_jsonl",
    "profile_source",
    "record_work",
    "render_text",
    "set_tracer",
    "tid_str",
    "total_work",
    "trace_as_dicts",
    "use_tracer",
    "work_by_phase",
    "work_counters",
    "write_trace",
]
