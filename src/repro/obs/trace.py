"""Span-based tracer with a zero-overhead disabled default.

The process owns one global tracer.  It defaults to :data:`NULL_TRACER`,
whose every operation is a constant-time no-op that allocates nothing —
instrumented hot paths guard event construction behind
``tracer.enabled`` so the disabled cost is one attribute read and a
branch.  Enable tracing either by installing a real :class:`Tracer`
globally (:func:`set_tracer` / the :func:`use_tracer` context manager)
or per-call via the ``trace=`` parameter of the :mod:`repro.api`
helpers.

Data model: a tracer keeps one flat ``records`` list containing
:class:`Span` and :class:`~repro.obs.events.Event` objects in emission
order (a span is appended when it *opens*, so nesting order is
deterministic).  Spans measure wall time with
:func:`time.perf_counter`, relative to the tracer's creation so exported
timestamps are small and runs are comparable.  Metrics live in the
tracer's :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Callable, Iterator, Optional, Union

from repro.obs.events import Event
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


class Span:
    """A named, attributed wall-time interval (possibly nested)."""

    __slots__ = ("name", "attrs", "start", "end", "depth")

    def __init__(self, name: str, attrs: dict, depth: int) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end: Optional[float] = None
        self.depth = depth

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Seconds from open to close (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def as_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Span({self.name!r}, dur={self.duration * 1e3:.3f}ms)"


class _NullSpan:
    """Shared do-nothing span; also its own context manager."""

    __slots__ = ()
    name = "null"
    attrs: dict = {}
    start = 0.0
    end = 0.0
    depth = 0
    duration = 0.0

    def set(self, **attrs) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, typed events, and metrics for one run."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self.records: list[Union[Span, Event]] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []
        self._clock = clock
        self._epoch = clock()

    def _now(self) -> float:
        return self._clock() - self._epoch

    @contextlib.contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; attributes may be added via ``span.set``."""
        span = Span(name, attrs, depth=len(self._stack))
        span.start = self._now()
        self.records.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self._now()

    def event(self, event: Event) -> None:
        """Record a typed event, stamping its timestamp."""
        event.ts = self._now()
        self.records.append(event)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    def absorb(self, other: "Tracer") -> None:
        """Fold another tracer's records and metrics into this one.

        Spans and events are re-based onto this tracer's timeline (the
        epochs differ), so an exported trace stays monotonic; counters
        add and histograms concatenate.  Used by the api facade, which
        runs every request under a private tracer for exact per-request
        accounting and then forwards the capture to the ambient
        ``--trace`` tracer.
        """
        delta = other._epoch - self._epoch
        for record in other.records:
            if isinstance(record, Span):
                record.start += delta
                if record.end is not None:
                    record.end += delta
            else:
                record.ts += delta
            self.records.append(record)
        self.metrics.merge(other.metrics)

    # -- views ---------------------------------------------------------------

    def spans(self) -> list[Span]:
        return [r for r in self.records if isinstance(r, Span)]

    def events(self) -> list[Event]:
        return [r for r in self.records if isinstance(r, Event)]

    def events_of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events() if e.kind == kind]

    def span_named(self, name: str) -> Optional[Span]:
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Tracer(spans={len(self.spans())}, events={len(self.events())})"
        )


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    records: tuple = ()
    metrics = NULL_REGISTRY

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, event: Event) -> None:
        return None

    def counter(self, name: str):
        return NULL_REGISTRY.counter(name)

    def histogram(self, name: str):
        return NULL_REGISTRY.histogram(name)

    def spans(self) -> list:
        return []

    def events(self) -> list:
        return []

    def events_of_kind(self, kind: str) -> list:
        return []

    def span_named(self, name: str) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return "NullTracer()"


NULL_TRACER = NullTracer()

_global_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-global tracer (the no-op tracer by default)."""
    return _global_tracer


def set_tracer(tracer: Union[Tracer, NullTracer, None]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` globally (``None`` → no-op); returns the previous."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextlib.contextmanager
def use_tracer(
    tracer: Union[Tracer, NullTracer, None],
) -> Iterator[Union[Tracer, NullTracer]]:
    """Install ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
