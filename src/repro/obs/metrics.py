"""Counters and histograms for the observability layer.

A :class:`MetricsRegistry` is owned by a :class:`~repro.obs.trace.Tracer`;
instrumented code asks the tracer for a counter or histogram by name and
updates it.  The registry attached to the no-op tracer hands out shared
null instruments whose update methods do nothing, so disabled metrics
cost one method call and no allocation.

Histograms keep raw observations (runs are small — thousands of points,
not millions); the exported summary is count/min/max/mean/total plus
the p50/p90/p99 percentiles (nearest-rank, so every reported value is
one that was actually observed).
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "percentile",
]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


_EMPTY_SUMMARY = {
    "count": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "total": 0.0,
    "p50": 0.0, "p90": 0.0, "p99": 0.0,
}


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    rank = max(1, -(-int(q * 100) * len(sorted_values) // 100))  # ceil
    return sorted_values[rank - 1]


class Histogram:
    """A named distribution of numeric observations."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def summary(self) -> dict[str, float]:
        if not self.values:
            return dict(_EMPTY_SUMMARY)
        total = sum(self.values)
        ordered = sorted(self.values)
        return {
            "count": len(self.values),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(self.values),
            "total": total,
            "p50": percentile(ordered, 0.50),
            "p90": percentile(ordered, 0.90),
            "p99": percentile(ordered, 0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}, n={len(self.values)})"


class MetricsRegistry:
    """Name → instrument store; instruments are created on first use."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self.counters[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = Histogram(name)
            self.histograms[name] = instrument
        return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters add; histograms concatenate observations.  The serve
        layer uses this to aggregate per-request tracer metrics into
        the server-lifetime registry its ``ops`` endpoint reports.
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, hist in other.histograms.items():
            self.histogram(name).values.extend(hist.values)

    def as_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }

    def render_text(self) -> str:
        lines: list[str] = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"  {name} = {counter.value}")
        for name, hist in sorted(self.histograms.items()):
            s = hist.summary()
            lines.append(
                f"  {name}: n={s['count']} min={s['min']:g} "
                f"max={s['max']:g} mean={s['mean']:g} total={s['total']:g} "
                f"p50={s['p50']:g} p90={s['p90']:g} p99={s['p99']:g}"
            )
        return "\n".join(lines)


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    name = "null"
    values: list[float] = []

    def observe(self, value: float) -> None:
        return None

    def summary(self) -> dict[str, float]:
        return dict(_EMPTY_SUMMARY)


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Registry of the no-op tracer: every instrument is a shared null."""

    __slots__ = ()
    counters: dict = {}
    histograms: dict = {}

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def as_dict(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def render_text(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
