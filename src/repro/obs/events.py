"""Typed trace events for the CSSAME stack.

Every decision the paper's algorithms make — which mutex bodies
Algorithm A.1 discovers, which conflict arguments Algorithm A.3 removes
and under which theorem, which pass ran when, what the interleaving VM
scheduled — is modelled as one event class here.  Events are plain
records: construction computes nothing, the tracer stamps ``ts`` when
the event is recorded, and :meth:`Event.as_dict` yields the
JSON-serializable form every exporter consumes.

Event payloads are deterministic functions of the program being
processed (thread ids are rendered as dotted spawn paths, never as
object ids), so two runs of the same pipeline produce identical event
sequences modulo timestamps — a property the test suite locks in.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ContextSwitch",
    "DynamicRaceObserved",
    "Event",
    "HappensBeforeEdge",
    "LockAcquire",
    "LockBlockedInterval",
    "LockContention",
    "LockHeldInterval",
    "LockRelease",
    "MutexBodyDiscovered",
    "PassEnd",
    "PassStart",
    "PiArgRemoved",
    "PiDeleted",
    "REASON_DOES_NOT_REACH_EXIT",
    "REASON_NOT_UPWARD_EXPOSED",
    "VMStep",
    "tid_str",
]

#: Theorem 2 — the protected use is not upward-exposed from its body.
REASON_NOT_UPWARD_EXPOSED = "not-upward-exposed"
#: Theorem 1 — the definition does not reach the exit of its body.
REASON_DOES_NOT_REACH_EXIT = "does-not-reach-exit"


def tid_str(tid: tuple) -> str:
    """Render a VM thread id (spawn path tuple) as a stable string."""
    return "main" if not tid else ".".join(str(i) for i in tid)


class Event:
    """Base class: a timestamped, typed, flat-payload record."""

    kind = "event"
    __slots__ = ("ts",)

    def __init__(self) -> None:
        self.ts = 0.0  # stamped by the tracer at record time

    def payload(self) -> dict:
        """The event-specific fields (JSON-serializable, no timestamp)."""
        return {}

    def as_dict(self) -> dict:
        return {"type": "event", "kind": self.kind, "ts": self.ts, **self.payload()}

    def __repr__(self) -> str:  # pragma: no cover
        fields = " ".join(f"{k}={v!r}" for k, v in self.payload().items())
        return f"<{self.kind} {fields}>"


# -- compilation-side events -------------------------------------------------


class PassStart(Event):
    kind = "pass-start"
    __slots__ = ("pass_name",)

    def __init__(self, pass_name: str) -> None:
        super().__init__()
        self.pass_name = pass_name

    def payload(self) -> dict:
        return {"pass": self.pass_name}


class PassEnd(Event):
    kind = "pass-end"
    __slots__ = ("pass_name", "stats")

    def __init__(self, pass_name: str, stats: Optional[dict] = None) -> None:
        super().__init__()
        self.pass_name = pass_name
        self.stats = dict(stats or {})

    def payload(self) -> dict:
        return {"pass": self.pass_name, "stats": self.stats}


class MutexBodyDiscovered(Event):
    """Algorithm A.1 accepted a candidate ``B_L(n, x)`` mutex body."""

    kind = "mutex-body"
    __slots__ = ("lock", "lock_node", "unlock_node", "num_nodes")

    def __init__(
        self, lock: str, lock_node: int, unlock_node: int, num_nodes: int
    ) -> None:
        super().__init__()
        self.lock = lock
        self.lock_node = lock_node
        self.unlock_node = unlock_node
        self.num_nodes = num_nodes

    def payload(self) -> dict:
        return {
            "lock": self.lock,
            "lock_node": self.lock_node,
            "unlock_node": self.unlock_node,
            "num_nodes": self.num_nodes,
        }


class PiArgRemoved(Event):
    """Algorithm A.3 removed one conflict argument from a π term.

    ``reason`` is :data:`REASON_NOT_UPWARD_EXPOSED` (Theorem 2, judged
    at the protected use) or :data:`REASON_DOES_NOT_REACH_EXIT`
    (Theorem 1, judged at the conflicting definition).
    """

    kind = "pi-arg-removed"
    __slots__ = ("lock", "var", "pi", "arg", "reason")

    def __init__(
        self, lock: str, var: str, pi: str, arg: str, reason: str
    ) -> None:
        super().__init__()
        self.lock = lock
        self.var = var
        self.pi = pi
        self.arg = arg
        self.reason = reason

    def payload(self) -> dict:
        return {
            "lock": self.lock,
            "var": self.var,
            "pi": self.pi,
            "arg": self.arg,
            "reason": self.reason,
        }


class PiDeleted(Event):
    """A π reduced to its control argument was deleted (A.3 lines 21-25)."""

    kind = "pi-deleted"
    __slots__ = ("var", "pi", "redirected_to", "uses_redirected")

    def __init__(
        self, var: str, pi: str, redirected_to: str, uses_redirected: int
    ) -> None:
        super().__init__()
        self.var = var
        self.pi = pi
        self.redirected_to = redirected_to
        self.uses_redirected = uses_redirected

    def payload(self) -> dict:
        return {
            "var": self.var,
            "pi": self.pi,
            "redirected_to": self.redirected_to,
            "uses_redirected": self.uses_redirected,
        }


# -- VM runtime events -------------------------------------------------------


class VMStep(Event):
    """One atomic instruction executed by the interleaving VM."""

    kind = "vm-step"
    __slots__ = ("step", "tid", "op")

    def __init__(self, step: int, tid: tuple, op: str) -> None:
        super().__init__()
        self.step = step
        self.tid = tid
        self.op = op

    def payload(self) -> dict:
        return {"step": self.step, "tid": tid_str(self.tid), "op": self.op}


class ContextSwitch(Event):
    """The scheduler handed the (virtual) CPU to a different thread."""

    kind = "context-switch"
    __slots__ = ("step", "prev_tid", "next_tid")

    def __init__(self, step: int, prev_tid: tuple, next_tid: tuple) -> None:
        super().__init__()
        self.step = step
        self.prev_tid = prev_tid
        self.next_tid = next_tid

    def payload(self) -> dict:
        return {
            "step": self.step,
            "prev": tid_str(self.prev_tid),
            "next": tid_str(self.next_tid),
        }


class LockAcquire(Event):
    kind = "lock-acquire"
    __slots__ = ("step", "lock", "tid")

    def __init__(self, step: int, lock: str, tid: tuple) -> None:
        super().__init__()
        self.step = step
        self.lock = lock
        self.tid = tid

    def payload(self) -> dict:
        return {"step": self.step, "lock": self.lock, "tid": tid_str(self.tid)}


class LockRelease(Event):
    """An unlock; ``held_steps`` is the global-step length of the hold."""

    kind = "lock-release"
    __slots__ = ("step", "lock", "tid", "held_steps")

    def __init__(self, step: int, lock: str, tid: tuple, held_steps: int) -> None:
        super().__init__()
        self.step = step
        self.lock = lock
        self.tid = tid
        self.held_steps = held_steps

    def payload(self) -> dict:
        return {
            "step": self.step,
            "lock": self.lock,
            "tid": tid_str(self.tid),
            "held_steps": self.held_steps,
        }


class LockContention(Event):
    """One global step during which a runnable thread sat blocked on a
    lock held by another thread (emitted once per blocked thread per
    step, mirroring ``Execution.lock_blocked_steps``)."""

    kind = "lock-contention"
    __slots__ = ("step", "lock", "tid", "owner")

    def __init__(self, step: int, lock: str, tid: tuple, owner: tuple) -> None:
        super().__init__()
        self.step = step
        self.lock = lock
        self.tid = tid
        self.owner = owner

    def payload(self) -> dict:
        return {
            "step": self.step,
            "lock": self.lock,
            "tid": tid_str(self.tid),
            "owner": tid_str(self.owner),
        }


class LockHeldInterval(Event):
    """One closed hold of a lock: acquire step → release step.

    Emitted when the hold *closes* (at the unlock, or flushed with
    ``open=True`` at run end when the run finished with the lock still
    held, e.g. across a deadlock).  ``from_step``/``to_step`` are
    global-step numbers; exporters with a duration notion (chrome)
    render these as complete events on a per-lock track.
    """

    kind = "lock-held-interval"
    __slots__ = ("lock", "tid", "from_step", "to_step", "open")

    def __init__(
        self, lock: str, tid: tuple, from_step: int, to_step: int, open: bool = False
    ) -> None:
        super().__init__()
        self.lock = lock
        self.tid = tid
        self.from_step = from_step
        self.to_step = to_step
        self.open = open

    def payload(self) -> dict:
        return {
            "lock": self.lock,
            "tid": tid_str(self.tid),
            "from_step": self.from_step,
            "to_step": self.to_step,
            "open": self.open,
        }


class LockBlockedInterval(Event):
    """One contiguous interval a thread spent blocked on a lock.

    Closes when the blocked thread finally acquires (or at run end,
    flushed with ``open=True`` — the deadlock signature)."""

    kind = "lock-blocked-interval"
    __slots__ = ("lock", "tid", "from_step", "to_step", "open")

    def __init__(
        self, lock: str, tid: tuple, from_step: int, to_step: int, open: bool = False
    ) -> None:
        super().__init__()
        self.lock = lock
        self.tid = tid
        self.from_step = from_step
        self.to_step = to_step
        self.open = open

    def payload(self) -> dict:
        return {
            "lock": self.lock,
            "tid": tid_str(self.tid),
            "from_step": self.from_step,
            "to_step": self.to_step,
            "open": self.open,
        }


class HappensBeforeEdge(Event):
    """One cross-thread ordering edge observed by the happens-before
    tracker — the dynamic counterpart of the paper's synchronization
    edges.  ``mechanism`` is one of ``release-acquire`` (per lock),
    ``set-wait`` (per event), ``fork``/``join`` (cobegin/coend), or
    ``barrier``; ``name`` is the lock/event/barrier involved (empty for
    fork/join)."""

    kind = "hb-edge"
    __slots__ = ("step", "mechanism", "src_tid", "dst_tid", "name")

    def __init__(
        self, step: int, mechanism: str, src_tid: tuple, dst_tid: tuple, name: str = ""
    ) -> None:
        super().__init__()
        self.step = step
        self.mechanism = mechanism
        self.src_tid = src_tid
        self.dst_tid = dst_tid
        self.name = name

    def payload(self) -> dict:
        return {
            "step": self.step,
            "mechanism": self.mechanism,
            "src": tid_str(self.src_tid),
            "dst": tid_str(self.dst_tid),
            "name": self.name,
        }


class DynamicRaceObserved(Event):
    """The online detector found two conflicting accesses with
    incomparable vector clocks.  ``step`` is the global step of the
    *second* access (the detection point); the replayable witness lives
    on the :class:`repro.dynamic.hb.DynamicRace` record, not here."""

    kind = "dynamic-race"
    __slots__ = ("step", "var", "race_kind", "tid_a", "pc_a", "tid_b", "pc_b")

    def __init__(
        self,
        step: int,
        var: str,
        race_kind: str,
        tid_a: tuple,
        pc_a: int,
        tid_b: tuple,
        pc_b: int,
    ) -> None:
        super().__init__()
        self.step = step
        self.var = var
        self.race_kind = race_kind
        self.tid_a = tid_a
        self.pc_a = pc_a
        self.tid_b = tid_b
        self.pc_b = pc_b

    def payload(self) -> dict:
        return {
            "step": self.step,
            "var": self.var,
            "race_kind": self.race_kind,
            "tid_a": tid_str(self.tid_a),
            "pc_a": self.pc_a,
            "tid_b": tid_str(self.tid_b),
            "pc_b": self.pc_b,
        }
