"""Deterministic work counters — the machine-independent cost signal.

Wall-clock numbers drift with the machine, the thermal state, and the
interpreter; the *work* an algorithm does — statements visited, lattice
evaluations, π arguments examined — does not.  Every pipeline phase
reports its operation counts through the tracer's metrics registry
under a ``work.<phase>.<metric>`` name, so an enabled trace carries a
noise-free cost profile next to the wall times, and two runs of the
same input on any two machines produce **identical** work counters.

The benchmark layer (:mod:`repro.bench`) uses these counters as the
primary regression signal: a pass that starts visiting twice as many
nodes fails the gate even when the wall-clock difference drowns in
timer noise.

Conventions
-----------

* Counter names are ``work.<phase>.<metric>``; ``<phase>`` matches the
  span the phase runs under (``constprop``, ``pdce``, ``licm``,
  ``lvn``, ``cssa``, ``rewrite-pi``, ``ordering``, ``pfg``,
  ``identify-mutex``), so profiles join wall time and work by name.
* Passes report **once per run** via :func:`record_work` with locally
  accumulated integers — the disabled-tracer cost of a pass is one
  function call and an ``enabled`` check, preserving the <5% disabled
  overhead bound of ``bench_trace_overhead.py``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.trace import NullTracer, Tracer, get_tracer

__all__ = [
    "WORK_PREFIX",
    "WorkProfile",
    "profile_source",
    "record_work",
    "total_work",
    "work_by_phase",
    "work_counters",
]

WORK_PREFIX = "work."

AnyTracer = Union[Tracer, NullTracer]


def record_work(phase: str, **counts: int) -> None:
    """Report a phase's deterministic operation counts, once per run.

    No-op (one attribute read) when tracing is disabled.  Counts
    accumulate across multiple runs under the same tracer, like every
    other counter.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return
    for metric, amount in counts.items():
        tracer.metrics.counter(f"{WORK_PREFIX}{phase}.{metric}").inc(amount)


def work_counters(tracer: AnyTracer) -> dict[str, int]:
    """All ``work.*`` counters of a tracer, name → value (sorted)."""
    return {
        name: counter.value
        for name, counter in sorted(tracer.metrics.counters.items())
        if name.startswith(WORK_PREFIX)
    }


def work_by_phase(counters: dict[str, int]) -> dict[str, dict[str, int]]:
    """Group ``work.<phase>.<metric>`` counters by phase."""
    phases: dict[str, dict[str, int]] = {}
    for name, value in counters.items():
        if not name.startswith(WORK_PREFIX):
            continue
        phase, _, metric = name[len(WORK_PREFIX):].partition(".")
        phases.setdefault(phase, {})[metric or "count"] = value
    return phases


def total_work(counters: dict[str, int]) -> int:
    """Sum of every ``work.*`` counter — the one-number cost signal."""
    return sum(v for n, v in counters.items() if n.startswith(WORK_PREFIX))


class WorkProfile:
    """One profiled pipeline run: spans, work counters, and the report."""

    def __init__(self, tracer: Tracer, report) -> None:
        self.tracer = tracer
        self.report = report
        self.counters = work_counters(tracer)

    @property
    def phases(self) -> dict[str, dict[str, int]]:
        return work_by_phase(self.counters)

    def total(self) -> int:
        return total_work(self.counters)

    def wall_ms(self) -> dict[str, float]:
        """Span name → wall milliseconds (emission order preserved)."""
        return {
            span.name: span.duration * 1e3 for span in self.tracer.spans()
        }

    def as_dict(self) -> dict:
        return {
            "wall_ms": {k: round(v, 6) for k, v in self.wall_ms().items()},
            "work": self.counters,
            "total_work": self.total(),
        }


def profile_source(
    source: str,
    passes: tuple[str, ...] = ("constprop", "pdce", "licm"),
    use_mutex: bool = True,
    tracer: Optional[Tracer] = None,
) -> WorkProfile:
    """Run the optimization pipeline on ``source`` under a fresh tracer
    and return its :class:`WorkProfile` (wall times + work counters).
    """
    from repro.session import Session

    tracer = tracer if tracer is not None else Tracer()
    report = Session().optimize(
        source, passes=passes, use_mutex=use_mutex, trace=tracer
    )
    return WorkProfile(tracer, report)
