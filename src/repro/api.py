"""High-level API — typed results over :mod:`repro.session`.

The canonical surface is :func:`compile_source`: name a stage, get back
a frozen typed result (:class:`~repro.results.CompileResult` /
:class:`~repro.results.DiagnoseResult` /
:class:`~repro.results.OptimizeResult`) whose ``as_dict()`` is exactly
the wire payload the ``repro serve`` daemon returns for the same
request.  Three stage-specific helpers wrap it::

    from repro import api

    result = api.diagnose(source)          # DiagnoseResult
    result.clean, result.warnings, result.races

    result = api.optimize(source)          # OptimizeResult
    result.listing, result.removed, result.moved

    result = api.compile_source(source, stage="dot")
    result.artifacts["dot"]

Every call gets an **ephemeral** session by default (results are
recomputed from scratch); pass a long-lived
:class:`~repro.session.session.Session` via ``session=`` to reuse
cached artifacts across calls — the result's ``provenance`` then shows
the cache traffic.

Legacy surface (deprecated since 1.2, kept until 2.0 — see
``docs/API.md``): :func:`analyze_source`, :func:`diagnose_source`,
:func:`optimize_source` and :func:`pfg_dot` return the historical
loose shapes (live ``CSSAMEForm`` / ``(warnings, races)`` tuple /
``OptimizationReport`` / DOT string).  They keep working bit-for-bit
but emit :class:`DeprecationWarning`; new code that needs live
compiler objects should hold a ``Session`` directly, and code that
needs data should take the typed results.  :func:`front_end` and
:func:`listing` are *not* deprecated — structured IR in, text out is
already a typed contract.
"""

from __future__ import annotations

import warnings as _warnings
from typing import Any, Mapping, Optional

from repro.cssame.builder import CSSAMEForm
from repro.errors import UnsupportedRequest
from repro.ir.printer import format_ir
from repro.ir.structured import ProgramIR
from repro.mutex.races import RaceReport
from repro.mutex.warnings import SyncWarning
from repro.obs.prof import WORK_PREFIX
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.opt.pipeline import OptimizationReport
from repro.report import measure_form
from repro.results import (
    CompileResult,
    DiagnoseResult,
    OptimizeResult,
    Provenance,
    result_class_for,
)
from repro.session.session import Session

__all__ = [
    "SERVE_STAGES",
    "analyze",
    "analyze_source",
    "compile_source",
    "diagnose",
    "diagnose_source",
    "front_end",
    "listing",
    "optimize",
    "optimize_source",
    "pfg_dot",
    "stage_options",
]

#: stages a compile request may name, and the option schema of each
#: (name → default).  This table *is* the wire contract: the server
#: validates requests against it and ``docs/API.md`` documents it.
SERVE_STAGES: dict[str, dict[str, Any]] = {
    "analyze": {"prune": True, "prune_events": True},
    "diagnostics": {},
    "optimized": {
        "passes": ("constprop", "pdce", "licm"),
        "use_mutex": True,
        "fold_output_uses": True,
        "simplify": True,
    },
    "dot": {"title": "PFG", "prune": True},
    "bytecode": {},
    "audit": {
        "runs": 16,
        "seed_base": 0,
        "fuel": 1_000_000,
        "explore": True,
        "max_states": 20_000,
    },
}


def stage_options(stage: str, options: Optional[Mapping[str, Any]] = None) -> dict:
    """Validate and default a request's options against the stage schema.

    Raises :class:`~repro.errors.UnsupportedRequest` (``E_UNSUPPORTED``)
    for an unknown stage or option name — the same typed error a server
    frame carries.
    """
    schema = SERVE_STAGES.get(stage)
    if schema is None:
        raise UnsupportedRequest(
            f"unknown stage {stage!r} (expected one of {sorted(SERVE_STAGES)})"
        )
    merged = dict(schema)
    for name, value in (options or {}).items():
        if name not in schema:
            raise UnsupportedRequest(
                f"stage {stage!r} takes no option {name!r} "
                f"(valid: {sorted(schema) or 'none'})"
            )
        # JSON has no tuples; normalise list-valued options.
        merged[name] = tuple(value) if isinstance(value, list) else value
    return merged


def _session(session: Optional[Session]) -> Session:
    """The session backing one facade call (ephemeral when omitted)."""
    return session if session is not None else Session()


# -- stage handlers: (session, source, options) -> (artifacts, diagnostics) --


def _run_analyze(sess: Session, source: str, opts: dict):
    form = sess.analyze(
        source, prune=opts["prune"], prune_events=opts["prune_events"]
    )
    rewrite = None
    if form.rewrite_stats is not None:
        rewrite = {
            "args_removed": form.rewrite_stats.args_removed,
            "pis_deleted": form.rewrite_stats.pis_deleted,
        }
    artifacts = {
        "listing": format_ir(form.program),
        "form": "CSSAME" if opts["prune"] else "CSSA",
        "metrics": measure_form(form.program).as_dict(),
        "mutex_bodies": len(form.mutex_bodies()),
        "rewrite": rewrite,
    }
    return artifacts, ()


def _run_diagnostics(sess: Session, source: str, opts: dict):
    warnings, races = sess.diagnose(source)
    frames = [
        {"kind": w.kind, "message": w.message, "blocks": list(w.blocks)}
        for w in warnings
    ]
    frames += [
        {"kind": "race", "message": r.message(), "race": r.as_dict()}
        for r in races
    ]
    artifacts = {"warnings": len(warnings), "races": len(races)}
    return artifacts, tuple(frames)


def _run_optimized(sess: Session, source: str, opts: dict):
    report = sess.optimize(
        source,
        passes=tuple(opts["passes"]),
        use_mutex=opts["use_mutex"],
        fold_output_uses=opts["fold_output_uses"],
        simplify=opts["simplify"],
    )
    artifacts = {
        "listing": report.listings["final"],
        "phases": sorted(report.listings),
        "constants": len(report.constprop.constants) if report.constprop else 0,
        "removed": report.pdce.total_removed if report.pdce else 0,
        "moved": report.licm.total_moved if report.licm else 0,
        "statements": report.statement_count(),
        "metrics": measure_form(report.program).as_dict(),
    }
    return artifacts, ()


def _run_dot(sess: Session, source: str, opts: dict):
    text = sess.dot(source, title=opts["title"], prune=opts["prune"])
    return {"dot": text}, ()


def _run_bytecode(sess: Session, source: str, opts: dict):
    program = sess.bytecode(source)
    artifacts = {
        "listing": program.disassemble(),
        "instructions": len(program),
        "entry": program.entry,
    }
    return artifacts, ()


def _run_audit(sess: Session, source: str, opts: dict):
    from repro.dynamic.audit import audit_source

    report = audit_source(
        source,
        runs=opts["runs"],
        seed_base=opts["seed_base"],
        fuel=opts["fuel"],
        explore_states=opts["max_states"],
        do_explore=opts["explore"],
        session=sess,
    )
    frames = [
        {"kind": f"race-{f.status}", "message": f.message()}
        for f in report.findings
    ]
    frames += [
        {"kind": "race-dynamic-only", "message": r.message()}
        for r in report.dynamic_only
    ]
    artifacts = {
        "audit": report.as_dict(),
        "sound": report.sound,
        "exit": report.exit_code(strict=False),
        "exit_strict": report.exit_code(strict=True),
    }
    return artifacts, tuple(frames)


_HANDLERS = {
    "analyze": _run_analyze,
    "diagnostics": _run_diagnostics,
    "optimized": _run_optimized,
    "dot": _run_dot,
    "bytecode": _run_bytecode,
    "audit": _run_audit,
}

#: wire stage → (stage-graph node, option names that feed its key)
_GRAPH_STAGE = {
    "analyze": ("cssame", ("prune", "prune_events")),
    "diagnostics": ("diagnostics", ()),
    "optimized": (
        "optimized",
        ("passes", "use_mutex", "fold_output_uses", "simplify"),
    ),
    "dot": ("dot", ("title", "prune")),
    "bytecode": ("bytecode", ()),
}


def compile_source(
    source: str,
    stage: str = "diagnostics",
    options: Optional[Mapping[str, Any]] = None,
    session: Optional[Session] = None,
    trace: Optional[Tracer] = None,
) -> CompileResult:
    """Run one stage journey and return its typed result.

    ``stage`` names a wire stage (see :data:`SERVE_STAGES`); ``options``
    is validated against the stage's schema.  The result's ``as_dict()``
    is exactly what ``repro serve`` would answer for the same request.
    """
    opts = stage_options(stage, options)
    sess = _session(session)
    # Always run under a private tracer so the work/cache counters are
    # exact for *this* request, then forward the capture to the caller's
    # tracer (or the ambient --trace one) so nothing is lost to it.
    tracer = Tracer()
    with use_tracer(tracer):
        artifacts, diagnostics = _HANDLERS[stage](sess, source, opts)
    ambient = trace if trace is not None else get_tracer()
    if getattr(ambient, "enabled", False) and ambient is not tracer:
        ambient.absorb(tracer)
    counters = tracer.metrics.counters
    work = {
        name: counter.value
        for name, counter in sorted(counters.items())
        if name.startswith(WORK_PREFIX)
    }
    artifact_key = None
    if stage in _GRAPH_STAGE:
        node, names = _GRAPH_STAGE[stage]
        artifact_key = sess.artifact_key(
            node, source, **{n: opts[n] for n in names}
        )
    provenance = Provenance(
        source_key=_source_key(source),
        stage=stage,
        artifact_key=artifact_key,
        cache_hits=_counter_value(counters, "session.cache.hit"),
        cache_misses=_counter_value(counters, "session.cache.miss"),
    )
    return result_class_for(stage)(
        stage=stage,
        artifacts=artifacts,
        provenance=provenance,
        diagnostics=diagnostics,
        work=work,
    )


def _source_key(source: str) -> str:
    from repro.session.artifacts import source_key

    return source_key(source)


def _counter_value(counters: Mapping[str, Any], name: str) -> int:
    counter = counters.get(name)
    return counter.value if counter is not None else 0


# -- typed stage helpers -----------------------------------------------------


def analyze(
    source: str,
    prune: bool = True,
    session: Optional[Session] = None,
    trace: Optional[Tracer] = None,
) -> CompileResult:
    """Typed CSSAME/CSSA analysis (listing + form metrics)."""
    return compile_source(
        source, "analyze", {"prune": prune}, session=session, trace=trace
    )


def diagnose(
    source: str,
    session: Optional[Session] = None,
    trace: Optional[Tracer] = None,
) -> DiagnoseResult:
    """Typed Section 6 diagnostics (warnings + races as frames)."""
    result = compile_source(source, "diagnostics", session=session, trace=trace)
    assert isinstance(result, DiagnoseResult)
    return result


def optimize(
    source: str,
    passes: tuple[str, ...] = ("constprop", "pdce", "licm"),
    use_mutex: bool = True,
    fold_output_uses: bool = True,
    session: Optional[Session] = None,
    trace: Optional[Tracer] = None,
) -> OptimizeResult:
    """Typed optimization pipeline result (listing + pass stats)."""
    result = compile_source(
        source,
        "optimized",
        {
            "passes": tuple(passes),
            "use_mutex": use_mutex,
            "fold_output_uses": fold_output_uses,
        },
        session=session,
        trace=trace,
    )
    assert isinstance(result, OptimizeResult)
    return result


# -- supported non-deprecated helpers ---------------------------------------


def front_end(source: str, session: Optional[Session] = None) -> ProgramIR:
    """Parse and lower ``source`` to structured IR (a private copy)."""
    return _session(session).front_end(source)


def listing(program: ProgramIR) -> str:
    """Source-like listing of a program in any form."""
    return format_ir(program)


# -- deprecated legacy shims (loose returns; removed in 2.0) -----------------


def _deprecated(name: str, replacement: str) -> None:
    _warnings.warn(
        f"repro.api.{name} is deprecated since 1.2 (removal in 2.0); "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def analyze_source(
    source: str,
    prune: bool = True,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> CSSAMEForm:
    """Deprecated: the live CSSAME form (``prune=False`` → plain CSSA).

    Use :meth:`Session.analyze` for the live form, or :func:`analyze`
    for the typed result.
    """
    _deprecated("analyze_source", "Session.analyze or api.analyze")
    return _session(session).analyze(source, prune=prune, trace=trace)


def optimize_source(
    source: str,
    passes: tuple[str, ...] = ("constprop", "pdce", "licm"),
    use_mutex: bool = True,
    fold_output_uses: bool = True,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> OptimizationReport:
    """Deprecated: the live :class:`OptimizationReport`.

    Use :meth:`Session.optimize` for the live report, or
    :func:`optimize` for the typed result.
    """
    _deprecated("optimize_source", "Session.optimize or api.optimize")
    return _session(session).optimize(
        source,
        passes=passes,
        use_mutex=use_mutex,
        fold_output_uses=fold_output_uses,
        trace=trace,
    )


def diagnose_source(
    source: str,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> tuple[list[SyncWarning], list[RaceReport]]:
    """Deprecated: the loose ``(warnings, races)`` tuple.

    Use :meth:`Session.diagnose` for live findings, or :func:`diagnose`
    for the typed result.
    """
    _deprecated("diagnose_source", "Session.diagnose or api.diagnose")
    return _session(session).diagnose(source, trace=trace)


def pfg_dot(
    source: str,
    title: str = "PFG",
    prune: bool = True,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> str:
    """Deprecated: the DOT text of the PFG.

    Use :meth:`Session.dot`, or ``compile_source(src, "dot")``.
    """
    _deprecated("pfg_dot", "Session.dot or api.compile_source(..., 'dot')")
    return _session(session).dot(source, title=title, prune=prune, trace=trace)
