"""High-level one-call API — a thin facade over :mod:`repro.session`.

These helpers keep the original one-shot signatures for the common
journeys:

* :func:`front_end` — source text → structured IR;
* :func:`analyze_source` — source → CSSAME (or plain CSSA) form;
* :func:`optimize_source` — source → optimized program + report;
* :func:`diagnose_source` — source → Section 6 warnings and race
  reports;
* :func:`pfg_dot` — source → DOT rendering of the PFG;
* :func:`listing` — program → source-like listing.

Since the :mod:`repro.session` redesign each call delegates to a
:class:`~repro.session.session.Session` walking the pipeline stage
graph.  By default every call gets an **ephemeral** session: results
are bit-identical to the historical implementations, repeated calls
recompute from scratch, and a traced call observes one full pipeline
execution (the legacy observability contract).  Pass a long-lived
session via the ``session=`` keyword — or use :class:`Session`
directly, the canonical surface per ``docs/API.md`` — to reuse cached
artifacts across calls::

    from repro.session import Session
    from repro import api

    session = Session()
    api.analyze_source(src, session=session)
    api.diagnose_source(src, session=session)   # front end cached
    api.pfg_dot(src, session=session)           # pure cache walk

These free functions are the supported compatibility surface — they are
the facade, so they emit no deprecation warnings.
"""

from __future__ import annotations

from typing import Optional

from repro.cssame.builder import CSSAMEForm
from repro.ir.printer import format_ir
from repro.ir.structured import ProgramIR
from repro.mutex.races import RaceReport
from repro.mutex.warnings import SyncWarning
from repro.obs.trace import Tracer
from repro.opt.pipeline import OptimizationReport
from repro.session.session import Session

__all__ = [
    "analyze_source",
    "diagnose_source",
    "front_end",
    "listing",
    "optimize_source",
    "pfg_dot",
]


def _session(session: Optional[Session]) -> Session:
    """The session backing one facade call (ephemeral when omitted)."""
    return session if session is not None else Session()


def front_end(source: str, session: Optional[Session] = None) -> ProgramIR:
    """Parse and lower ``source`` to structured IR (a private copy)."""
    return _session(session).front_end(source)


def analyze_source(
    source: str,
    prune: bool = True,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> CSSAMEForm:
    """Build the CSSAME form (``prune=False`` → plain CSSA) of ``source``."""
    return _session(session).analyze(source, prune=prune, trace=trace)


def optimize_source(
    source: str,
    passes: tuple[str, ...] = ("constprop", "pdce", "licm"),
    use_mutex: bool = True,
    fold_output_uses: bool = True,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> OptimizationReport:
    """Run the paper's optimization pipeline on ``source``."""
    return _session(session).optimize(
        source,
        passes=passes,
        use_mutex=use_mutex,
        fold_output_uses=fold_output_uses,
        trace=trace,
    )


def diagnose_source(
    source: str,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> tuple[list[SyncWarning], list[RaceReport]]:
    """Section 6 diagnostics: sync-structure warnings (including static
    lock-order deadlock risks) + potential data races."""
    return _session(session).diagnose(source, trace=trace)


def pfg_dot(
    source: str,
    title: str = "PFG",
    prune: bool = True,
    trace: Optional[Tracer] = None,
    session: Optional[Session] = None,
) -> str:
    """DOT rendering of the PFG of ``source``.

    ``prune=False`` renders the plain-CSSA graph; ``trace=`` captures
    the run like every other helper here.
    """
    return _session(session).dot(source, title=title, prune=prune, trace=trace)


def listing(program: ProgramIR) -> str:
    """Source-like listing of a program in any form."""
    return format_ir(program)
