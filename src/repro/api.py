"""High-level one-call API.

These helpers wire the whole stack together for the common journeys:

* :func:`front_end` — source text → structured IR;
* :func:`analyze_source` — source → CSSAME (or plain CSSA) form;
* :func:`optimize_source` — source → optimized program + report;
* :func:`diagnose_source` — source → Section 6 warnings and race
  reports;
* :func:`pfg_dot` — source → DOT rendering of the PFG.
"""

from __future__ import annotations

import contextlib
from typing import ContextManager, Optional

from repro.cfg.dot import to_dot
from repro.cssame.builder import CSSAMEForm, build_cssame
from repro.ir.lower import lower_program
from repro.ir.printer import format_ir
from repro.ir.structured import ProgramIR
from repro.lang.parser import parse
from repro.mutex.deadlock import DeadlockRisk, detect_lock_order_cycles
from repro.mutex.races import RaceReport, detect_races
from repro.mutex.warnings import SyncWarning, check_synchronization
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.opt.pipeline import OptimizationReport, optimize

__all__ = [
    "analyze_source",
    "diagnose_source",
    "front_end",
    "optimize_source",
    "pfg_dot",
]


def _tracing(trace: Optional[Tracer]) -> ContextManager:
    """Install ``trace`` for the duration of a call; ``None`` keeps the
    process-global tracer (the zero-overhead no-op by default)."""
    if trace is None:
        return contextlib.nullcontext()
    return use_tracer(trace)


def front_end(source: str) -> ProgramIR:
    """Parse and lower ``source`` to structured IR."""
    return lower_program(parse(source))


def analyze_source(
    source: str, prune: bool = True, trace: Optional[Tracer] = None
) -> CSSAMEForm:
    """Build the CSSAME form (``prune=False`` → plain CSSA) of ``source``."""
    with _tracing(trace):
        return build_cssame(front_end(source), prune=prune)


def optimize_source(
    source: str,
    passes: tuple[str, ...] = ("constprop", "pdce", "licm"),
    use_mutex: bool = True,
    fold_output_uses: bool = True,
    trace: Optional[Tracer] = None,
) -> OptimizationReport:
    """Run the paper's optimization pipeline on ``source``."""
    with _tracing(trace):
        program = front_end(source)
        return optimize(
            program,
            passes=passes,
            use_mutex=use_mutex,
            fold_output_uses=fold_output_uses,
        )


def diagnose_source(
    source: str, trace: Optional[Tracer] = None
) -> tuple[list[SyncWarning], list[RaceReport]]:
    """Section 6 diagnostics: sync-structure warnings (including static
    lock-order deadlock risks) + potential data races."""
    with _tracing(trace):
        form = analyze_source(source, prune=False)
        with get_tracer().span("diagnose") as span:
            warnings = check_synchronization(form.graph, form.structures)
            for risk in detect_lock_order_cycles(form.graph, form.structures):
                blocks = tuple(b for bs in risk.witnesses.values() for b in bs)
                warnings.append(
                    SyncWarning("deadlock-risk", risk.message(), blocks)
                )
            races = detect_races(form.graph, form.structures)
            span.set(warnings=len(warnings), races=len(races))
        return warnings, races


def pfg_dot(source: str, title: str = "PFG") -> str:
    """DOT rendering of the PFG (CSSAME form) of ``source``."""
    form = analyze_source(source)
    return to_dot(form.graph, title=title)


def listing(program: ProgramIR) -> str:
    """Source-like listing of a program in any form."""
    return format_ir(program)
