"""Exhaustive interleaving exploration (a tiny model checker).

Enumerates **every** schedule of a compiled program by depth-first
search over canonical machine states, memoizing the set of observable
outcome suffixes per state.  An *outcome* is the tuple of observable
events (``("print", values)`` / ``("call", name, values)``) produced by
one complete schedule, optionally terminated by a ``("deadlock",)`` or
``("error", msg)`` marker; a state cycle (livelock) contributes a
``("livelock",)`` marker.

The verification suite uses :func:`explore` to prove that an optimized
program has exactly the same outcome set as the original — for every
schedule, not just sampled ones.

State canonicalization: threads are keyed by their spawn path (so two
schedules reaching the same configuration share a state), zero-valued
variables are dropped from memory, and output produced so far is *not*
part of the state (outcomes are composed from memoized suffixes).
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, Optional, Union

from repro.errors import VMError
from repro.ir.structured import ProgramIR
from repro.obs.trace import get_tracer
from repro.opt.folding import eval_expr_concrete
from repro.vm.bytecode import Op, VMProgram
from repro.vm.compile import compile_program
from repro.vm.machine import default_functions

__all__ = ["ExplorationResult", "explore", "find_witness"]

# A thread record: (tid, pc, status, pending) with status "r"un/"j"oin.
_ThreadRec = tuple


class ExplorationResult:
    """All behaviours of a program."""

    def __init__(
        self, outcomes: frozenset, states: int, complete: bool
    ) -> None:
        #: frozenset of outcome tuples (see module docstring)
        self.outcomes = outcomes
        #: number of distinct machine states visited
        self.states = states
        #: False when the state budget was exhausted
        self.complete = complete

    @property
    def can_deadlock(self) -> bool:
        return any(o and o[-1] == ("deadlock",) for o in self.outcomes)

    @property
    def can_livelock(self) -> bool:
        return any(o and o[-1] == ("livelock",) for o in self.outcomes)

    def print_outcomes(self) -> frozenset:
        """Outcomes reduced to printed values only (no call events)."""
        return frozenset(
            tuple(e for e in o if e[0] in ("print", "deadlock", "error", "livelock"))
            for o in self.outcomes
        )

    @property
    def print_classes(self) -> int:
        """Number of distinct print-level outcome classes — the paper's
        observable-behaviour count (what sampled schedules are measured
        against in :mod:`repro.dynamic.coverage`)."""
        return len(self.print_outcomes())

    def coverage_of(self, sampled: Iterable[tuple]) -> dict:
        """Schedule-coverage summary of ``sampled`` outcome keys (from
        ``Execution.output_key()``) against this exhaustive result."""
        seen = set(sampled)
        hit = seen & self.outcomes
        return {
            "states": self.states,
            "complete": self.complete,
            "outcome_classes": len(self.outcomes),
            "print_classes": self.print_classes,
            "sampled_classes": len(seen),
            "sampled_hit": len(hit),
            "outcome_coverage": (
                round(len(hit) / len(self.outcomes), 4) if self.outcomes else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ExplorationResult(outcomes={len(self.outcomes)}, "
            f"states={self.states}, complete={self.complete})"
        )


class _Explorer:
    def __init__(
        self,
        program: VMProgram,
        functions: Callable[[str, list[int]], int],
        max_states: int,
    ) -> None:
        self.program = program
        self.functions = functions
        self.max_states = max_states
        self.memo: dict[tuple, frozenset] = {}
        self.gray: set[tuple] = set()
        self.truncated = False

    # -- state helpers -----------------------------------------------------

    def initial_state(self) -> tuple:
        threads = ((((), self.program.entry, "r", 0)),)
        return (threads, (), (), ())

    def _eval(self, expr, memory: dict) -> int:
        return eval_expr_concrete(
            expr, lambda name: memory.get(name, 0), self.functions
        )

    def _runnable(self, state: tuple) -> list[int]:
        threads, memory_t, locks_t, events_t = state
        locks = dict(locks_t)
        events = set(events_t)
        out = []
        for i, (tid, pc, status, _pending) in enumerate(threads):
            if status != "r":
                continue
            instr = self.program.instrs[pc]
            if instr.op is Op.LOCK and locks.get(instr.name) is not None:
                continue
            if instr.op is Op.WAIT and instr.name not in events:
                continue
            out.append(i)
        return out

    def _step(self, state: tuple, index: int) -> tuple[Optional[tuple], tuple]:
        """Execute thread ``index``; returns (event or None, next state)."""
        threads_t, memory_t, locks_t, events_t = state
        threads = {t[0]: list(t) for t in threads_t}
        memory = dict(memory_t)
        locks = dict(locks_t)
        events = set(events_t)

        tid = threads_t[index][0]
        rec = threads[tid]
        instr = self.program.instrs[rec[1]]
        op = instr.op
        event: Optional[tuple] = None

        if op is Op.ASSIGN:
            memory[instr.name] = self._eval(instr.expr, memory)
            rec[1] += 1
        elif op is Op.PRINT:
            event = ("print", tuple(self._eval(e, memory) for e in instr.exprs))
            rec[1] += 1
        elif op is Op.CALL:
            event = (
                "call",
                instr.name,
                tuple(self._eval(e, memory) for e in instr.exprs),
            )
            rec[1] += 1
        elif op is Op.LOCK:
            locks[instr.name] = tid
            rec[1] += 1
        elif op is Op.UNLOCK:
            if locks.get(instr.name) != tid:
                raise VMError(f"unlock of un-owned lock {instr.name}")
            del locks[instr.name]
            rec[1] += 1
        elif op is Op.SET:
            events.add(instr.name)
            rec[1] += 1
        elif op is Op.WAIT:
            rec[1] += 1
        elif op is Op.BARRIER:
            waiting = [
                t_id
                for t_id, t_rec in threads.items()
                if t_rec[2] == "b"
                and self.program.instrs[t_rec[1]].op is Op.BARRIER
                and self.program.instrs[t_rec[1]].name == instr.name
            ]
            if len(waiting) + 1 >= (instr.target or 1):
                for t_id in waiting:
                    threads[t_id][2] = "r"
                    threads[t_id][1] += 1
                rec[1] += 1
            else:
                rec[2] = "b"
        elif op is Op.JUMP:
            rec[1] = instr.target
        elif op is Op.BRANCH:
            if self._eval(instr.expr, memory) != 0:
                rec[1] += 1
            else:
                rec[1] = instr.target
        elif op is Op.COBEGIN:
            rec[2] = "j"
            rec[3] = len(instr.entries)
            rec[1] = instr.target
            for i, entry in enumerate(instr.entries):
                child_tid = tid + (i,)
                threads[child_tid] = [child_tid, entry, "r", 0]
        elif op is Op.END_THREAD or op is Op.HALT:
            del threads[tid]
            if op is Op.END_THREAD:
                parent = threads[tid[:-1]]
                parent[3] -= 1
                if parent[3] == 0:
                    parent[2] = "r"
        else:  # pragma: no cover - defensive
            raise VMError(f"unknown instruction {instr!r}")

        new_threads = tuple(
            tuple(threads[k]) for k in sorted(threads.keys())
        )
        new_memory = tuple(sorted((k, v) for k, v in memory.items() if v != 0))
        new_locks = tuple(sorted(locks.items()))
        new_events = tuple(sorted(events))
        return event, (new_threads, new_memory, new_locks, new_events)

    # -- DFS with memoized suffixes ---------------------------------------------

    def outcomes(self, state: tuple) -> frozenset:
        cached = self.memo.get(state)
        if cached is not None:
            return cached
        if state in self.gray:
            return frozenset({(("livelock",),)})
        threads = state[0]
        if not threads:
            result = frozenset({()})
            self.memo[state] = result
            return result
        if len(self.memo) >= self.max_states:
            self.truncated = True
            return frozenset({(("truncated",),)})

        self.gray.add(state)
        runnable = self._runnable(state)
        collected: set = set()
        if not runnable:
            collected.add((("deadlock",),))
        else:
            for index in runnable:
                try:
                    event, next_state = self._step(state, index)
                except VMError as exc:
                    collected.add((("error", str(exc)),))
                    continue
                suffixes = self.outcomes(next_state)
                for suffix in suffixes:
                    if event is None:
                        collected.add(suffix)
                    else:
                        collected.add((event,) + suffix)
        self.gray.remove(state)
        result = frozenset(collected)
        # Do not memoize across a truncation (partial results poison).
        if not self.truncated:
            self.memo[state] = result
        return result


def find_witness(
    program: Union[VMProgram, ProgramIR],
    outcome: tuple,
    functions: Optional[Callable[[str, list[int]], int]] = None,
    max_states: int = 200_000,
) -> Optional[list[tuple]]:
    """Find a schedule (list of thread ids, in step order) whose
    observable outcome is exactly ``outcome``.

    Used to turn an equivalence-check counterexample ("the transformed
    program can print X") into a concrete replayable interleaving.
    Returns ``None`` when no schedule produces the outcome within the
    state budget.
    """
    if isinstance(program, ProgramIR):
        program = compile_program(program)
    explorer = _Explorer(program, functions or default_functions, max_states)

    # Depth-first search over (state, produced-prefix) pairs.  The memo
    # keyed by (state, remaining-suffix) bounds the search.
    seen: set[tuple] = set()

    def dfs(state: tuple, remaining: tuple, schedule: list) -> Optional[list]:
        key = (state, remaining)
        if key in seen or len(seen) > max_states:
            return None
        seen.add(key)
        threads = state[0]
        if not threads:
            return list(schedule) if not remaining else None
        runnable = explorer._runnable(state)
        if not runnable:
            # Terminal deadlock: matches only the deadlock marker.
            if remaining == (("deadlock",),):
                return list(schedule)
            return None
        for index in runnable:
            tid = threads[index][0]
            try:
                event, next_state = explorer._step(state, index)
            except VMError:
                continue
            if event is None:
                next_remaining = remaining
            elif remaining and remaining[0] == event:
                next_remaining = remaining[1:]
            else:
                continue  # produced an event the outcome doesn't want
            schedule.append(tid)
            found = dfs(next_state, next_remaining, schedule)
            if found is not None:
                return found
            schedule.pop()
        return None

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    tracer = get_tracer()
    try:
        with tracer.span("find-witness", max_states=max_states) as span:
            schedule = dfs(explorer.initial_state(), tuple(outcome), [])
            span.set(
                found=schedule is not None,
                states_considered=len(seen),
                schedule_length=0 if schedule is None else len(schedule),
            )
        return schedule
    finally:
        sys.setrecursionlimit(old_limit)


def explore(
    program: Union[VMProgram, ProgramIR],
    functions: Optional[Callable[[str, list[int]], int]] = None,
    max_states: int = 200_000,
) -> ExplorationResult:
    """Enumerate every schedule of ``program``.

    Intended for small programs (the state space is exponential in the
    number of concurrent statements); ``max_states`` bounds the search
    and marks the result incomplete when hit.
    """
    if isinstance(program, ProgramIR):
        program = compile_program(program)
    explorer = _Explorer(program, functions or default_functions, max_states)
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    tracer = get_tracer()
    try:
        with tracer.span("explore", max_states=max_states) as span:
            outcomes = explorer.outcomes(explorer.initial_state())
            span.set(
                states=len(explorer.memo),
                outcomes=len(outcomes),
                complete=not explorer.truncated,
            )
    finally:
        sys.setrecursionlimit(old_limit)
    result = ExplorationResult(
        outcomes, states=len(explorer.memo), complete=not explorer.truncated
    )
    if tracer.enabled:
        tracer.counter("explore.states").inc(len(explorer.memo))
        tracer.counter("explore.outcomes").inc(len(outcomes))
        tracer.counter("explore.print_classes").inc(result.print_classes)
    return result
