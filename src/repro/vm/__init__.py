"""Interleaving virtual machine.

The authors ran their transformed C programs natively; our equivalent
testbed is a small VM with exactly the paper's memory model: a shared
address space with sequentially consistent interleaving at statement
granularity (every statement reads its operands and writes its target
atomically).

* :mod:`repro.vm.bytecode` / :mod:`repro.vm.compile` — flatten the
  structured IR into a PC-based instruction array (``cobegin`` spawns
  child threads; the parent joins).  SSA-form programs execute directly:
  φ terms are no-ops and π terms are copies, which is precisely the
  conventional-SSA runtime meaning.
* :mod:`repro.vm.machine` — a seeded random scheduler with fuel,
  deadlock detection, and per-lock hold-time instrumentation (used to
  measure what LICM buys).
* :mod:`repro.vm.explore` — an exhaustive interleaving explorer (a tiny
  model checker with state memoization) that enumerates *every*
  reachable output sequence of a small program; the verification suite
  uses it to prove optimizations preserve the full behaviour set.
"""

from repro.vm.bytecode import Instr, Op, VMProgram
from repro.vm.compile import compile_program
from repro.vm.machine import Execution, VirtualMachine, run_random
from repro.vm.explore import ExplorationResult, explore, find_witness

__all__ = [
    "ExplorationResult",
    "Execution",
    "Instr",
    "Op",
    "VMProgram",
    "VirtualMachine",
    "compile_program",
    "explore",
    "find_witness",
    "run_random",
]
