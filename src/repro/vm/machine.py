"""The interleaving virtual machine (seeded random scheduler).

Semantics:

* one instruction executes atomically per step (statement-granularity
  interleaving, the paper's memory model);
* unset variables read as 0;
* ``lock`` blocks while held by another thread (non-reentrant: a thread
  re-acquiring its own lock self-deadlocks, as with a plain pthreads
  mutex);
* ``wait`` blocks until the event has been ``set`` (events are sticky:
  Set with no Clear, as in the paper);
* ``print`` and opaque call *statements* are the observable events of a
  program; calls in expression position are pure and evaluated through a
  deterministic binding (user-suppliable).

Instrumentation: the machine counts, per lock, how many global steps it
was held and how many steps threads spent blocked on it — the metrics
the LICM benchmarks report.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Union

from repro.errors import DeadlockError, StepLimitExceeded, VMError
from repro.ir.structured import ProgramIR
from repro.obs.events import (
    ContextSwitch,
    LockAcquire,
    LockBlockedInterval,
    LockContention,
    LockHeldInterval,
    LockRelease,
    VMStep,
)
from repro.obs.trace import get_tracer
from repro.opt.folding import eval_expr_concrete
from repro.vm.bytecode import Instr, Op, VMProgram
from repro.vm.compile import compile_program

__all__ = ["Execution", "VirtualMachine", "default_functions", "run_random"]


def default_functions(name: str, args: list[int]) -> int:
    """Deterministic stand-in for opaque pure functions.

    Any pure deterministic binding is semantically admissible (the
    static analyses treat calls as unknown values); this one mixes the
    name and arguments so different calls give different values.
    """
    acc = sum(ord(c) for c in name) * 131
    for i, a in enumerate(args):
        acc = acc * 31 + (i + 1) * a
    return acc % 1009 - 504


class _Thread:
    __slots__ = ("tid", "pc", "status", "pending")

    def __init__(self, tid: tuple, pc: int) -> None:
        self.tid = tid
        self.pc = pc
        self.status = "run"  # "run" | "join" | "done"
        self.pending = 0  # children still running (status == "join")


class Execution:
    """The observable result of one run."""

    def __init__(self) -> None:
        #: sequence of ("print", values) / ("call", name, values) events
        self.events: list[tuple] = []
        self.steps = 0
        self.deadlocked = False
        #: lock name → total global steps the lock was held
        self.lock_held_steps: dict[str, int] = {}
        #: lock name → total steps threads spent blocked on it
        self.lock_blocked_steps: dict[str, int] = {}
        #: lock name → number of successful acquisitions
        self.lock_acquisitions: dict[str, int] = {}
        #: per-lock contention timeline: dicts with ``kind`` ("held" |
        #: "blocked"), ``lock``, ``tid`` (spawn-path tuple), ``from``/
        #: ``to`` global steps, and ``open`` (True when the interval was
        #: still running at run end — the deadlock signature)
        self.lock_intervals: list[dict] = []
        #: final shared memory
        self.memory: dict[str, int] = {}

    @property
    def printed(self) -> list[tuple]:
        return [e[1] for e in self.events if e[0] == "print"]

    def output_key(self) -> tuple:
        """Canonical observable outcome (for set comparisons)."""
        suffix: tuple = (("deadlock",),) if self.deadlocked else ()
        return tuple(self.events) + suffix

    def __repr__(self) -> str:  # pragma: no cover
        return f"Execution(events={len(self.events)}, steps={self.steps})"


class VirtualMachine:
    """Runs a compiled program under a seeded random scheduler."""

    def __init__(
        self,
        program: Union[VMProgram, ProgramIR],
        seed: int = 0,
        functions: Optional[Callable[[str, list[int]], int]] = None,
        fuel: int = 1_000_000,
        hb: Optional[object] = None,
    ) -> None:
        if isinstance(program, ProgramIR):
            program = compile_program(program)
        self.program = program
        self.rng = random.Random(seed)
        self.functions = functions or default_functions
        self.fuel = fuel

        self.memory: dict[str, int] = {}
        self.locks: dict[str, tuple] = {}  # lock name → owner tid
        self.events_set: set[str] = set()
        self.threads: dict[tuple, _Thread] = {}
        main = _Thread((), self.program.entry)
        self.threads[()] = main
        self.execution = Execution()
        #: the tracer in effect at construction time; with the default
        #: no-op tracer every hook below is one attribute read + branch
        self.tracer = get_tracer()
        #: optional happens-before tracker (repro.dynamic.hb.HBTracker);
        #: None keeps the default path at one attribute read + branch
        self.hb = hb
        self._last_tid: Optional[tuple] = None
        self._acquired_at: dict[str, int] = {}  # lock → step of acquisition
        self._blocked_since: dict[tuple, int] = {}  # (lock, tid) → step

    # -- expression evaluation ----------------------------------------------

    def _env(self, name: str) -> int:
        return self.memory.get(name, 0)

    def _eval(self, expr) -> int:
        return eval_expr_concrete(expr, self._env, self.functions)

    # -- scheduling ------------------------------------------------------------

    def _is_runnable(self, thread: _Thread) -> bool:
        if thread.status != "run":
            return False
        instr = self.program.instrs[thread.pc]
        if instr.op is Op.LOCK:
            return self.locks.get(instr.name) is None
        if instr.op is Op.WAIT:
            return instr.name in self.events_set
        return True

    def _alive(self) -> list[_Thread]:
        return [t for t in self.threads.values() if t.status != "done"]

    def run(self, raise_on_deadlock: bool = True) -> Execution:
        """Execute to completion (or deadlock / fuel exhaustion)."""
        ex = self.execution
        while True:
            alive = self._alive()
            if not alive:
                break
            runnable = [t for t in alive if self._is_runnable(t)]
            if not runnable:
                blocked = {
                    t.tid for t in alive if t.status in ("run", "barrier")
                }
                ex.deadlocked = True
                if raise_on_deadlock:
                    raise DeadlockError(blocked, self.locks)
                break
            if ex.steps >= self.fuel:
                raise StepLimitExceeded(self.fuel)
            thread = self.rng.choice(sorted(runnable, key=lambda t: t.tid))
            self._account_lock_time(alive)
            self._step(thread)
            ex.steps += 1
        ex.memory = dict(self.memory)
        self._flush_intervals()
        return ex

    def _flush_intervals(self) -> None:
        """Close still-open hold/blocked intervals at run end.

        An interval open at termination (a lock held across a deadlock,
        a thread still blocked) is recorded with ``open=True`` so the
        timeline stays a complete account of the run.
        """
        steps = self.execution.steps
        for lock, since in sorted(self._acquired_at.items()):
            self.execution.lock_intervals.append(
                {
                    "kind": "held",
                    "lock": lock,
                    "tid": self.locks.get(lock, ()),
                    "from": since,
                    "to": steps,
                    "open": True,
                }
            )
        self._acquired_at.clear()
        for (lock, tid), since in sorted(self._blocked_since.items()):
            self.execution.lock_intervals.append(
                {
                    "kind": "blocked",
                    "lock": lock,
                    "tid": tid,
                    "from": since,
                    "to": steps,
                    "open": True,
                }
            )
        self._blocked_since.clear()

    def _account_lock_time(self, alive: list[_Thread]) -> None:
        ex = self.execution
        tracer = self.tracer
        for lock_name in self.locks:
            ex.lock_held_steps[lock_name] = ex.lock_held_steps.get(lock_name, 0) + 1
        for t in alive:
            if t.status != "run":
                continue
            instr = self.program.instrs[t.pc]
            if instr.op is Op.LOCK and self.locks.get(instr.name) is not None:
                ex.lock_blocked_steps[instr.name] = (
                    ex.lock_blocked_steps.get(instr.name, 0) + 1
                )
                self._blocked_since.setdefault((instr.name, t.tid), ex.steps)
                if tracer.enabled:
                    tracer.event(
                        LockContention(
                            ex.steps, instr.name, t.tid, self.locks[instr.name]
                        )
                    )
                    tracer.counter(f"vm.lock_blocked_steps.{instr.name}").inc()

    # -- execution ---------------------------------------------------------------

    def _step(self, thread: _Thread) -> None:
        instr = self.program.instrs[thread.pc]
        op = instr.op
        tracer = self.tracer
        if self.hb is not None:
            self.hb.on_step(thread.tid, thread.pc, instr)
        if tracer.enabled:
            steps = self.execution.steps
            if self._last_tid is not None and self._last_tid != thread.tid:
                tracer.event(ContextSwitch(steps, self._last_tid, thread.tid))
                tracer.counter("vm.context_switches").inc()
            self._last_tid = thread.tid
            tracer.event(VMStep(steps, thread.tid, op.name))
            tracer.counter("vm.steps").inc()
        if op is Op.ASSIGN:
            self.memory[instr.name] = self._eval(instr.expr)
            thread.pc += 1
        elif op is Op.PRINT:
            values = tuple(self._eval(e) for e in instr.exprs)
            self.execution.events.append(("print", values))
            thread.pc += 1
        elif op is Op.CALL:
            values = tuple(self._eval(e) for e in instr.exprs)
            self.execution.events.append(("call", instr.name, values))
            thread.pc += 1
        elif op is Op.LOCK:
            if self.locks.get(instr.name) is not None:  # pragma: no cover
                raise VMError("scheduled a blocked lock acquire")
            self.locks[instr.name] = thread.tid
            ex = self.execution
            ex.lock_acquisitions[instr.name] = (
                ex.lock_acquisitions.get(instr.name, 0) + 1
            )
            self._acquired_at[instr.name] = ex.steps
            blocked_since = self._blocked_since.pop((instr.name, thread.tid), None)
            if blocked_since is not None:
                ex.lock_intervals.append(
                    {
                        "kind": "blocked",
                        "lock": instr.name,
                        "tid": thread.tid,
                        "from": blocked_since,
                        "to": ex.steps,
                        "open": False,
                    }
                )
            if tracer.enabled:
                tracer.event(LockAcquire(ex.steps, instr.name, thread.tid))
                tracer.counter(f"vm.lock_acquisitions.{instr.name}").inc()
                if blocked_since is not None:
                    tracer.event(
                        LockBlockedInterval(
                            instr.name, thread.tid, blocked_since, ex.steps
                        )
                    )
            thread.pc += 1
        elif op is Op.UNLOCK:
            owner = self.locks.get(instr.name)
            if owner != thread.tid:
                raise VMError(
                    f"unlock({instr.name}) by {thread.tid} but owner is {owner}"
                )
            del self.locks[instr.name]
            ex = self.execution
            acquired_at = self._acquired_at.pop(instr.name, 0)
            ex.lock_intervals.append(
                {
                    "kind": "held",
                    "lock": instr.name,
                    "tid": thread.tid,
                    "from": acquired_at,
                    "to": ex.steps,
                    "open": False,
                }
            )
            if tracer.enabled:
                held = ex.steps - acquired_at
                tracer.event(LockRelease(ex.steps, instr.name, thread.tid, held))
                tracer.event(
                    LockHeldInterval(instr.name, thread.tid, acquired_at, ex.steps)
                )
                tracer.histogram(f"vm.lock_hold_steps.{instr.name}").observe(held)
            thread.pc += 1
        elif op is Op.SET:
            self.events_set.add(instr.name)
            thread.pc += 1
        elif op is Op.WAIT:
            if instr.name not in self.events_set:  # pragma: no cover
                raise VMError("scheduled a blocked wait")
            thread.pc += 1
        elif op is Op.BARRIER:
            waiting = [
                t for t in self.threads.values()
                if t.status == "barrier"
                and self.program.instrs[t.pc].op is Op.BARRIER
                and self.program.instrs[t.pc].name == instr.name
            ]
            if len(waiting) + 1 >= (instr.target or 1):
                for other in waiting:
                    other.status = "run"
                    other.pc += 1
                thread.pc += 1
                if self.hb is not None:
                    self.hb.on_barrier_release(
                        instr.name, [t.tid for t in waiting] + [thread.tid]
                    )
            else:
                thread.status = "barrier"
        elif op is Op.JUMP:
            thread.pc = instr.target
        elif op is Op.BRANCH:
            if self._eval(instr.expr) != 0:
                thread.pc += 1
            else:
                thread.pc = instr.target
        elif op is Op.COBEGIN:
            thread.status = "join"
            thread.pending = len(instr.entries)
            thread.pc = instr.target
            for i, entry in enumerate(instr.entries):
                child = _Thread(thread.tid + (i,), entry)
                self.threads[child.tid] = child
            if self.hb is not None:
                self.hb.on_spawn(
                    thread.tid, tuple(thread.tid + (i,) for i in range(len(instr.entries)))
                )
        elif op is Op.END_THREAD:
            thread.status = "done"
            parent = self.threads[thread.tid[:-1]]
            parent.pending -= 1
            if parent.pending == 0:
                parent.status = "run"
            if self.hb is not None:
                self.hb.on_thread_end(thread.tid, parent.tid)
        elif op is Op.HALT:
            thread.status = "done"
        else:  # pragma: no cover - defensive
            raise VMError(f"unknown instruction {instr!r}")


    def replay(self, schedule: list[tuple]) -> Execution:
        """Execute a fixed schedule (list of thread ids per step).

        Used together with :func:`repro.vm.explore.find_witness` to make
        a specific interleaving reproducible.  Raises :class:`VMError`
        when the schedule names a thread that does not exist or is not
        runnable at that step.
        """
        ex = self.execution
        for tid in schedule:
            thread = self.threads.get(tuple(tid))
            if thread is None:
                raise VMError(f"schedule names unknown thread {tid!r}")
            if not self._is_runnable(thread):
                raise VMError(f"thread {tid!r} is not runnable at this step")
            self._account_lock_time(self._alive())
            self._step(thread)
            ex.steps += 1
        ex.memory = dict(self.memory)
        ex.deadlocked = bool(self._alive()) and not any(
            self._is_runnable(t) for t in self._alive()
        )
        self._flush_intervals()
        return ex


def run_random(
    program: Union[VMProgram, ProgramIR],
    seed: int = 0,
    functions: Optional[Callable[[str, list[int]], int]] = None,
    fuel: int = 1_000_000,
    raise_on_deadlock: bool = True,
    hb: Optional[object] = None,
) -> Execution:
    """Compile (if needed) and run once under the given seed.

    ``hb`` attaches a :class:`repro.dynamic.hb.HBTracker` for
    happens-before tracking and online race detection.
    """
    vm = VirtualMachine(program, seed=seed, functions=functions, fuel=fuel, hb=hb)
    return vm.run(raise_on_deadlock=raise_on_deadlock)
