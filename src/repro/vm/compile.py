"""Structured IR → VM bytecode.

SSA artefacts compile to their runtime meaning under conventional SSA:
φ terms are no-ops (every argument already lives in the shared base
variable) and π terms are copies ``temp = base_var`` ("read whichever
definition reached here").  Everything else is a 1:1 mapping.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.expr import EVar
from repro.ir.stmts import (
    IRStmt,
    Phi,
    Pi,
    SAssign,
    SBarrier,
    SCallStmt,
    SLock,
    SPrint,
    SSetEvent,
    SSkip,
    SUnlock,
    SWaitEvent,
)
from repro.ir.structured import (
    Body,
    CobeginRegion,
    IfRegion,
    ProgramIR,
    WhileRegion,
)
from repro.vm.bytecode import Instr, Op, VMProgram

__all__ = ["compile_program"]


def _barrier_mentions(body: Body) -> set[str]:
    """Barrier names mentioned under ``body``, not descending into
    nested cobegins (a barrier binds to its nearest enclosing cobegin)."""
    names: set[str] = set()
    for item in body.items:
        if isinstance(item, SBarrier):
            names.add(item.barrier_name)
        elif isinstance(item, IfRegion):
            names |= _barrier_mentions(item.then_body)
            names |= _barrier_mentions(item.else_body)
        elif isinstance(item, WhileRegion):
            names |= _barrier_mentions(item.body)
        # CobeginRegion: stop — inner barriers belong to the inner scope.
    return names


class _Compiler:
    def __init__(self) -> None:
        self.instrs: list[Instr] = []
        #: stack of {barrier name: participant count} per cobegin scope
        self._barrier_scopes: list[dict[str, int]] = []

    def emit(self, instr: Instr) -> int:
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def run(self, program: ProgramIR) -> VMProgram:
        self.compile_body(program.body)
        self.emit(Instr(Op.HALT))
        return VMProgram(self.instrs)

    # ------------------------------------------------------------------

    def compile_body(self, body: Body) -> None:
        for item in body.items:
            if isinstance(item, IRStmt):
                self.compile_stmt(item)
            elif isinstance(item, IfRegion):
                self._compile_if(item)
            elif isinstance(item, WhileRegion):
                self._compile_while(item)
            elif isinstance(item, CobeginRegion):
                self._compile_cobegin(item)
            else:  # pragma: no cover - defensive
                raise TransformError(f"cannot compile body item {item!r}")

    def compile_stmt(self, stmt: IRStmt) -> None:
        if isinstance(stmt, SAssign):
            self.emit(Instr(Op.ASSIGN, name=stmt.target, expr=stmt.value))
        elif isinstance(stmt, SPrint):
            self.emit(Instr(Op.PRINT, exprs=stmt.args))
        elif isinstance(stmt, SCallStmt):
            self.emit(Instr(Op.CALL, name=stmt.func, exprs=stmt.args))
        elif isinstance(stmt, SLock):
            self.emit(Instr(Op.LOCK, name=stmt.lock_name))
        elif isinstance(stmt, SUnlock):
            self.emit(Instr(Op.UNLOCK, name=stmt.lock_name))
        elif isinstance(stmt, SSetEvent):
            self.emit(Instr(Op.SET, name=stmt.event_name))
        elif isinstance(stmt, SWaitEvent):
            self.emit(Instr(Op.WAIT, name=stmt.event_name))
        elif isinstance(stmt, SBarrier):
            count = 1
            if self._barrier_scopes:
                count = self._barrier_scopes[-1].get(stmt.barrier_name, 1)
            self.emit(Instr(Op.BARRIER, name=stmt.barrier_name, target=count))
        elif isinstance(stmt, SSkip):
            pass
        elif isinstance(stmt, Phi):
            pass  # no-op at runtime (conventional SSA)
        elif isinstance(stmt, Pi):
            # "read whichever definition reached this point"
            self.emit(Instr(Op.ASSIGN, name=stmt.target, expr=EVar(stmt.var_name)))
        else:  # pragma: no cover - defensive
            raise TransformError(f"cannot compile statement {stmt!r}")

    def _compile_if(self, region: IfRegion) -> None:
        branch_pc = self.emit(Instr(Op.BRANCH, expr=region.branch.cond))
        self.compile_body(region.then_body)
        if region.else_body:
            jump_pc = self.emit(Instr(Op.JUMP))
            self.instrs[branch_pc].target = len(self.instrs)
            self.compile_body(region.else_body)
            self.instrs[jump_pc].target = len(self.instrs)
        else:
            self.instrs[branch_pc].target = len(self.instrs)

    def _compile_while(self, region: WhileRegion) -> None:
        loop_head = len(self.instrs)
        for header in region.header_phis:
            self.compile_stmt(header)
        branch_pc = self.emit(Instr(Op.BRANCH, expr=region.branch.cond))
        self.compile_body(region.body)
        self.emit(Instr(Op.JUMP, target=loop_head))
        self.instrs[branch_pc].target = len(self.instrs)

    def _compile_cobegin(self, region: CobeginRegion) -> None:
        # Participant counts: how many sibling threads mention each
        # barrier name (lexically, stopping at nested cobegins).
        counts: dict[str, int] = {}
        for thread in region.threads:
            for name in _barrier_mentions(thread.body):
                counts[name] = counts.get(name, 0) + 1
        self._barrier_scopes.append(counts)

        cobegin_pc = self.emit(Instr(Op.COBEGIN))
        entries: list[int] = []
        for thread in region.threads:
            entries.append(len(self.instrs))
            self.compile_body(thread.body)
            self.emit(Instr(Op.END_THREAD))
        self.instrs[cobegin_pc].entries = entries
        self.instrs[cobegin_pc].target = len(self.instrs)
        self._barrier_scopes.pop()


def compile_program(program: ProgramIR) -> VMProgram:
    """Compile ``program`` (SSA-form or not) to VM bytecode."""
    return _Compiler().run(program)
