"""VM instruction set.

A compiled program is a flat array of :class:`Instr`.  Control flow uses
absolute PCs.  ``COBEGIN`` carries the entry PC of each child thread and
the PC where the parent resumes after all children finish; every child
segment ends with ``END_THREAD``.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.ir.expr import IRExpr

__all__ = ["Instr", "Op", "VMProgram"]


class Op(enum.Enum):
    ASSIGN = "assign"        # a = expr
    PRINT = "print"          # observable output
    CALL = "call"            # observable opaque call
    LOCK = "lock"            # blocking acquire
    UNLOCK = "unlock"        # release
    SET = "set"              # event signal (sticky)
    WAIT = "wait"            # block until event set
    BARRIER = "barrier"      # cyclic barrier; target = participant count
    JUMP = "jump"            # unconditional
    BRANCH = "branch"        # fall through if true, jump if false
    COBEGIN = "cobegin"      # spawn children, parent joins
    END_THREAD = "end_thread"
    HALT = "halt"


class Instr:
    """One instruction.

    Field meaning depends on ``op``:

    * ASSIGN: ``name`` = target, ``expr`` = RHS
    * PRINT:  ``exprs`` = printed expressions
    * CALL:   ``name`` = function, ``exprs`` = arguments
    * LOCK/UNLOCK/SET/WAIT: ``name`` = lock/event
    * JUMP:   ``target``
    * BRANCH: ``expr`` = condition, ``target`` = PC when false
    * COBEGIN: ``entries`` = child entry PCs, ``target`` = parent resume
    """

    __slots__ = ("op", "name", "expr", "exprs", "target", "entries")

    def __init__(
        self,
        op: Op,
        name: Optional[str] = None,
        expr: Optional[IRExpr] = None,
        exprs: Optional[Sequence[IRExpr]] = None,
        target: Optional[int] = None,
        entries: Optional[Sequence[int]] = None,
    ) -> None:
        self.op = op
        self.name = name
        self.expr = expr
        self.exprs = list(exprs) if exprs is not None else None
        self.target = target
        self.entries = list(entries) if entries is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.name is not None:
            parts.append(self.name)
        if self.target is not None:
            parts.append(f"->{self.target}")
        if self.entries is not None:
            parts.append(f"entries={self.entries}")
        return f"<{' '.join(parts)}>"


class VMProgram:
    """A compiled program: instruction array plus its entry PC."""

    __slots__ = ("instrs", "entry")

    def __init__(self, instrs: list[Instr], entry: int = 0) -> None:
        self.instrs = instrs
        self.entry = entry

    def __len__(self) -> int:
        return len(self.instrs)

    def disassemble(self) -> str:
        """Human-readable listing (used in tests and debugging)."""
        from repro.ir.expr import expr_to_str

        lines = []
        for pc, instr in enumerate(self.instrs):
            detail = ""
            if instr.op is Op.ASSIGN:
                detail = f"{instr.name} = {expr_to_str(instr.expr)}"
            elif instr.op in (Op.PRINT, Op.CALL):
                args = ", ".join(expr_to_str(e) for e in instr.exprs or [])
                prefix = instr.name or "print"
                detail = f"{prefix}({args})"
            elif instr.op in (Op.LOCK, Op.UNLOCK, Op.SET, Op.WAIT):
                detail = f"{instr.op.value}({instr.name})"
            elif instr.op is Op.BARRIER:
                detail = f"barrier({instr.name}) /{instr.target}"
            elif instr.op is Op.JUMP:
                detail = f"goto {instr.target}"
            elif instr.op is Op.BRANCH:
                detail = f"if !({expr_to_str(instr.expr)}) goto {instr.target}"
            elif instr.op is Op.COBEGIN:
                detail = f"spawn {instr.entries} join@{instr.target}"
            else:
                detail = instr.op.value
            lines.append(f"{pc:4d}: {detail}")
        return "\n".join(lines)
