"""π-term placement (CSSA, paper Section 4).

For every statement that uses a shared variable ``v`` while concurrent
threads contain definitions of ``v`` that may reach it, a π term

    ``t = π(v_ctrl, v_d1, ..., v_dn)``

is inserted immediately before the statement and the statement's uses of
``v`` are rewritten to ``t``.  The control argument is the use's FUD
chain; the conflict arguments are the SSA names of every *real*
definition of ``v`` in blocks that may happen in parallel (φ/π defs are
excluded, matching Figure 3a where ``ta4 = π(a4, a1, a2)`` lists the two
real defs of ``a`` in T0 but not the φ ``a3``).

π terms are *not* placed on φ arguments: the coend φ already merges
thread-exit values, and a π there would be redundant with the πs
protecting the underlying uses.

Temporaries are named ``t`` + the control argument's SSA name (``ta1``
for a π whose control argument is ``a1``), uniquified by suffixing a
counter — the same convention visible in the paper's figures.
"""

from __future__ import annotations

from repro.cfg.concurrency import may_happen_in_parallel
from repro.cfg.conflicts import collect_access_sites, shared_variables
from repro.cfg.graph import FlowGraph
from repro.errors import SSAError
from repro.ir.expr import EVar
from repro.ir.stmts import IRStmt, Phi, Pi, SAssign, SBranch
from repro.ir.structured import (
    Body,
    IfRegion,
    ProgramIR,
    WhileRegion,
)

__all__ = ["place_pi_terms"]


def _structural_insert_before(stmt: IRStmt, pi: Pi) -> None:
    """Insert ``pi`` immediately before ``stmt`` in the structured tree."""
    parent = stmt.parent
    if isinstance(parent, Body):
        parent.insert_before(stmt, pi)
        return
    if isinstance(parent, IfRegion):
        # stmt is the branch condition: the π evaluates just before the
        # region in the enclosing body.
        parent.parent.insert_before(parent, pi)
        return
    if isinstance(parent, WhileRegion):
        if stmt is parent.branch:
            # Loop condition: π must re-evaluate every iteration, so it
            # joins the loop-header terms (after any φs already there).
            parent.add_header_stmt(pi)
            return
        # stmt is itself a loop-header term: insert before it.
        for i, header in enumerate(parent.header_phis):
            if header is stmt:
                pi.parent = parent
                parent.header_phis.insert(i, pi)
                return
    raise SSAError(f"cannot find structural position of {stmt!r}")


def place_pi_terms(program: ProgramIR, graph: FlowGraph) -> list[Pi]:
    """Insert π terms for every conflicting use; returns them."""
    sites = collect_access_sites(graph)
    shared = shared_variables(graph, sites)

    # Real definitions of each shared variable, in deterministic order.
    real_defs: dict[str, list] = {}
    for var in shared:
        defs = [s for s in sites.get(var, []) if s.is_real_def]
        defs.sort(key=lambda s: (s.block_id, s.index))
        real_defs[var] = defs

    pis: list[Pi] = []
    # (block_id, position, stmt) for every candidate statement, walking
    # blocks so positions come from the graph.
    pending: list[tuple[IRStmt, int, dict[str, list[EVar]]]] = []
    for block in graph.blocks:
        for stmt in block.stmts:
            if isinstance(stmt, (Phi, Pi)):
                continue
            groups: dict[str, list[EVar]] = {}
            for use in stmt.uses():
                if use.name in shared:
                    groups.setdefault(use.name, []).append(use)
            if groups:
                pending.append((stmt, block.id, groups))

    insertions: dict[int, list[tuple[IRStmt, Pi]]] = {}
    for stmt, block_id, groups in pending:
        block = graph.blocks[block_id]
        for var in sorted(groups):
            uses = groups[var]
            conflict_defs = [
                d
                for d in real_defs[var]
                if may_happen_in_parallel(block, graph.blocks[d.block_id])
            ]
            if not conflict_defs:
                continue
            first = uses[0]
            control = EVar(first.name, first.version, first.def_site)
            conflicts = []
            seen = set()
            for d in conflict_defs:
                assert isinstance(d.stmt, SAssign)
                if id(d.stmt) in seen:
                    continue
                seen.add(id(d.stmt))
                conflicts.append(EVar(var, d.stmt.version, d.stmt))
            temp = program.fresh_name(f"t{control.ssa_name}")
            pi = Pi(temp, var, control, conflicts)
            # Rewrite the statement's uses of var to the π temporary.
            for use in uses:
                use.name = temp
                use.version = None
                use.def_site = pi
            insertions.setdefault(block_id, []).append((stmt, pi))
            _structural_insert_before(stmt, pi)
            pis.append(pi)

    # Mirror the insertions into the graph blocks.
    for block_id, pairs in insertions.items():
        block = graph.blocks[block_id]
        for stmt, pi in pairs:
            for i, existing in enumerate(block.stmts):
                if existing is stmt:
                    block.stmts.insert(i, pi)
                    break
            else:  # pragma: no cover - defensive
                raise SSAError(f"statement {stmt!r} not found in its block")
    graph.reindex_statements()
    return pis
