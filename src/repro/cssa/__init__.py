"""Concurrent SSA (CSSA) — the Lee/Midkiff/Padua substrate.

CSSA = sequential SSA over the PFG **plus π terms**: before every use of
a shared variable that has concurrent reaching definitions, a π term
merges the sequentially reaching name (the control argument) with every
definition made by concurrent threads (the conflict arguments).

This package implements π placement; the paper's CSSAME extension that
*removes* π arguments using mutual exclusion lives in
:mod:`repro.cssame`.
"""

from repro.cssa.pi import place_pi_terms
from repro.cssa.builder import CSSAForm, build_cssa

__all__ = ["CSSAForm", "build_cssa", "place_pi_terms"]
