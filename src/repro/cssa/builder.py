"""CSSA construction driver.

``build_cssa`` performs the substrate part of the paper's Algorithm A.2:
build the PFG, compute sequential SSA (with coend trimming), place π
terms, and attach the non-control PFG edge sets.  The full CSSAME
pipeline (which additionally identifies mutex structures and rewrites π
terms) is :func:`repro.cssame.builder.build_cssame`.
"""

from __future__ import annotations

from repro.cfg.builder import build_flow_graph
from repro.cfg.conflicts import (
    add_conflict_edges,
    add_mutex_edges,
    add_sync_edges,
    collect_access_sites,
    shared_variables,
)
from repro.cfg.graph import FlowGraph
from repro.cssa.pi import place_pi_terms
from repro.ir.stmts import Pi
from repro.ir.structured import ProgramIR
from repro.ssa.construct import SSAContext, build_ssa

__all__ = ["CSSAForm", "build_cssa"]


class CSSAForm:
    """The result of CSSA construction.

    Attributes
    ----------
    program:
        The program, now in CSSA form (φ and π terms materialized).
    graph:
        The PFG the form was built on, with conflict/mutex/sync edges.
    ssa:
        The :class:`~repro.ssa.construct.SSAContext` (dominator tree,
        entry defs, version counters).
    pis:
        All π terms placed.
    shared:
        The shared-variable set used for placement.
    """

    def __init__(
        self,
        program: ProgramIR,
        graph: FlowGraph,
        ssa: SSAContext,
        pis: list[Pi],
        shared: set[str],
    ) -> None:
        self.program = program
        self.graph = graph
        self.ssa = ssa
        self.pis = pis
        self.shared = shared

    def live_pis(self) -> list[Pi]:
        """π terms still attached to the tree (some passes delete πs)."""
        return [pi for pi in self.pis if pi.parent is not None]


def build_cssa(program: ProgramIR) -> CSSAForm:
    """Convert a non-SSA ``program`` (in place) to CSSA form."""
    graph = build_flow_graph(program)
    ssa = build_ssa(program, graph)
    shared = shared_variables(graph, collect_access_sites(graph))
    pis = place_pi_terms(program, graph)
    add_conflict_edges(graph)
    add_mutex_edges(graph)
    add_sync_edges(graph)
    from repro.obs.trace import get_tracer

    if get_tracer().enabled:
        from repro.obs.prof import record_work

        record_work(
            "cssa",
            pi_terms=len(pis),
            conflict_args=sum(len(pi.conflicts) for pi in pis),
            shared_vars=len(shared),
            conflict_edges=len(graph.conflict_edges),
        )
    return CSSAForm(program, graph, ssa, pis, shared)
