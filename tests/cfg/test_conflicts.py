"""Shared variables, conflict edges, mutex edges, sync edges."""

from repro.cfg.builder import build_flow_graph
from repro.cfg.conflicts import (
    add_conflict_edges,
    add_mutex_edges,
    add_sync_edges,
    collect_access_sites,
    shared_variables,
)
from tests.conftest import build


def graph_of(source):
    return build_flow_graph(build(source))


class TestSharedVariables:
    def test_figure2_shared(self, figure2):
        g = build_flow_graph(figure2)
        assert shared_variables(g) == {"a", "b"}
        # x and y are written by one thread only and read after coend.

    def test_read_only_not_shared(self):
        g = graph_of("v = 1; cobegin begin a = v; end begin b = v; end coend")
        assert "v" not in shared_variables(g)

    def test_write_read_shared(self):
        g = graph_of("cobegin begin v = 1; end begin b = v; end coend")
        assert "v" in shared_variables(g)

    def test_write_write_shared(self):
        g = graph_of("cobegin begin v = 1; end begin v = 2; end coend")
        assert "v" in shared_variables(g)

    def test_sequential_writes_not_shared(self):
        g = graph_of("v = 1; v = 2; print(v);")
        assert shared_variables(g) == set()

    def test_private_after_mangling_not_shared(self):
        g = graph_of(
            """
            cobegin
            begin private t = 1; t = t + 1; end
            begin private t = 2; t = t + 2; end
            coend
            """
        )
        assert shared_variables(g) == set()


class TestAccessSites:
    def test_site_roles(self):
        g = graph_of("a = b + b;")
        sites = collect_access_sites(g)
        assert sum(1 for s in sites["a"] if s.is_def) == 1
        assert sum(1 for s in sites["b"] if not s.is_def) == 2

    def test_phi_defs_not_real(self, figure2):
        from repro.cssame import build_cssame

        build_cssame(figure2, prune=False)
        g2 = build_flow_graph(figure2)
        sites = collect_access_sites(g2)
        a_defs = [s for s in sites["a"] if s.is_def]
        real = [s for s in a_defs if s.is_real_def]
        assert len(real) < len(a_defs)  # φ defs present but not real


class TestConflictEdges:
    def test_figure2_du_edges(self, figure2):
        g = build_flow_graph(figure2)
        edges = add_conflict_edges(g)
        du = [e for e in edges if e.kind == "DU"]
        dd = [e for e in edges if e.kind == "DD"]
        assert du, "expected def-use conflicts"
        assert dd, "expected the write-write conflict on a"
        assert {e.var for e in edges} == {"a", "b"}

    def test_no_edges_in_sequential_program(self):
        g = graph_of("a = 1; b = a;")
        assert add_conflict_edges(g) == []

    def test_dd_emitted_once_per_pair(self):
        g = graph_of("cobegin begin v = 1; end begin v = 2; end coend")
        edges = add_conflict_edges(g)
        dd = [e for e in edges if e.kind == "DD"]
        assert len(dd) == 1


class TestMutexEdges:
    def test_figure2_mutex_edges(self, figure2):
        g = build_flow_graph(figure2)
        edges = add_mutex_edges(g)
        # Lock(T0)–Unlock(T1) and Lock(T1)–Unlock(T0).
        assert len(edges) == 2
        assert all(e.lock_name == "L" for e in edges)

    def test_different_locks_no_edge(self):
        g = graph_of(
            """
            cobegin
            begin lock(A); unlock(A); end
            begin lock(B); unlock(B); end
            coend
            """
        )
        assert add_mutex_edges(g) == []

    def test_sequential_locks_no_edge(self):
        g = graph_of("lock(L); unlock(L); lock(L); unlock(L);")
        assert add_mutex_edges(g) == []


class TestSyncEdges:
    def test_set_wait_edge(self):
        g = graph_of(
            """
            cobegin
            begin x = 1; set(e); end
            begin wait(e); y = x; end
            coend
            """
        )
        edges = add_sync_edges(g)
        assert len(edges) == 1
        assert edges[0].event_name == "e"

    def test_unrelated_events_no_edge(self):
        g = graph_of(
            """
            cobegin
            begin set(e1); end
            begin wait(e2); end
            coend
            """
        )
        assert add_sync_edges(g) == []
