"""FlowGraph container internals."""

import pytest

from repro.cfg.blocks import NodeKind
from repro.cfg.builder import build_flow_graph
from repro.cfg.graph import FlowGraph
from repro.errors import CFGError
from repro.ir.expr import EConst
from repro.ir.stmts import SAssign
from tests.conftest import build


class TestQueries:
    def test_block_of_unknown_statement(self, figure2):
        g = build_flow_graph(figure2)
        stray = SAssign("q", EConst(1))
        with pytest.raises(CFGError):
            g.block_of(stray)
        assert not g.contains_stmt(stray)

    def test_reindex_after_mutation(self, figure2):
        g = build_flow_graph(figure2)
        block = g.nodes_of_kind(NodeKind.BLOCK)[0]
        new_stmt = SAssign("fresh", EConst(7))
        block.stmts.insert(0, new_stmt)
        g.reindex_statements()
        assert g.location_of(new_stmt) == (block.id, 0)

    def test_reverse_postorder_starts_at_entry(self, figure2):
        g = build_flow_graph(figure2)
        order = g.reverse_postorder()
        assert order[0] == g.entry_id
        assert set(order) == {b.id for b in g.blocks}

    def test_rpo_respects_edges_in_dags(self):
        g = build_flow_graph(build("a = 1; if (a) { b = 2; } c = 3;"))
        order = g.reverse_postorder()
        position = {b: i for i, b in enumerate(order)}
        # In a DAG region, every edge goes forward in RPO except back
        # edges (none here).
        for block in g.blocks:
            for succ in block.succs:
                assert position[block.id] < position[succ]


class TestValidate:
    def test_broken_backlink_detected(self, figure2):
        g = build_flow_graph(figure2)
        g.blocks[g.entry_id].succs.append(g.exit_id)  # no matching pred
        with pytest.raises(CFGError):
            g.validate()

    def test_entry_with_pred_detected(self, figure2):
        g = build_flow_graph(figure2)
        g.add_edge(g.exit_id, g.entry_id)
        with pytest.raises(CFGError):
            g.validate()

    def test_fresh_graph_missing_entry(self):
        g = FlowGraph()
        with pytest.raises(CFGError):
            g.validate()


class TestBlockHelpers:
    def test_labels(self, figure2):
        g = build_flow_graph(figure2)
        assert g.entry.label().endswith("[entry]")
        empty = next(
            b for b in g.blocks
            if b.kind is NodeKind.BLOCK and not b.stmts
        )
        assert "(empty)" in empty.label()

    def test_thread_map(self, figure2):
        g = build_flow_graph(figure2)
        lock = g.nodes_of_kind(NodeKind.LOCK)[0]
        assert len(lock.thread_map) == 1
