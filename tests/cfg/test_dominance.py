"""Dominator / post-dominator computation."""

from repro.cfg.builder import build_flow_graph
from repro.cfg.dominance import (
    check_single_exit,
    compute_dominators,
    compute_postdominators,
    dominance_frontiers,
    postdominance_frontiers,
    verify_mutex_pair,
)
from repro.cfg.blocks import NodeKind
from tests.conftest import build


def graphs(source):
    g = build_flow_graph(build(source))
    return g, compute_dominators(g), compute_postdominators(g)


class TestDominators:
    def test_entry_dominates_everything(self, figure2):
        g = build_flow_graph(figure2)
        dom = compute_dominators(g)
        assert all(dom.dominates(g.entry_id, b.id) for b in g.blocks)

    def test_exit_postdominates_everything(self, figure2):
        g = build_flow_graph(figure2)
        pdom = compute_postdominators(g)
        assert all(pdom.dominates(g.exit_id, b.id) for b in g.blocks)

    def test_self_domination_reflexive(self):
        g, dom, _ = graphs("a = 1; if (a) { b = 2; }")
        for b in g.blocks:
            assert dom.dominates(b.id, b.id)

    def test_branch_does_not_dominate_join_contents_onesided(self):
        g, dom, _ = graphs("if (c) { x = 1; } else { y = 2; } z = 3;")
        x_block = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "x"
        )
        z_block = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "z"
        )
        assert not dom.dominates(x_block, z_block)

    def test_loop_header_dominates_body(self):
        g, dom, _ = graphs("while (i < 2) { i = i + 1; }")
        header = next(b.id for b in g.blocks if len(b.preds) == 2)
        body = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "i"
        )
        assert dom.strictly_dominates(header, body)

    def test_idom_is_unique_strict_dominator_parent(self):
        g, dom, _ = graphs("if (c) { x = 1; } y = 2;")
        for b in g.blocks:
            parent = dom.idom[b.id]
            if parent is None:
                continue
            assert dom.strictly_dominates(parent, b.id)

    def test_lock_dominates_unlock_in_figure2(self, figure2):
        g = build_flow_graph(figure2)
        dom = compute_dominators(g)
        pdom = compute_postdominators(g)
        locks = g.nodes_of_kind(NodeKind.LOCK)
        unlocks = g.nodes_of_kind(NodeKind.UNLOCK)
        # Each thread's lock/unlock pair satisfies Definition 3 cond. 2.
        pairs = 0
        for ln in locks:
            for un in unlocks:
                if verify_mutex_pair(dom, pdom, ln.id, un.id):
                    pairs += 1
        assert pairs == 2

    def test_cross_thread_no_dominance(self, figure2):
        g = build_flow_graph(figure2)
        dom = compute_dominators(g)
        locks = g.nodes_of_kind(NodeKind.LOCK)
        assert not dom.dominates(locks[0].id, locks[1].id)
        assert not dom.dominates(locks[1].id, locks[0].id)


class TestFrontiers:
    def test_if_frontier_is_join(self):
        g, dom, _ = graphs("if (c) { x = 1; } y = 2;")
        df = dominance_frontiers(g, dom)
        x_block = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "x"
        )
        join = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "y"
        )
        assert df[x_block] == {join}

    def test_loop_body_frontier_is_header(self):
        g, dom, _ = graphs("while (i < 2) { i = i + 1; }")
        df = dominance_frontiers(g, dom)
        header = next(b.id for b in g.blocks if len(b.preds) == 2)
        body = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "i"
        )
        assert header in df[body]

    def test_straightline_frontiers_empty(self):
        g, dom, _ = graphs("a = 1; b = 2;")
        df = dominance_frontiers(g, dom)
        assert all(not f for f in df)

    def test_postdominance_frontier_control_dependence(self):
        g, _, pdom = graphs("if (c) { x = 1; } y = 2;")
        pdf = postdominance_frontiers(g, pdom)
        branch = next(
            b.id for b in g.blocks if len(b.succs) == 2
        )
        x_block = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "x"
        )
        y_block = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "y"
        )
        assert branch in pdf[x_block]  # x is control dependent on branch
        assert branch not in pdf[y_block]  # y executes either way


class TestSingleExit:
    def test_all_programs_reach_exit(self, figure2):
        g = build_flow_graph(figure2)
        check_single_exit(g)

    def test_loops_reach_exit(self):
        g, _, _ = graphs("while (1) { x = 1; } y = 2;")
        check_single_exit(g)  # syntactic exit edge always exists
