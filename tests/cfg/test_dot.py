"""DOT export tests."""

from repro.api import pfg_dot
from repro.cfg.builder import build_flow_graph
from repro.cfg.conflicts import add_conflict_edges, add_mutex_edges
from repro.cfg.dot import to_dot
from tests.conftest import FIGURE2_SOURCE, build


class TestDot:
    def test_valid_structure(self, figure2):
        g = build_flow_graph(figure2)
        text = to_dot(g, title="fig2")
        assert text.startswith('digraph "fig2" {')
        assert text.rstrip().endswith("}")
        # One node line per block.
        assert text.count("shape=") == len(g.blocks)

    def test_edge_styles(self, figure2):
        g = build_flow_graph(figure2)
        add_conflict_edges(g)
        add_mutex_edges(g)
        text = to_dot(g)
        assert "style=dashed" in text  # conflict edges
        assert "style=dotted" in text  # mutex edges

    def test_statements_in_labels(self):
        g = build_flow_graph(build("total = 41 + 1;"))
        assert "total = 41 + 1;" in to_dot(g)

    def test_escaping(self):
        g = build_flow_graph(build('x = 1;'))
        out = to_dot(g, title='with "quotes"')
        assert '\\"quotes\\"' in out

    def test_api_pfg_dot(self):
        text = pfg_dot(FIGURE2_SOURCE, title="fig2")
        assert "cobegin" in text and "coend" in text
        assert "lock" in text or "hexagon" in text
