"""Flow-graph construction tests."""

from repro.cfg.blocks import NodeKind
from repro.cfg.builder import build_flow_graph
from repro.ir.stmts import SBranch
from tests.conftest import build


def graph_of(source):
    return build_flow_graph(build(source))


class TestLinear:
    def test_empty_program(self):
        g = graph_of("")
        assert g.blocks[g.entry_id].kind is NodeKind.ENTRY
        assert g.blocks[g.exit_id].kind is NodeKind.EXIT
        g.validate()

    def test_straightline_single_block(self):
        g = graph_of("a = 1; b = 2; c = a + b;")
        blocks = g.nodes_of_kind(NodeKind.BLOCK)
        assert len(blocks) == 1
        assert len(blocks[0].stmts) == 3

    def test_statement_locations(self):
        g = graph_of("a = 1; b = 2;")
        ir_block = g.nodes_of_kind(NodeKind.BLOCK)[0]
        for i, stmt in enumerate(ir_block.stmts):
            assert g.location_of(stmt) == (ir_block.id, i)


class TestSyncNodes:
    def test_lock_unlock_get_own_nodes(self):
        g = graph_of("lock(L); a = 1; unlock(L);")
        locks = g.nodes_of_kind(NodeKind.LOCK)
        unlocks = g.nodes_of_kind(NodeKind.UNLOCK)
        assert len(locks) == 1 and len(unlocks) == 1
        assert len(locks[0].stmts) == 1  # only the lock op itself

    def test_set_wait_get_own_nodes(self):
        g = graph_of("set(e); wait(e);")
        assert len(g.nodes_of_kind(NodeKind.SET)) == 1
        assert len(g.nodes_of_kind(NodeKind.WAIT)) == 1

    def test_consecutive_locks(self):
        g = graph_of("lock(A); lock(B); unlock(B); unlock(A);")
        assert len(g.nodes_of_kind(NodeKind.LOCK)) == 2
        assert len(g.nodes_of_kind(NodeKind.UNLOCK)) == 2


class TestBranches:
    def test_if_shape(self):
        g = graph_of("if (a) { x = 1; } else { y = 2; } z = 3;")
        branch_blocks = [
            b for b in g.blocks if b.stmts and isinstance(b.stmts[-1], SBranch)
        ]
        assert len(branch_blocks) == 1
        bb = branch_blocks[0]
        assert len(bb.succs) == 2  # [true, false]

    def test_if_true_false_edge_order(self):
        g = graph_of("if (a) { x = 1; } else { y = 2; }")
        bb = next(b for b in g.blocks if b.stmts and isinstance(b.stmts[-1], SBranch))
        then_block = g.blocks[bb.succs[0]]
        else_block = g.blocks[bb.succs[1]]
        assert then_block.stmts[0].target == "x"
        assert else_block.stmts[0].target == "y"

    def test_empty_else_still_two_succs(self):
        g = graph_of("if (a) { x = 1; }")
        bb = next(b for b in g.blocks if b.stmts and isinstance(b.stmts[-1], SBranch))
        assert len(bb.succs) == 2

    def test_while_shape(self):
        g = graph_of("while (i < 3) { i = i + 1; } print(i);")
        header = next(
            b for b in g.blocks if b.stmts and isinstance(b.stmts[-1], SBranch)
        )
        assert len(header.succs) == 2
        assert len(header.preds) == 2  # entry + back edge
        body_entry = g.blocks[header.succs[0]]
        assert body_entry.stmts[0].target == "i"

    def test_join_has_phi_anchor(self):
        g = graph_of("if (a) { x = 1; } y = 2;")
        joins = [b for b in g.blocks if b.phi_anchor is not None]
        assert len(joins) == 1
        assert joins[0].phi_anchor.kind == "after"


class TestCobegin:
    def test_cobegin_coend_nodes(self):
        g = graph_of("cobegin begin a = 1; end begin b = 2; end coend")
        cob = g.nodes_of_kind(NodeKind.COBEGIN)
        coe = g.nodes_of_kind(NodeKind.COEND)
        assert len(cob) == 1 and len(coe) == 1
        assert len(cob[0].succs) == 2
        assert len(coe[0].preds) == 2

    def test_coend_pred_order_matches_threads(self):
        g = graph_of("cobegin begin a = 1; end begin b = 2; end coend")
        coe = g.nodes_of_kind(NodeKind.COEND)[0]
        first = g.blocks[coe.preds[0]]
        second = g.blocks[coe.preds[1]]
        assert first.stmts[0].target == "a"
        assert second.stmts[0].target == "b"

    def test_thread_paths(self):
        g = graph_of("cobegin begin a = 1; end begin b = 2; end coend c = 3;")
        a_block = g.block_of(
            next(s for s, _ in _stmts(g) if getattr(s, "target", None) == "a")
        )
        b_block = g.block_of(
            next(s for s, _ in _stmts(g) if getattr(s, "target", None) == "b")
        )
        c_block = g.block_of(
            next(s for s, _ in _stmts(g) if getattr(s, "target", None) == "c")
        )
        assert len(a_block.thread_path) == 1
        assert len(b_block.thread_path) == 1
        assert a_block.thread_path != b_block.thread_path
        assert c_block.thread_path == ()

    def test_nested_cobegin_paths(self):
        g = graph_of(
            """
            cobegin
            begin cobegin begin x = 1; end begin y = 2; end coend end
            begin z = 3; end
            coend
            """
        )
        x_block = g.block_of(
            next(s for s, _ in _stmts(g) if getattr(s, "target", None) == "x")
        )
        assert len(x_block.thread_path) == 2

    def test_figure2_inventory(self, figure2):
        g = build_flow_graph(figure2)
        assert len(g.nodes_of_kind(NodeKind.LOCK)) == 2
        assert len(g.nodes_of_kind(NodeKind.UNLOCK)) == 2
        assert len(g.nodes_of_kind(NodeKind.COBEGIN)) == 1
        assert len(g.nodes_of_kind(NodeKind.COEND)) == 1
        g.validate()


class TestRebuild:
    def test_rebuild_after_ssa_places_phis_as_stmts(self, figure2):
        from repro.cssame import build_cssame
        from repro.ir.stmts import Phi, Pi

        build_cssame(figure2, prune=False)
        g2 = build_flow_graph(figure2)  # rebuild of an SSA-form tree
        phis = [s for b in g2.blocks for s in b.stmts if isinstance(s, Phi)]
        pis = [s for b in g2.blocks for s in b.stmts if isinstance(s, Pi)]
        assert phis and pis
        assert all(not b.phis for b in g2.blocks)  # as plain statements
        g2.validate()


def _stmts(g):
    for block in g.blocks:
        for stmt in block.stmts:
            yield stmt, block
