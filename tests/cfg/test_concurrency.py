"""May-happen-in-parallel relation."""

from repro.cfg.builder import build_flow_graph
from repro.cfg.concurrency import (
    concurrent_blocks,
    may_happen_in_parallel,
    thread_paths_diverge,
)
from tests.conftest import build


def block_by_target(g, name):
    for b in g.blocks:
        for s in b.stmts:
            if getattr(s, "target", None) == name:
                return b
    raise AssertionError(name)


class TestThreadPaths:
    def test_empty_paths_not_concurrent(self):
        assert not thread_paths_diverge((), ())
        assert not thread_paths_diverge(((1, 0),), ())

    def test_same_branch_not_concurrent(self):
        assert not thread_paths_diverge(((1, 0),), ((1, 0),))

    def test_different_branches_concurrent(self):
        assert thread_paths_diverge(((1, 0),), ((1, 1),))

    def test_unrelated_cobegins_not_concurrent(self):
        assert not thread_paths_diverge(((1, 0),), ((2, 1),))

    def test_nested_divergence(self):
        outer = ((1, 0), (5, 0))
        sibling_inner = ((1, 0), (5, 1))
        other_outer = ((1, 1),)
        assert thread_paths_diverge(outer, sibling_inner)
        assert thread_paths_diverge(outer, other_outer)


class TestMHPOnGraphs:
    def test_siblings_concurrent(self):
        g = build_flow_graph(
            build("cobegin begin a = 1; end begin b = 2; end coend")
        )
        a, b = block_by_target(g, "a"), block_by_target(g, "b")
        assert may_happen_in_parallel(a, b)

    def test_before_and_after_not_concurrent(self):
        g = build_flow_graph(
            build("p = 0; cobegin begin a = 1; end begin b = 2; end coend q = 3;")
        )
        p, a, q = (block_by_target(g, n) for n in "paq")
        assert not may_happen_in_parallel(p, a)
        assert not may_happen_in_parallel(q, a)
        assert not may_happen_in_parallel(p, q)

    def test_same_thread_not_concurrent(self):
        g = build_flow_graph(
            build("cobegin begin a = 1; c = 2; end begin b = 3; end coend")
        )
        a, c = block_by_target(g, "a"), block_by_target(g, "c")
        assert not may_happen_in_parallel(a, c)

    def test_nested_inner_concurrent_with_outer_sibling(self):
        g = build_flow_graph(
            build(
                """
                cobegin
                begin cobegin begin x = 1; end begin y = 2; end coend end
                begin z = 3; end
                coend
                """
            )
        )
        x, y, z = (block_by_target(g, n) for n in "xyz")
        assert may_happen_in_parallel(x, y)
        assert may_happen_in_parallel(x, z)
        assert may_happen_in_parallel(y, z)

    def test_sequential_cobegins_not_concurrent(self):
        g = build_flow_graph(
            build(
                """
                cobegin begin a = 1; end begin b = 2; end coend
                cobegin begin c = 3; end begin d = 4; end coend
                """
            )
        )
        a, c = block_by_target(g, "a"), block_by_target(g, "c")
        assert not may_happen_in_parallel(a, c)

    def test_concurrent_blocks_helper(self):
        g = build_flow_graph(
            build("cobegin begin a = 1; end begin b = 2; end coend")
        )
        a = block_by_target(g, "a")
        others = concurrent_blocks(g, a)
        assert block_by_target(g, "b") in others
        assert a not in others

    def test_cobegin_in_loop_iterations_not_concurrent(self):
        # coend joins before the next iteration begins.
        g = build_flow_graph(
            build(
                """
                i = 0;
                while (i < 2) {
                    cobegin begin a = 1; end begin b = 2; end coend
                    i = i + 1;
                }
                """
            )
        )
        a, b = block_by_target(g, "a"), block_by_target(g, "b")
        i = block_by_target(g, "i")
        assert may_happen_in_parallel(a, b)
        assert not may_happen_in_parallel(a, i)
