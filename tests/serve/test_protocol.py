"""Wire-protocol framing: encode/decode, validation, response shapes."""

import json

import pytest

from repro.errors import (
    E_PARSE,
    E_PROTOCOL,
    DeadlineExceeded,
    ParseError,
    ProtocolError,
    SourceLocation,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)


class TestFraming:
    def test_roundtrip(self):
        frame = {"v": 1, "id": "r1", "kind": "ping"}
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert decode_frame(line) == frame

    def test_encode_is_deterministic(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_not_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"definitely not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]\n")

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_invalid_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'\xff\xfe{"a":1}\n')


class TestValidateRequest:
    def test_compile_defaults(self):
        request = validate_request(
            {"v": 1, "id": 7, "kind": "compile", "source": "a = 1;"}
        )
        assert request["stage"] == "diagnostics"
        assert request["options"] == {}
        assert request["id"] == 7

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({"v": 99, "kind": "ping"})

    def test_missing_version_defaults(self):
        request = validate_request({"kind": "ping"})
        assert request["v"] == PROTOCOL_VERSION

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({"v": 1, "kind": "transmogrify"})

    def test_bad_id_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({"v": 1, "id": ["list"], "kind": "ping"})

    def test_compile_needs_string_source(self):
        with pytest.raises(ProtocolError):
            validate_request({"v": 1, "kind": "compile", "source": 42})

    def test_compile_options_must_be_object(self):
        with pytest.raises(ProtocolError):
            validate_request(
                {"v": 1, "kind": "compile", "source": "", "options": [1]}
            )


class TestResponses:
    def test_ok_response_shape(self):
        frame = ok_response("r1", {"x": 1}, 3.14159)
        assert frame["ok"] is True
        assert frame["result"] == {"x": 1}
        assert frame["elapsed_ms"] == 3.142
        json.dumps(frame)  # must be JSON-serializable

    def test_error_response_carries_taxonomy_code(self):
        exc = ParseError("unexpected token", SourceLocation(3, 7))
        frame = error_response("r2", exc)
        assert frame["ok"] is False
        assert frame["error"]["code"] == E_PARSE
        assert frame["error"]["type"] == "ParseError"
        assert frame["error"]["line"] == 3
        assert frame["error"]["column"] == 7
        json.dumps(frame)

    def test_error_response_for_service_errors(self):
        frame = error_response(None, DeadlineExceeded("optimized", 50.0))
        assert frame["error"]["code"] == "E_TIMEOUT"
        assert "50" in frame["error"]["message"]

    def test_protocol_error_frame(self):
        frame = error_response(None, ProtocolError("bad frame"))
        assert frame["error"]["code"] == E_PROTOCOL
