"""PersistentStore: spill/load, restart survival, corruption handling."""

import os
from pathlib import Path

from repro.serve.store import PersistentStore
from repro.session.session import Session
from tests.conftest import FIGURE1_SOURCE


def _store_files(root: str) -> list[Path]:
    return sorted(Path(root).rglob("*.art"))


class TestRoundTrip:
    def test_put_then_get_hits_memory(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("k" * 64, {"x": 1})
        assert store.get("k" * 64, "stage") == {"x": 1}
        assert store.store_stats.spills == 1
        # Served from the memory tier: no disk traffic at all.
        assert store.store_stats.disk_hits == 0

    def test_spill_lands_on_disk_atomically(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("a" * 64, [1, 2, 3])
        files = _store_files(str(tmp_path))
        assert len(files) == 1
        # Sharded by key prefix; no temp files left behind.
        assert files[0].parent.name == "aa"
        leftovers = [
            p for p in Path(str(tmp_path)).rglob("*") if p.is_file()
        ]
        assert leftovers == files

    def test_get_missing_is_a_miss(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        assert store.get("b" * 64, "stage") is store.MISSING
        assert store.store_stats.disk_misses == 1


class TestRestart:
    def test_second_store_serves_from_disk(self, tmp_path):
        first = PersistentStore(str(tmp_path))
        first.put("c" * 64, {"answer": 42})

        second = PersistentStore(str(tmp_path))
        assert second.get("c" * 64, "stage") == {"answer": 42}
        assert second.store_stats.disk_hits == 1
        # The disk hit re-warmed the memory tier.
        assert second.get("c" * 64, "stage") == {"answer": 42}
        assert second.store_stats.disk_hits == 1

    def test_restarted_session_reuses_artifacts(self, tmp_path):
        sess1 = Session(cache=PersistentStore(str(tmp_path)))
        warnings1, races1 = sess1.diagnose(FIGURE1_SOURCE)

        store2 = PersistentStore(str(tmp_path))
        sess2 = Session(cache=store2)
        warnings2, races2 = sess2.diagnose(FIGURE1_SOURCE)
        assert [w.kind for w in warnings1] == [w.kind for w in warnings2]
        assert len(races1) == len(races2)
        assert store2.store_stats.disk_hits > 0

    def test_persisted_count(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        for i in range(3):
            store.put(f"{i:x}" * 64, i)
        assert store.persisted_count() == 3


class TestCorruption:
    def test_truncated_file_recomputes_not_crashes(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("d" * 64, {"big": list(range(100))})
        (path,) = _store_files(str(tmp_path))
        path.write_bytes(path.read_bytes()[:20])

        fresh = PersistentStore(str(tmp_path))
        assert fresh.get("d" * 64, "stage") is fresh.MISSING
        assert fresh.store_stats.corruptions == 1
        # The poisoned file is removed so it is not re-parsed forever.
        assert _store_files(str(tmp_path)) == []

    def test_flipped_payload_fails_checksum(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("e" * 64, "payload")
        (path,) = _store_files(str(tmp_path))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        fresh = PersistentStore(str(tmp_path))
        assert fresh.get("e" * 64, "stage") is fresh.MISSING
        assert fresh.store_stats.corruptions == 1

    def test_wrong_magic_rejected(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("f" * 64, "payload")
        (path,) = _store_files(str(tmp_path))
        path.write_bytes(b"NOTANART\n" + path.read_bytes()[9:])

        fresh = PersistentStore(str(tmp_path))
        assert fresh.get("f" * 64, "stage") is fresh.MISSING
        assert fresh.store_stats.corruptions == 1

    def test_unpicklable_value_counts_error_and_still_serves(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        value = {"fn": lambda: None}
        store.put("9" * 64, value)
        assert store.store_stats.errors == 1
        # Memory tier still has it; only persistence was skipped.
        assert store.get("9" * 64, "stage") is value
        assert _store_files(str(tmp_path)) == []


class TestClear:
    def test_clear_memory_keeps_disk(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("1" * 64, "v")
        store.clear()
        assert store.get("1" * 64, "stage") == "v"
        assert store.store_stats.disk_hits == 1

    def test_clear_disk_removes_everything(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.put("2" * 64, "v")
        store.clear(disk=True)
        assert store.get("2" * 64, "stage") is store.MISSING
        assert _store_files(str(tmp_path)) == []

    def test_contains(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        assert ("3" * 64) not in store
        store.put("3" * 64, "v")
        assert ("3" * 64) in store
        store.clear()
        assert ("3" * 64) in store  # still on disk

    def test_stats_as_dict_keys(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        stats = store.store_stats.as_dict()
        assert set(stats) == {
            "spills", "spill_bytes", "disk_hits", "disk_misses",
            "corruptions", "errors",
        }

    def test_store_creates_directory(self, tmp_path):
        root = os.path.join(str(tmp_path), "nested", "store")
        store = PersistentStore(root)
        store.put("4" * 64, "v")
        assert os.path.isdir(root)
