"""Live-server behaviour: parity with the in-process facade, caching,
concurrency, ops metrics, and graceful drain."""

import threading

import pytest

from repro import api
from repro._version import __version__
from repro.errors import E_PARSE, E_UNSUPPORTED, RemoteError
from repro.results import DiagnoseResult
from repro.session import Session
from tests.serve.conftest import example_sources

EXAMPLES = example_sources()
PARITY_STAGES = ("analyze", "diagnostics", "optimized", "dot", "bytecode")


class TestBasics:
    def test_ping(self, server):
        with server.client() as client:
            pong = client.ping()
        assert pong == {"pong": True, "version": __version__}

    def test_compile_returns_typed_result(self, server):
        with server.client() as client:
            result = client.compile(EXAMPLES["figure1.par"], "diagnostics")
        assert isinstance(result, DiagnoseResult)
        assert result.races

    def test_parse_error_is_a_typed_frame(self, server):
        with server.client() as client:
            with pytest.raises(RemoteError) as info:
                client.compile("lock(L; a = ;", "diagnostics")
        assert info.value.code == E_PARSE
        # The connection (and server) survive the error.
        with server.client() as client:
            assert client.ping()["pong"] is True

    def test_unsupported_stage(self, server):
        with server.client() as client:
            with pytest.raises(RemoteError) as info:
                client.compile("a = 1;", "transmogrify")
        assert info.value.code == E_UNSUPPORTED

    def test_pipelined_requests_on_one_connection(self, server):
        with server.client() as client:
            for _ in range(3):
                assert client.ping()["pong"] is True
            result = client.compile("a = 1; print(a);", "bytecode")
        assert result.artifacts["instructions"] > 0


class TestGoldenParity:
    def test_server_matches_in_process_facade(self, server):
        """The wire payload is bit-identical to api.compile_source().

        Both sides start from a fresh session and process the same
        (example, stage) sequence in the same order, so even the cache
        provenance must agree.
        """
        local = Session()
        with server.client() as client:
            for name, source in EXAMPLES.items():
                for stage in PARITY_STAGES:
                    expected = api.compile_source(
                        source, stage, session=local
                    ).as_dict()
                    got = client.request(source, stage)
                    assert got["ok"], f"{name}/{stage}: {got.get('error')}"
                    assert got["result"] == expected, f"{name}/{stage}"

    def test_audit_parity(self, server):
        source = EXAMPLES["figure1.par"]
        options = {"runs": 3, "explore": False}
        expected = api.compile_source(
            source, "audit", options, session=Session()
        ).as_dict()
        with server.client() as client:
            result = client.compile(source, "audit", options)
        assert result.as_dict() == expected


class TestCaching:
    def test_second_request_is_warm(self, server):
        source = EXAMPLES["figure2.par"]
        with server.client() as client:
            cold = client.compile(source, "diagnostics")
            warm = client.compile(source, "diagnostics")
        assert cold.provenance.cache_misses > 0
        assert warm.provenance.cache_misses == 0
        assert warm.provenance.cache_hits > 0
        assert cold.artifacts == warm.artifacts

    def test_store_survives_restart(self, serve_factory, tmp_path):
        source = EXAMPLES["figure1.par"]
        store_dir = str(tmp_path / "store")

        first = serve_factory(store_dir=store_dir)
        with first.client() as client:
            cold = client.compile(source, "diagnostics")
        first.stop()
        assert not first.alive

        second = serve_factory(store_dir=store_dir)
        with second.client() as client:
            warm = client.compile(source, "diagnostics")
            ops = client.ops()
        assert warm.provenance.cache_misses == 0
        assert warm.as_dict()["artifacts"] == cold.as_dict()["artifacts"]
        assert ops["store"]["disk_hits"] > 0


class TestOps:
    def test_ops_payload_shape(self, server):
        with server.client() as client:
            client.compile("a = 1; print(a);", "diagnostics")
            ops = client.ops()
        assert ops["version"] == __version__
        assert ops["protocol"] == 1
        assert ops["jobs"] >= 1
        assert ops["queue_depth"] == 0
        assert ops["draining"] is False
        assert ops["requests"]["total"] >= 1
        assert ops["requests"]["ok"] >= 1
        assert "hits" in ops["cache"] and "misses" in ops["cache"]
        stage = ops["stages"]["diagnostics"]
        assert stage["count"] == 1
        for key in ("mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"):
            assert stage[key] >= 0.0

    def test_error_counters(self, server):
        with server.no_retry_client() as client:
            with pytest.raises(RemoteError):
                client.compile("lock(L; a = ;", "diagnostics")
            ops = client.ops()
        assert ops["requests"]["errors"].get("E_PARSE") == 1


class TestConcurrency:
    def test_many_clients_many_files(self, serve_factory):
        server = serve_factory(jobs=4)
        reference = {
            name: api.compile_source(source, "diagnostics").as_dict()["artifacts"]
            for name, source in EXAMPLES.items()
        }
        failures: list[str] = []

        def hammer() -> None:
            try:
                with server.client() as client:
                    for name, source in EXAMPLES.items():
                        result = client.compile(source, "diagnostics")
                        if result.as_dict()["artifacts"] != reference[name]:
                            failures.append(f"mismatch on {name}")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[:5]
        with server.client() as client:
            ops = client.ops()
        assert ops["requests"]["ok"] >= 8 * len(EXAMPLES)


class TestDrain:
    def test_shutdown_request_drains(self, serve_factory):
        server = serve_factory()
        with server.client() as client:
            assert client.shutdown() == {"draining": True}
        server._thread.join(timeout=15)
        assert not server.alive

    def test_draining_refuses_new_connections(self, serve_factory):
        server = serve_factory()
        host, port = server.host, server.port
        with server.client() as client:
            client.shutdown()
        server._thread.join(timeout=15)
        import socket

        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()
