"""Client retry policy: backoff shape, transient retries, give-up rules.

A tiny scripted TCP server plays the failure tape deterministically:
each accepted connection consumes the next script entry, which is
either ``"close"`` (read the request, then slam the connection) or a
response frame to send.  The client under test gets an injected RNG
and a sleep collector, so the whole suite runs instantly and asserts
exact backoff arithmetic.
"""

import random
import socket
import threading

import pytest

from repro.errors import E_OVERLOADED, E_PARSE, RemoteError
from repro.serve.client import RetryPolicy, ServeClient
from repro.serve.protocol import encode_frame


class ScriptedServer:
    """One scripted action per *request* received.

    Connections are persistent (like the real server's); a ``"close"``
    entry resets the connection after reading the request, forcing the
    client down its reconnect path.
    """

    def __init__(self, script):
        self._actions = iter(list(script))
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            reader = conn.makefile("rb")
            while True:
                if not reader.readline():  # client went away
                    break
                action = next(self._actions, None)
                if action is None or action == "close":
                    break  # reset this connection
                conn.sendall(encode_frame(action))
            conn.close()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


def _ok(payload=None):
    return {"v": 1, "id": "c1", "ok": True, "result": payload or {"pong": True}}


def _err(code, message="nope"):
    return {
        "v": 1,
        "id": "c1",
        "ok": False,
        "error": {"code": code, "type": "X", "message": message},
    }


@pytest.fixture
def scripted():
    servers = []

    def make(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def _client(port, script_sleeps, attempts=4):
    return ServeClient(
        "127.0.0.1",
        port,
        timeout=5.0,
        retry=RetryPolicy(attempts=attempts, base_delay=0.05, jitter=0.5),
        rng=random.Random(42),
        sleep=script_sleeps.append,
    )


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            delay = policy.delay(1, rng)
            assert 0.1 <= delay <= 0.15000001

    def test_deterministic_with_seeded_rng(self):
        policy = RetryPolicy()
        a = [policy.delay(n, random.Random(3)) for n in (1, 2, 3)]
        b = [policy.delay(n, random.Random(3)) for n in (1, 2, 3)]
        assert a == b


class TestTransientRetries:
    def test_overloaded_then_ok(self, scripted):
        server = scripted([_err(E_OVERLOADED), _ok()])
        sleeps = []
        with _client(server.port, sleeps) as client:
            response = client.call({"v": 1, "id": "c1", "kind": "ping"})
        assert response["ok"] is True
        assert len(sleeps) == 1  # exactly one backoff
        assert sleeps[0] >= 0.05

    def test_connection_reset_then_ok(self, scripted):
        server = scripted(["close", _ok()])
        sleeps = []
        with _client(server.port, sleeps) as client:
            response = client.call({"v": 1, "id": "c1", "kind": "ping"})
        assert response["ok"] is True
        assert server.connections == 2
        assert len(sleeps) == 1

    def test_connection_refused_then_ok(self, scripted):
        # Nothing listens on a fresh ephemeral port; grab one, close it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        client = _client(dead_port, sleeps, attempts=2)
        with pytest.raises(OSError):
            client.call({"v": 1, "id": "c1", "kind": "ping"})
        assert len(sleeps) == 1


class TestGiveUp:
    def test_exhausted_retries_return_last_frame(self, scripted):
        server = scripted([_err(E_OVERLOADED)] * 3)
        sleeps = []
        with _client(server.port, sleeps, attempts=3) as client:
            response = client.call({"v": 1, "id": "c1", "kind": "ping"})
        assert response["ok"] is False
        assert response["error"]["code"] == E_OVERLOADED
        assert len(sleeps) == 2  # attempts-1 backoffs
        # Backoff grew between attempts (jitter can't mask a doubling).
        assert sleeps[1] > sleeps[0]

    def test_compile_raises_typed_remote_error(self, scripted):
        server = scripted([_err(E_OVERLOADED)] * 2)
        sleeps = []
        with _client(server.port, sleeps, attempts=2) as client:
            with pytest.raises(RemoteError) as info:
                client.compile("a = 1;")
        assert info.value.code == E_OVERLOADED

    def test_definite_errors_never_retry(self, scripted):
        server = scripted([_err(E_PARSE, "1:1: bad"), _ok()])
        sleeps = []
        with _client(server.port, sleeps) as client:
            response = client.call({"v": 1, "id": "c1", "kind": "ping"})
        assert response["ok"] is False
        assert response["error"]["code"] == E_PARSE
        assert sleeps == []  # no backoff, no second connection
        assert server.connections == 1
