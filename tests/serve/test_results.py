"""Typed results and the redesigned facade, including deprecation shims."""

import json

import pytest

from repro import api
from repro._version import __version__
from repro.results import (
    CompileResult,
    DiagnoseResult,
    OptimizeResult,
    Provenance,
    result_class_for,
    result_from_dict,
)
from repro.session import Session
from tests.conftest import FIGURE1_SOURCE, FIGURE2_SOURCE

RACY = "cobegin begin v = 1; end begin v = 2; end coend print(v);"
CLEAN = "a = 1;\nb = a + 1;\nprint(a, b);"


class TestTypedResults:
    def test_diagnose_returns_typed_result(self):
        result = api.diagnose(FIGURE1_SOURCE)
        assert isinstance(result, DiagnoseResult)
        assert result.stage == "diagnostics"
        assert result.races, "figure 1 has a known race"
        assert not result.clean
        for frame in result.diagnostics:
            assert "kind" in frame and "message" in frame

    def test_clean_program_is_clean(self):
        result = api.diagnose(CLEAN)
        assert result.clean
        assert result.warnings == [] and result.races == []

    def test_optimize_returns_typed_result(self):
        result = api.optimize(FIGURE2_SOURCE)
        assert isinstance(result, OptimizeResult)
        assert "print" in result.listing
        assert result.removed >= 0 and result.moved >= 0
        assert result.constants >= 0

    def test_analyze_artifacts(self):
        result = api.analyze(FIGURE2_SOURCE)
        assert type(result) is CompileResult
        assert result.artifacts["form"] == "CSSAME"
        assert result.artifacts["metrics"]["pi_terms"] >= 0

    def test_results_are_frozen(self):
        result = api.diagnose(CLEAN)
        with pytest.raises(AttributeError):
            result.stage = "other"

    def test_work_counters_present_on_cold_run(self):
        result = api.diagnose(FIGURE1_SOURCE)
        assert result.total_work > 0
        assert all(name.startswith("work.") for name in result.work)


class TestProvenance:
    def test_cold_then_warm_session(self):
        sess = Session()
        cold = api.diagnose(FIGURE1_SOURCE, session=sess)
        warm = api.diagnose(FIGURE1_SOURCE, session=sess)
        assert cold.provenance.cache_misses > 0
        assert warm.provenance.cache_misses == 0
        assert warm.provenance.cache_hits > 0
        # Cache provenance is the only difference; payloads agree.
        assert cold.artifacts == warm.artifacts
        assert cold.diagnostics == warm.diagnostics

    def test_provenance_fields(self):
        result = api.analyze(CLEAN)
        prov = result.provenance
        assert prov.version == __version__
        assert len(prov.source_key) == 64
        assert prov.artifact_key is not None and len(prov.artifact_key) == 64
        assert prov.stage == "analyze"


class TestWireRoundTrip:
    @pytest.mark.parametrize("stage", sorted(api.SERVE_STAGES))
    def test_as_dict_survives_json(self, stage):
        options = {"runs": 2, "explore": False} if stage == "audit" else None
        result = api.compile_source(FIGURE1_SOURCE, stage, options)
        payload = result.as_dict()
        rebuilt = result_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.as_dict() == payload
        assert type(rebuilt) is result_class_for(stage)

    def test_result_class_for(self):
        assert result_class_for("diagnostics") is DiagnoseResult
        assert result_class_for("optimized") is OptimizeResult
        assert result_class_for("dot") is CompileResult

    def test_provenance_roundtrip(self):
        prov = Provenance("s" * 64, "dot", "a" * 64, 2, 3)
        assert Provenance.from_dict(prov.as_dict()) == prov


class TestDeprecationShims:
    def test_analyze_source_warns_and_works(self):
        with pytest.deprecated_call():
            form = api.analyze_source(FIGURE2_SOURCE)
        # Legacy shape: the live CSSAME form object, not a result.
        assert hasattr(form, "program")

    def test_diagnose_source_warns_and_works(self):
        with pytest.deprecated_call():
            warnings_, races = api.diagnose_source(FIGURE1_SOURCE)
        assert races

    def test_optimize_source_warns_and_works(self):
        with pytest.deprecated_call():
            report = api.optimize_source(FIGURE2_SOURCE)
        assert "final" in report.listings

    def test_pfg_dot_warns_and_works(self):
        with pytest.deprecated_call():
            dot = api.pfg_dot(CLEAN, title="T")
        assert dot.startswith("digraph")

    def test_new_surface_does_not_warn(self, recwarn):
        api.diagnose(CLEAN)
        api.analyze(CLEAN)
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]


class TestStageOptions:
    def test_unknown_stage_rejected(self):
        from repro.errors import UnsupportedRequest

        with pytest.raises(UnsupportedRequest):
            api.stage_options("transmogrify")

    def test_unknown_option_rejected(self):
        from repro.errors import UnsupportedRequest

        with pytest.raises(UnsupportedRequest):
            api.stage_options("dot", {"nope": 1})

    def test_defaults_filled(self):
        options = api.stage_options("optimized")
        assert options == dict(api.SERVE_STAGES["optimized"])

    def test_lists_normalised_to_tuples(self):
        options = api.stage_options("optimized", {"passes": ["constprop"]})
        assert options["passes"] == ("constprop",)
