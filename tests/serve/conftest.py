"""Fixtures for the compile-service suite.

The harness runs a real :class:`CompileServer` on a background thread
bound to an ephemeral port (``port=0``), waits for the ready callback,
and drains it at teardown.  Tests talk to it over real sockets with
:class:`ServeClient` — the same path production traffic takes.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.serve.client import RetryPolicy, ServeClient
from repro.serve.server import CompileServer

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def example_sources() -> dict[str, str]:
    return {
        path.name: path.read_text(encoding="utf-8")
        for path in sorted(EXAMPLES.glob("*.par"))
    }


class ServerHarness:
    """A live server on a daemon thread, stopped by graceful drain."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self.server = CompileServer(**kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self.server.run, args=(self._on_ready,), daemon=True
        )

    def _on_ready(self, host: str, port: int) -> None:
        self._ready.set()

    def start(self) -> "ServerHarness":
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("server failed to start within 15s")
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs) -> ServeClient:
        kwargs.setdefault("timeout", 15.0)
        return ServeClient(self.host, self.port, **kwargs)

    def no_retry_client(self, **kwargs) -> ServeClient:
        return self.client(retry=RetryPolicy(attempts=1), **kwargs)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def stop(self) -> None:
        self.server.request_drain_threadsafe()
        self._thread.join(timeout=15)
        if self._thread.is_alive():  # pragma: no cover - a hang is the bug
            raise RuntimeError("server did not drain within 15s")


@pytest.fixture
def serve_factory():
    """Build any number of live servers; all drained at teardown."""
    harnesses: list[ServerHarness] = []

    def make(**kwargs) -> ServerHarness:
        harness = ServerHarness(**kwargs).start()
        harnesses.append(harness)
        return harness

    yield make
    for harness in harnesses:
        if harness.alive:
            harness.stop()


@pytest.fixture
def server(serve_factory):
    """One default live server."""
    return serve_factory()
