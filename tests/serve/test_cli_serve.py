"""CLI surface of the service: --version, request, exit codes, and a
real ``repro serve`` daemon driven over SIGTERM."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.cli import main
from tests.conftest import FIGURE1_SOURCE

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.par"
    path.write_text(FIGURE1_SOURCE)
    return str(path)


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestErrorTaxonomyOnStderr:
    def test_missing_file_is_e_io(self, capsys):
        assert main(["analyze", "/no/such/file.par"]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error: [E_IO]")

    def test_parse_error_is_e_parse(self, tmp_path, capsys):
        bad = tmp_path / "bad.par"
        bad.write_text("lock(L; a = ;")
        assert main(["analyze", str(bad)]) == 3
        assert capsys.readouterr().err.startswith("error: [E_PARSE]")


class TestRequestCommand:
    def test_request_diagnostics(self, server, fig1_file, capsys):
        code = main(
            ["request", fig1_file, "--host", server.host,
             "--port", str(server.port)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "race:" in out
        assert "cache_misses=" in out

    def test_request_json(self, server, fig1_file, capsys):
        code = main(
            ["request", fig1_file, "--json", "--stage", "optimized",
             "--host", server.host, "--port", str(server.port)]
        )
        assert code == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["ok"] is True
        assert frame["result"]["stage"] == "optimized"
        assert "listing" in frame["result"]["artifacts"]

    def test_request_parse_error_exit_3(self, server, tmp_path, capsys):
        bad = tmp_path / "bad.par"
        bad.write_text("lock(L; a = ;")
        code = main(
            ["request", str(bad), "--host", server.host,
             "--port", str(server.port)]
        )
        assert code == 3
        assert "error: [E_PARSE]" in capsys.readouterr().err

    def test_request_ops(self, server, capsys):
        code = main(
            ["request", "--kind", "ops", "--host", server.host,
             "--port", str(server.port)]
        )
        assert code == 0
        ops = json.loads(capsys.readouterr().out)
        assert ops["version"] == __version__

    def test_request_bad_options_json(self, server, fig1_file, capsys):
        code = main(
            ["request", fig1_file, "--options", "{not json",
             "--host", server.host, "--port", str(server.port)]
        )
        assert code == 3
        assert "[E_USAGE]" in capsys.readouterr().err

    def test_request_no_server_is_service_trouble(self, fig1_file, capsys):
        # Port 1 is never listening; the connection is refused.
        code = main(
            ["request", fig1_file, "--port", "1", "--timeout", "2"]
        )
        assert code == 3
        assert "error: [E_IO]" in capsys.readouterr().err


class TestServeDaemon:
    def test_sigterm_drains_cleanly(self, tmp_path, fig1_file, capsys):
        """Boot the real daemon, serve one request, SIGTERM it."""
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        store = str(tmp_path / "store")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", store],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            ready = proc.stdout.readline()
            assert "listening on" in ready, ready
            port = int(ready.split("listening on ")[1].split()[0].split(":")[1])

            code = main(["request", fig1_file, "--port", str(port)])
            assert code == 0
            assert "race:" in capsys.readouterr().out

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
            assert "drained" in proc.stdout.read()
            # The store survived the daemon.
            art = list(Path(store).rglob("*.art"))
            assert art, "no artifacts persisted"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)

    def test_restarted_daemon_serves_warm(self, tmp_path, fig1_file, capsys):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        store = str(tmp_path / "store")

        def boot():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--store", store],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                env=env,
                text=True,
            )
            ready = proc.stdout.readline()
            port = int(ready.split("listening on ")[1].split()[0].split(":")[1])
            return proc, port

        proc, port = boot()
        try:
            assert main(["request", fig1_file, "--port", str(port)]) == 0
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)
        capsys.readouterr()

        proc, port = boot()
        try:
            assert main(
                ["request", fig1_file, "--json", "--port", str(port)]
            ) == 0
            frame = json.loads(capsys.readouterr().out)
            # Warm across restart: every stage came from the store.
            assert frame["result"]["provenance"]["cache_misses"] == 0
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                assert proc.wait(timeout=15) == 0
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=15)
