"""Fault injection: every failure becomes a typed frame, never a hang.

The ``worker=`` injection point of :class:`CompileServer` lets these
tests script the stage computation — crash it, stall it, or gate it on
an event — while the protocol, backpressure, deadline, and drain
machinery under test is the real production code.
"""

import threading
import time

import pytest

from repro.errors import (
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTDOWN,
    E_TIMEOUT,
    RemoteError,
)


def _payload(stage: str) -> dict:
    """A minimal well-formed wire payload for scripted workers."""
    return {
        "stage": stage,
        "artifacts": {"ok": True},
        "diagnostics": [],
        "work": {},
        "provenance": {
            "source_key": "0" * 64,
            "stage": stage,
            "artifact_key": None,
            "cache_hits": 0,
            "cache_misses": 0,
        },
    }


class TestWorkerCrash:
    def test_worker_exception_becomes_internal_frame(self, serve_factory):
        def exploding(session, stage, source, options):
            raise RuntimeError("kaboom")

        server = serve_factory(worker=exploding)
        with server.no_retry_client() as client:
            response = client.request("a = 1;", "diagnostics")
        assert response["ok"] is False
        assert response["error"]["code"] == E_INTERNAL
        assert "kaboom" in response["error"]["message"]
        # The server survives its worker's crash.
        with server.client() as client:
            assert client.ping()["pong"] is True


class TestDeadline:
    def test_slow_stage_times_out(self, serve_factory):
        def slow(session, stage, source, options):
            time.sleep(0.5)
            return _payload(stage)

        server = serve_factory(worker=slow, deadline_ms=50.0)
        t0 = time.monotonic()
        with server.no_retry_client() as client:
            response = client.request("a = 1;", "optimized")
        elapsed = time.monotonic() - t0
        assert response["ok"] is False
        assert response["error"]["code"] == E_TIMEOUT
        assert "optimized" in response["error"]["message"]
        # The frame arrived at the deadline, not after the worker woke.
        assert elapsed < 0.45
        # Once the abandoned worker finishes, the server serves again.
        time.sleep(0.6)
        with server.client() as client:
            assert client.ping()["pong"] is True

    def test_no_deadline_means_no_timeout(self, serve_factory):
        def slowish(session, stage, source, options):
            time.sleep(0.1)
            return _payload(stage)

        server = serve_factory(worker=slowish, deadline_ms=None)
        with server.no_retry_client() as client:
            response = client.request("a = 1;", "diagnostics")
        assert response["ok"] is True


class TestBackpressure:
    def test_queue_full_returns_overloaded(self, serve_factory):
        entered = threading.Event()
        release = threading.Event()

        def gated(session, stage, source, options):
            entered.set()
            assert release.wait(timeout=15)
            return _payload(stage)

        server = serve_factory(worker=gated, jobs=1, queue_limit=1)
        responses: list[dict] = []

        def occupy() -> None:
            with server.no_retry_client() as client:
                responses.append(client.request("a = 1;", "diagnostics"))

        first = threading.Thread(target=occupy)
        first.start()
        assert entered.wait(timeout=15), "first request never reached a worker"

        with server.no_retry_client() as client:
            refused = client.request("b = 2;", "diagnostics")
        assert refused["ok"] is False
        assert refused["error"]["code"] == E_OVERLOADED
        assert "1/1" in refused["error"]["message"]

        release.set()
        first.join(timeout=15)
        assert responses and responses[0]["ok"] is True

    def test_slot_freed_after_completion(self, serve_factory):
        server = serve_factory(jobs=1, queue_limit=1)
        with server.client() as client:
            for _ in range(3):  # sequential: the slot must recycle
                assert client.request("a = 1; print(a);", "diagnostics")["ok"]
            assert client.ops()["queue_depth"] == 0


class TestDrainUnderLoad:
    def test_inflight_finishes_new_work_refused(self, serve_factory):
        entered = threading.Event()
        release = threading.Event()

        def gated(session, stage, source, options):
            entered.set()
            assert release.wait(timeout=15)
            return _payload(stage)

        server = serve_factory(worker=gated)
        responses: list[dict] = []

        def inflight() -> None:
            with server.no_retry_client() as client:
                responses.append(client.request("a = 1;", "diagnostics"))

        worker_thread = threading.Thread(target=inflight)
        worker_thread.start()
        assert entered.wait(timeout=15)

        # Drain starts while the request is in flight; a second compile
        # on an already-open connection gets a typed E_SHUTDOWN.
        with server.no_retry_client() as client:
            client.ping()  # open the connection before the listener closes
            server.server.request_drain_threadsafe()
            deadline = time.monotonic() + 15
            while not server.server.draining:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            refused = client.request("b = 2;", "diagnostics")
        assert refused["ok"] is False
        assert refused["error"]["code"] == E_SHUTDOWN

        # The in-flight request still completes with its real answer.
        release.set()
        worker_thread.join(timeout=15)
        assert responses and responses[0]["ok"] is True
        server._thread.join(timeout=15)
        assert not server.alive


class TestClientDisconnect:
    def test_disconnect_mid_request_does_not_wedge_server(self, serve_factory):
        entered = threading.Event()
        release = threading.Event()

        def gated(session, stage, source, options):
            entered.set()
            assert release.wait(timeout=15)
            return _payload(stage)

        server = serve_factory(worker=gated)
        client = server.no_retry_client()
        try:
            client._connect()
            from repro.serve.protocol import encode_frame

            client._sock.sendall(
                encode_frame(
                    {
                        "v": 1,
                        "id": "gone",
                        "kind": "compile",
                        "source": "a = 1;",
                        "stage": "diagnostics",
                    }
                )
            )
            assert entered.wait(timeout=15)
        finally:
            client.close()  # vanish with the request still in flight

        release.set()
        # The server cancelled the request's task and stays healthy.
        with server.client() as fresh:
            assert fresh.ping()["pong"] is True
            deadline = time.monotonic() + 15
            while fresh.ops()["queue_depth"] > 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)


class TestStoreFaults:
    def test_truncated_store_recomputes(self, serve_factory, tmp_path):
        from pathlib import Path

        store_dir = str(tmp_path / "store")
        source = "a = 1;\ncobegin begin lock(L); a = 2; unlock(L); end coend\nprint(a);"

        first = serve_factory(store_dir=store_dir)
        with first.client() as client:
            good = client.request(source, "diagnostics")
        first.stop()
        art_files = sorted(Path(store_dir).rglob("*.art"))
        assert art_files
        for path in art_files:
            path.write_bytes(path.read_bytes()[:10])

        second = serve_factory(store_dir=store_dir)
        with second.client() as client:
            recomputed = client.request(source, "diagnostics")
            ops = client.ops()
        assert recomputed["ok"] is True
        assert recomputed["result"]["artifacts"] == good["result"]["artifacts"]
        assert ops["store"]["corruptions"] > 0


class TestRemoteErrorMapping:
    def test_remote_error_exit_parity(self, serve_factory):
        """A RemoteError's code drives the same exit code locally."""
        from repro.errors import exit_code_for

        server = serve_factory()
        with server.no_retry_client() as client:
            with pytest.raises(RemoteError) as info:
                client.compile("lock(L; a = ;", "diagnostics")
        assert exit_code_for(info.value.code) == 3
