"""Bytecode container and disassembly."""

from repro.vm.bytecode import Instr, Op, VMProgram
from repro.vm.compile import compile_program
from tests.conftest import build


class TestDisassembly:
    def test_every_op_renders(self):
        source = """
        a = 1;
        print(a);
        f(a);
        lock(L); unlock(L);
        set(e); wait(e);
        cobegin begin barrier(B); end coend
        if (a) { b = 2; } else { b = 3; }
        while (a < 5) { a = a + 1; }
        """
        prog = compile_program(build(source))
        text = prog.disassemble()
        ops = {i.op for i in prog.instrs}
        assert ops >= {
            Op.ASSIGN, Op.PRINT, Op.CALL, Op.LOCK, Op.UNLOCK,
            Op.SET, Op.WAIT, Op.BARRIER, Op.COBEGIN, Op.END_THREAD,
            Op.BRANCH, Op.JUMP, Op.HALT,
        }
        for fragment in ("a = 1", "print(a)", "f(a)", "lock(L)",
                         "unlock(L)", "set(e)", "wait(e)", "barrier(B)",
                         "spawn", "goto", "if !("):
            assert fragment in text, fragment

    def test_pc_labels_align(self):
        prog = compile_program(build("a = 1; b = 2;"))
        lines = prog.disassemble().splitlines()
        assert lines[0].strip().startswith("0:")
        assert len(lines) == len(prog)

    def test_instr_repr(self):
        instr = Instr(Op.JUMP, target=5)
        assert "jump" in repr(instr) and "->5" in repr(instr)

    def test_vmprogram_len(self):
        prog = VMProgram([Instr(Op.HALT)])
        assert len(prog) == 1


class TestBarrierCounts:
    def test_participant_count_encoded(self):
        prog = compile_program(
            build(
                """
                cobegin
                begin barrier(B); end
                begin barrier(B); end
                begin x = 1; end
                coend
                """
            )
        )
        barriers = [i for i in prog.instrs if i.op is Op.BARRIER]
        assert [b.target for b in barriers] == [2, 2]

    def test_toplevel_barrier_count_one(self):
        prog = compile_program(build("barrier(B);"))
        (b,) = [i for i in prog.instrs if i.op is Op.BARRIER]
        assert b.target == 1

    def test_nested_scope_counts(self):
        prog = compile_program(
            build(
                """
                cobegin
                begin
                    barrier(OUTER);
                    cobegin
                    begin barrier(INNER); end
                    begin barrier(INNER); end
                    coend
                end
                begin barrier(OUTER); end
                coend
                """
            )
        )
        by_name = {}
        for i in prog.instrs:
            if i.op is Op.BARRIER:
                by_name.setdefault(i.name, set()).add(i.target)
        assert by_name == {"OUTER": {2}, "INNER": {2}}
