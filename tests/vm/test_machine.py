"""The interleaving VM with seeded random scheduling."""

import pytest

from repro.errors import DeadlockError, StepLimitExceeded, VMError
from repro.vm.machine import VirtualMachine, default_functions, run_random
from tests.conftest import build


def run(source, seed=0, **kw):
    return run_random(build(source), seed=seed, **kw)


class TestSequentialExecution:
    def test_arithmetic(self):
        ex = run("a = 2; b = a * 3 + 1; print(b);")
        assert ex.printed == [(7,)]

    def test_truncating_division(self):
        ex = run("print(-7 / 2, -7 % 2);")
        assert ex.printed == [(-3, -1)]

    def test_unset_variable_reads_zero(self):
        ex = run("print(zz);")
        assert ex.printed == [(0,)]

    def test_if_else(self):
        assert run("a = 5; if (a > 3) { print(1); } else { print(2); }").printed == [(1,)]
        assert run("a = 1; if (a > 3) { print(1); } else { print(2); }").printed == [(2,)]

    def test_while_loop(self):
        ex = run("i = 0; s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s);")
        assert ex.printed == [(10,)]

    def test_no_short_circuit_documented(self):
        # Both operands always evaluate: 0 && (1/0) faults.
        with pytest.raises(VMError):
            run("x = 0 && 1 / 0;")

    def test_call_events_recorded(self):
        ex = run("f(1, 2); print(3);")
        assert ex.events[0] == ("call", "f", (1, 2))

    def test_expression_call_deterministic(self):
        a = run("x = g(7); print(x);").printed
        b = run("x = g(7); print(x);", seed=99).printed
        assert a == b

    def test_custom_function_binding(self):
        ex = run("x = g(7); print(x);", functions=lambda name, args: args[0] * 2)
        assert ex.printed == [(14,)]

    def test_division_by_zero_raises(self):
        with pytest.raises(VMError):
            run("x = 1 / 0;")


class TestConcurrency:
    def test_cobegin_joins_before_continue(self):
        ex = run(
            "cobegin begin a = 1; end begin b = 2; end coend print(a + b);"
        )
        assert ex.printed == [(3,)]

    def test_locks_serialize(self):
        # Both increments always take effect when protected.
        for seed in range(20):
            ex = run(
                """
                x = 0;
                cobegin
                begin lock(L); t1 = x; x = t1 + 1; unlock(L); end
                begin lock(L); t2 = x; x = t2 + 1; unlock(L); end
                coend
                print(x);
                """,
                seed=seed,
            )
            assert ex.printed == [(2,)]

    def test_unprotected_race_can_lose_update(self):
        outcomes = set()
        for seed in range(60):
            ex = run(
                """
                x = 0;
                cobegin
                begin t1 = x; x = t1 + 1; end
                begin t2 = x; x = t2 + 1; end
                coend
                print(x);
                """,
                seed=seed,
            )
            outcomes.add(ex.printed[0])
        assert (2,) in outcomes
        assert (1,) in outcomes  # the classic lost update

    def test_event_ordering(self):
        for seed in range(10):
            ex = run(
                """
                cobegin
                begin x = 5; set(e); end
                begin wait(e); print(x); end
                coend
                """,
                seed=seed,
            )
            assert ex.printed == [(5,)]

    def test_nested_cobegin(self):
        ex = run(
            """
            cobegin
            begin
                cobegin begin a = 1; end begin b = 2; end coend
                c = a + b;
            end
            begin d = 10; end
            coend
            print(c + d);
            """
        )
        assert ex.printed == [(13,)]

    def test_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            run(
                """
                cobegin
                begin lock(A); lock(B); unlock(B); unlock(A); end
                begin lock(B); wait(never); unlock(B); end
                coend
                """
            )

    def test_deadlock_reported_not_raised(self):
        ex = run("wait(never);", raise_on_deadlock=False)
        assert ex.deadlocked

    def test_self_deadlock_non_reentrant(self):
        with pytest.raises(DeadlockError):
            run("lock(L); lock(L); unlock(L); unlock(L);")

    def test_unlock_unowned_raises(self):
        with pytest.raises(VMError):
            run("unlock(L);")

    def test_fuel_limit(self):
        with pytest.raises(StepLimitExceeded):
            run("while (1) { x = x + 1; }", fuel=100)


class TestInstrumentation:
    def test_lock_held_steps_positive(self):
        ex = run("lock(L); a = 1; b = 2; unlock(L);")
        assert ex.lock_held_steps["L"] >= 2

    def test_acquisition_count(self):
        ex = run("lock(L); unlock(L); lock(L); unlock(L);")
        assert ex.lock_acquisitions["L"] == 2

    def test_blocked_steps_under_contention(self):
        total_blocked = 0
        for seed in range(10):
            ex = run(
                """
                cobegin
                begin lock(L); a = 1; a = 2; a = 3; unlock(L); end
                begin lock(L); b = 1; b = 2; b = 3; unlock(L); end
                coend
                """,
                seed=seed,
            )
            total_blocked += ex.lock_blocked_steps.get("L", 0)
        assert total_blocked > 0

    def test_final_memory_snapshot(self):
        ex = run("a = 4; b = a + 1;")
        assert ex.memory == {"a": 4, "b": 5}


class TestDeterminism:
    def test_same_seed_same_run(self):
        src = """
        x = 0;
        cobegin
        begin x = x + 1; end
        begin x = x * 2; end
        coend
        print(x);
        """
        a = run_random(build(src), seed=5)
        b = run_random(build(src), seed=5)
        assert a.events == b.events and a.steps == b.steps

    def test_default_functions_pure(self):
        assert default_functions("f", [1, 2]) == default_functions("f", [1, 2])
        assert default_functions("f", [1]) != default_functions("g", [1])
