"""Schedule witness extraction and replay."""

import pytest

from repro.errors import VMError
from repro.vm import VirtualMachine, explore, find_witness
from tests.conftest import build


RACY = """
x = 0;
cobegin
begin t1 = x; x = t1 + 1; end
begin t2 = x; x = t2 + 1; end
coend
print(x);
"""


class TestFindWitness:
    def test_witness_for_each_outcome(self):
        program = build(RACY)
        res = explore(program)
        for outcome in res.outcomes:
            schedule = find_witness(build(RACY), outcome)
            assert schedule is not None, outcome

    def test_witness_replays_to_outcome(self):
        program = build(RACY)
        lost_update = (("print", (1,)),)
        schedule = find_witness(build(RACY), lost_update)
        assert schedule is not None
        vm = VirtualMachine(build(RACY))
        ex = vm.replay(schedule)
        assert ex.output_key() == lost_update

    def test_impossible_outcome_returns_none(self):
        schedule = find_witness(build(RACY), (("print", (99,)),))
        assert schedule is None

    def test_deadlock_witness(self):
        src = """
        cobegin
        begin lock(A); lock(B); unlock(B); unlock(A); end
        begin lock(B); lock(A); unlock(A); unlock(B); end
        coend
        """
        schedule = find_witness(build(src), (("deadlock",),))
        assert schedule is not None
        vm = VirtualMachine(build(src))
        ex = vm.replay(schedule)
        assert ex.deadlocked

    def test_sequential_witness_is_full_run(self):
        src = "a = 1; print(a);"
        schedule = find_witness(build(src), (("print", (1,)),))
        assert schedule is not None
        assert all(tid == () for tid in schedule)


class TestReplay:
    def test_replay_deterministic(self):
        program = build(RACY)
        res = explore(program)
        outcome = sorted(res.outcomes)[0]
        schedule = find_witness(build(RACY), outcome)
        for _ in range(3):
            ex = VirtualMachine(build(RACY)).replay(schedule)
            assert ex.output_key() == outcome

    def test_replay_rejects_bad_thread(self):
        vm = VirtualMachine(build("print(1);"))
        with pytest.raises(VMError):
            vm.replay([(9, 9)])

    def test_replay_rejects_blocked_thread(self):
        vm = VirtualMachine(build("wait(never); print(1);"))
        with pytest.raises(VMError):
            vm.replay([()])
