"""Exhaustive interleaving exploration."""

from repro.vm.explore import explore
from repro.vm.machine import run_random
from tests.conftest import build


def outcomes(source, **kw):
    return explore(build(source), **kw)


class TestSequential:
    def test_single_outcome(self):
        res = outcomes("a = 1; print(a);")
        assert res.outcomes == {(("print", (1,)),)}
        assert res.complete

    def test_empty_program(self):
        res = outcomes("")
        assert res.outcomes == {()}

    def test_loop(self):
        res = outcomes("i = 0; while (i < 3) { i = i + 1; } print(i);")
        assert res.outcomes == {(("print", (3,)),)}


class TestInterleavings:
    def test_print_order_both_ways(self):
        res = outcomes(
            "cobegin begin print(1); end begin print(2); end coend"
        )
        assert res.outcomes == {
            (("print", (1,)), ("print", (2,))),
            (("print", (2,)), ("print", (1,))),
        }

    def test_lost_update_enumerated(self):
        res = outcomes(
            """
            x = 0;
            cobegin
            begin t1 = x; x = t1 + 1; end
            begin t2 = x; x = t2 + 1; end
            coend
            print(x);
            """
        )
        finals = {o[0][1][0] for o in res.outcomes}
        assert finals == {1, 2}

    def test_locked_increments_single_outcome(self):
        res = outcomes(
            """
            x = 0;
            cobegin
            begin lock(L); t1 = x; x = t1 + 1; unlock(L); end
            begin lock(L); t2 = x; x = t2 + 1; unlock(L); end
            coend
            print(x);
            """
        )
        assert res.outcomes == {(("print", (2,)),)}

    def test_figure2_outcomes(self, figure2):
        res = explore(figure2)
        assert res.outcomes == {
            (("print", (13,)), ("print", (6,))),
            (("print", (13,)), ("print", (14,))),
        }

    def test_deadlock_outcome(self):
        res = outcomes(
            """
            cobegin
            begin lock(A); lock(B); unlock(B); unlock(A); end
            begin lock(B); lock(A); unlock(A); unlock(B); end
            coend
            print(1);
            """
        )
        assert res.can_deadlock
        # The non-deadlocking schedules still print.
        assert (("print", (1,)),) in res.outcomes

    def test_event_enforces_order(self):
        res = outcomes(
            """
            cobegin
            begin x = 5; set(e); end
            begin wait(e); print(x); end
            coend
            """
        )
        assert res.outcomes == {(("print", (5,)),)}

    def test_random_runs_within_explored_set(self):
        src = """
        x = 1;
        cobegin
        begin x = x + 1; end
        begin x = x * 3; end
        coend
        print(x);
        """
        res = outcomes(src)
        for seed in range(30):
            ex = run_random(build(src), seed=seed)
            assert ex.output_key() in res.outcomes


class TestBudget:
    def test_truncation_flagged(self):
        res = outcomes(
            """
            cobegin
            begin a = 1; a = 2; a = 3; a = 4; end
            begin b = 1; b = 2; b = 3; b = 4; end
            begin c = 1; c = 2; c = 3; c = 4; end
            coend
            """,
            max_states=10,
        )
        assert not res.complete

    def test_state_sharing_keeps_count_small(self):
        # Two independent threads of n steps: O(n^2) states, not 2^n.
        res = outcomes(
            """
            cobegin
            begin a = 1; a = 2; a = 3; a = 4; a = 5; end
            begin b = 1; b = 2; b = 3; b = 4; b = 5; end
            coend
            """
        )
        assert res.complete
        assert res.states < 200
