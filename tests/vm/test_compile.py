"""Structured IR → bytecode compilation."""

from repro.cssame import build_cssame
from repro.vm.bytecode import Op
from repro.vm.compile import compile_program
from tests.conftest import build


def ops(source):
    return [i.op for i in compile_program(build(source)).instrs]


class TestShapes:
    def test_straightline(self):
        assert ops("a = 1; print(a);") == [Op.ASSIGN, Op.PRINT, Op.HALT]

    def test_if_else(self):
        sequence = ops("if (c) { a = 1; } else { a = 2; } b = 3;")
        assert sequence == [
            Op.BRANCH, Op.ASSIGN, Op.JUMP, Op.ASSIGN, Op.ASSIGN, Op.HALT,
        ]

    def test_if_no_else_has_no_jump(self):
        assert ops("if (c) { a = 1; } b = 2;") == [
            Op.BRANCH, Op.ASSIGN, Op.ASSIGN, Op.HALT,
        ]

    def test_branch_target_points_past_then(self):
        prog = compile_program(build("if (c) { a = 1; } b = 2;"))
        assert prog.instrs[0].target == 2

    def test_while_shape(self):
        prog = compile_program(build("while (c) { a = 1; } b = 2;"))
        sequence = [i.op for i in prog.instrs]
        assert sequence == [Op.BRANCH, Op.ASSIGN, Op.JUMP, Op.ASSIGN, Op.HALT]
        assert prog.instrs[2].target == 0  # back edge
        assert prog.instrs[0].target == 3  # exit

    def test_cobegin_layout(self):
        prog = compile_program(
            build("cobegin begin a = 1; end begin b = 2; end coend c = 3;")
        )
        cob = prog.instrs[0]
        assert cob.op is Op.COBEGIN
        assert len(cob.entries) == 2
        for entry in cob.entries:
            assert prog.instrs[entry].op is Op.ASSIGN
        assert prog.instrs[cob.target].op is Op.ASSIGN  # parent resume
        ends = [i for i in prog.instrs if i.op is Op.END_THREAD]
        assert len(ends) == 2

    def test_sync_instructions(self):
        assert ops("lock(L); unlock(L); set(e); wait(e);") == [
            Op.LOCK, Op.UNLOCK, Op.SET, Op.WAIT, Op.HALT,
        ]

    def test_skip_emits_nothing(self):
        assert ops("skip;") == [Op.HALT]


class TestSSAForms:
    def test_phi_is_noop(self, figure2):
        build_cssame(figure2, prune=False)
        prog = compile_program(figure2)
        # φ terms vanish; π terms become ASSIGN copies.
        from repro.ir.structured import iter_statements
        from repro.ir.stmts import Pi

        n_pis = sum(1 for s, _ in iter_statements(figure2) if isinstance(s, Pi))
        pi_copies = [
            i for i in prog.instrs
            if i.op is Op.ASSIGN and i.name and i.name.startswith("t")
        ]
        assert len(pi_copies) == n_pis

    def test_disassemble_readable(self):
        prog = compile_program(build("a = 1; if (a) { print(a); }"))
        text = prog.disassemble()
        assert "a = 1" in text
        assert "goto" in text or "if !(" in text
