"""Error-type hierarchy tests."""

import pytest

from repro import errors


def test_hierarchy():
    for cls in (
        errors.LexError,
        errors.ParseError,
        errors.SemanticError,
        errors.CFGError,
        errors.SSAError,
        errors.AnalysisError,
        errors.TransformError,
        errors.VMError,
    ):
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.DeadlockError, errors.VMError)
    assert issubclass(errors.StepLimitExceeded, errors.VMError)


def test_source_location():
    loc = errors.SourceLocation(3, 7)
    assert str(loc) == "3:7"
    assert loc == errors.SourceLocation(3, 7)
    assert loc != errors.SourceLocation(3, 8)
    assert hash(loc) == hash(errors.SourceLocation(3, 7))


def test_lex_error_message_includes_location():
    err = errors.LexError("bad char", errors.SourceLocation(2, 5))
    assert "2:5" in str(err)
    assert err.location.line == 2


def test_deadlock_error_payload():
    err = errors.DeadlockError({(0,), (1,)}, {"L": (0,)})
    assert err.blocked_threads == ((0,), (1,))
    assert err.held_locks == {"L": (0,)}
    assert "deadlock" in str(err)


def test_step_limit_payload():
    err = errors.StepLimitExceeded(500)
    assert err.limit == 500
    assert "500" in str(err)
