"""Figure 3 — CSSA form (3a) vs CSSAME form (3b) of the Figure 2 program.

Exact reproduction of the paper's π/φ structure:

Figure 3a (CSSA): five π terms —
    ta1  = π(a1, a4)          before  b = a + 3
    ta11 = π(a1, a4)          before  a = a + b
    π(a3, a4)                 before  x = a
    tb0  = π(b0, b1)          before  a = b + 6
    π(a4, a1, a2)             before  y = a
plus φ terms a3 = φ(a1, a2) at the if-join and a5 = φ(a3, a4) at coend.

Figure 3b (CSSAME): only tb0 = π(b0, b1) survives.
"""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.stmts import Phi, Pi
from repro.ir.structured import iter_statements
from repro.report import measure_form
from tests.conftest import build, FIGURE2_SOURCE


def pis(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, Pi)]


def phis(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, Phi)]


def pi_signature(pi):
    return (
        pi.var_name,
        pi.control.ssa_name,
        frozenset(v.ssa_name for v in pi.conflicts),
    )


class TestFigure3a:
    def test_five_pi_terms(self):
        program = build(FIGURE2_SOURCE)
        build_cssame(program, prune=False)
        signatures = {pi_signature(p) for p in pis(program)}
        assert signatures == {
            ("a", "a1", frozenset({"a4"})),
            ("a", "a1", frozenset({"a4"})) ,
            ("a", "a3", frozenset({"a4"})),
            ("b", "b0", frozenset({"b1"})),
            ("a", "a4", frozenset({"a1", "a2"})),
        }
        assert len(pis(program)) == 5

    def test_phi_terms(self):
        program = build(FIGURE2_SOURCE)
        build_cssame(program, prune=False)
        phi_sigs = {
            (p.ssa_target, frozenset(a.var.ssa_name for a in p.args))
            for p in phis(program)
        }
        assert phi_sigs == {
            ("a3", frozenset({"a1", "a2"})),
            ("a5", frozenset({"a3", "a4"})),
        }

    def test_metrics(self):
        program = build(FIGURE2_SOURCE)
        build_cssame(program, prune=False)
        m = measure_form(program)
        assert m.pi_terms == 5
        assert m.pi_args == 11  # 5 control + 6 conflict args
        assert m.phi_terms == 2


class TestFigure3b:
    def test_single_surviving_pi(self):
        program = build(FIGURE2_SOURCE)
        build_cssame(program, prune=True)
        assert [pi_signature(p) for p in pis(program)] == [
            ("b", "b0", frozenset({"b1"}))
        ]

    def test_phis_unchanged(self):
        program = build(FIGURE2_SOURCE)
        build_cssame(program, prune=True)
        assert {p.ssa_target for p in phis(program)} == {"a3", "a5"}

    def test_listing_matches_paper_t0(self):
        program = build(FIGURE2_SOURCE)
        build_cssame(program, prune=True)
        text = format_ir(program)
        for line in (
            "a1 = 5;",
            "b1 = a1 + 3;",
            "a2 = a1 + b1;",
            "x0 = a3;",
            "tb0 = pi(b0, b1);",
            "a4 = tb0 + 6;",
            "y0 = a4;",
        ):
            assert line in text, f"missing {line!r} in:\n{text}"
        assert text.count("pi(") == 1

    def test_reduction_stats(self):
        program = build(FIGURE2_SOURCE)
        form = build_cssame(program, prune=True)
        s = form.rewrite_stats
        assert (s.pis_before, s.pis_after) == (5, 1)
        assert (s.args_before, s.args_after) == (6, 1)
