"""Figure 1 — mutual exclusion reduces cross-thread data dependencies.

Paper claims for the Figure 1 program:

* the assignment ``a = a + b`` in T0 cannot reach the second use of
  ``a`` in T1 (it is killed by ``a = 3``);
* therefore ``g(a)`` is always called with ``a = 3`` — constant
  propagation can prove it under CSSAME but not under plain CSSA.
"""

from repro.cssame import build_cssame, parallel_reaching_definitions
from repro.ir.printer import format_ir
from repro.ir.stmts import Pi, SAssign, SCallStmt
from repro.ir.structured import clone_program, iter_statements
from repro.opt import concurrent_constant_propagation
from tests.conftest import FIGURE1_SOURCE, build


def a_def(program, version):
    return next(
        s for s, _ in iter_statements(program)
        if isinstance(s, SAssign) and s.target == "a" and s.version == version
    )


class TestFigure1:
    def test_first_use_keeps_conflict(self, figure1):
        build_cssame(figure1)
        # f(a) in T1 runs unlocked before the critical section: the
        # definition from T0 can still reach it.
        f_call = next(
            s for s, _ in iter_statements(figure1)
            if isinstance(s, SCallStmt) and s.func == "f"
        )
        use = next(f_call.uses())
        assert isinstance(use.def_site, Pi)

    def test_second_use_loses_t0_def(self, figure1):
        build_cssame(figure1)
        info = parallel_reaching_definitions(figure1)
        g_holder = next(
            s for s, _ in iter_statements(figure1)
            if isinstance(s, SAssign) and s.target == "b" and s.version == 1
        )
        reaching_a = set()
        for use in g_holder.uses():
            for d in info.defs(use):
                if getattr(d, "target", None) == "a":
                    reaching_a.add(d)
        t0_def = a_def(figure1, 1)   # a = a + b in T0
        t1_def = a_def(figure1, 2)   # a = 3 in T1
        assert t1_def in reaching_a
        assert t0_def not in reaching_a, (
            "Theorem 2 should kill T0's def at the protected use"
        )

    def test_g_sees_constant_3_under_cssame(self):
        program = build(FIGURE1_SOURCE)
        form = build_cssame(program, prune=True)
        concurrent_constant_propagation(program, form.graph)
        text = format_ir(program)
        assert "g(3)" in text, text

    def test_g_not_constant_under_cssa(self):
        program = build(FIGURE1_SOURCE)
        form = build_cssame(program, prune=False)
        concurrent_constant_propagation(program, form.graph)
        text = format_ir(program)
        assert "g(3)" not in text

    def test_semantics_preserved(self):
        from repro.opt import optimize
        from repro.verify import exhaustive_equivalence

        program = build(FIGURE1_SOURCE)
        report = optimize(program)
        res = exhaustive_equivalence(report.baseline, program)
        assert res.complete and res.equal, res.explain()
