"""Figure 2 — the running example's PFG.

The figure shows a PFG with dedicated Lock/Unlock nodes, cobegin/coend
nodes, conflict edges between the threads' accesses to ``a`` and ``b``,
and mutex edges between the Lock/Unlock pairs of the two threads.
"""

from repro.api import analyze_source
from repro.cfg.blocks import NodeKind
from repro.report import pfg_inventory
from tests.conftest import FIGURE2_SOURCE


class TestFigure2PFG:
    def test_node_inventory(self):
        form = analyze_source(FIGURE2_SOURCE, prune=False)
        inv = pfg_inventory(form)
        assert inv["nodes_entry"] == 1
        assert inv["nodes_exit"] == 1
        assert inv["nodes_cobegin"] == 1
        assert inv["nodes_coend"] == 1
        assert inv["nodes_lock"] == 2
        assert inv["nodes_unlock"] == 2

    def test_mutex_edges(self):
        form = analyze_source(FIGURE2_SOURCE, prune=False)
        inv = pfg_inventory(form)
        # Lock(T0)—Unlock(T1) and Lock(T1)—Unlock(T0), both on L.
        assert inv["edges_mutex"] == 2
        assert all(e.lock_name == "L" for e in form.graph.mutex_edges)

    def test_conflict_edges_on_a_and_b(self):
        form = analyze_source(FIGURE2_SOURCE, prune=False)
        edge_vars = {e.var for e in form.graph.conflict_edges}
        assert edge_vars == {"a", "b"}
        kinds = {e.kind for e in form.graph.conflict_edges}
        assert "DU" in kinds and "DD" in kinds

    def test_conflict_edges_cross_threads_only(self):
        form = analyze_source(FIGURE2_SOURCE, prune=False)
        g = form.graph
        for e in form.graph.conflict_edges:
            src = g.blocks[e.src_block]
            dst = g.blocks[e.dst_block]
            assert src.thread_path and dst.thread_path
            assert src.thread_path != dst.thread_path

    def test_shared_variable_set(self):
        form = analyze_source(FIGURE2_SOURCE, prune=False)
        assert form.shared == {"a", "b"}

    def test_dot_export_renders_everything(self):
        from repro.api import pfg_dot

        dot = pfg_dot(FIGURE2_SOURCE)
        assert dot.count("hexagon") == 4  # 2 locks + 2 unlocks
        assert "style=dotted" in dot      # mutex edges
        assert "style=dashed" in dot      # conflict edges
