"""Figure 4 — constant propagation: CSSA (4a) vs CSSAME (4b).

4a: the π terms make every value of ``a``/``b`` unknown in T0 — no
constants propagate (conservatively correct but weak).

4b: with the π terms pruned, T0 folds completely:
    a1 = 5; b1 = 8; a2 = 13; a3 = 13; x0 = 13  (branch folded too),
while T1 keeps tb0 = π(b0, b1) and stays symbolic.
"""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.opt import concurrent_constant_propagation
from tests.conftest import FIGURE2_SOURCE, build


def run(prune):
    program = build(FIGURE2_SOURCE)
    form = build_cssame(program, prune=prune)
    stats = concurrent_constant_propagation(
        program, form.graph, fold_output_uses=False
    )
    return program, stats, format_ir(program)


class TestFigure4a:
    def test_no_constants_in_t0(self):
        _, stats, text = run(prune=False)
        # T0's chain stays symbolic.
        assert "b1 = ta1 + 3;" in text
        assert "a2 = ta11 + b1;" in text
        assert "x0 = ta3;" in text
        assert "if (b1 > 4)" in text
        # Only literal definitions are constant; nothing propagates.
        assert set(stats.constants) == {"a0", "b0", "a1"}

    def test_branch_not_folded(self):
        _, stats, _ = run(prune=False)
        assert stats.branches_folded == 0


class TestFigure4b:
    def test_t0_fully_constant(self):
        _, stats, text = run(prune=True)
        for line in ("a1 = 5;", "b1 = 8;", "a2 = 13;", "a3 = 13;", "x0 = 13;"):
            assert line in text, f"missing {line!r}:\n{text}"

    def test_branch_folded(self):
        _, stats, text = run(prune=True)
        assert stats.branches_folded == 1
        assert "if" not in text

    def test_t1_stays_symbolic(self):
        _, _, text = run(prune=True)
        assert "tb0 = pi(b0, b1);" in text
        assert "a4 = tb0 + 6;" in text
        assert "y0 = a4;" in text

    def test_coend_phi_remains(self):
        _, _, text = run(prune=True)
        assert "a5 = phi(a3, a4);" in text

    def test_prints_unfolded_like_paper(self):
        _, _, text = run(prune=True)
        assert "print(x0);" in text
        assert "print(y0);" in text

    def test_constants_found(self):
        _, stats, _ = run(prune=True)
        assert set(stats.constants) >= {"a0", "b0", "a1", "b1", "a2", "a3", "x0"}
