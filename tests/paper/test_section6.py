"""Section 6 — implementation diagnostics.

The paper's prototype reports: unmatched Lock/Unlock, improperly nested
locks, and potential data races from inconsistently protected shared
variables.
"""

from repro.api import diagnose_source, optimize_source, pfg_dot
from tests.conftest import FIGURE2_SOURCE


class TestDiagnostics:
    def test_clean_program_clean_report(self):
        warnings, races = diagnose_source(FIGURE2_SOURCE)
        assert warnings == [] and races == []

    def test_unmatched_lock_warning(self):
        warnings, _ = diagnose_source(
            """
            cobegin
            begin lock(L); v = 1; end
            begin lock(L); v = 2; unlock(L); end
            coend
            """
        )
        assert any(w.kind == "unmatched-lock" for w in warnings)

    def test_improperly_nested_locks(self):
        warnings, _ = diagnose_source(
            "lock(A); lock(B); x = 1; unlock(A); y = 2; unlock(B);"
        )
        assert any(w.kind == "improper-nesting" for w in warnings)

    def test_inconsistent_lock_race(self):
        _, races = diagnose_source(
            """
            cobegin
            begin lock(A); v = 1; unlock(A); end
            begin lock(B); v = 2; unlock(B); end
            coend
            print(v);
            """
        )
        assert any(r.var == "v" for r in races)

    def test_unsafe_still_optimizable(self):
        # Ill-formed sync degrades analysis quality, never correctness.
        source = """
        v = 0;
        cobegin
        begin lock(L); v = 1; x = v; end
        begin v = 2; end
        coend
        print(x);
        """
        report = optimize_source(source)
        assert report.program is not None

    def test_graph_visualisation_supported(self):
        # Section 6: "The PFG can be displayed using a variety of graph
        # visualization systems" — our DOT stands in for VCG.
        assert pfg_dot(FIGURE2_SOURCE).startswith("digraph")
