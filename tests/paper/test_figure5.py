"""Figure 5 — PDCE (5a) and LICM (5b) applied to the Figure 4b program.

5a: all dead defs of ``a`` in T0 vanish; ``b1 = 8`` survives because
T1 reads ``b`` through its π term; ``x0 = 13`` survives because it is
printed.  The paper notes a sequential DCE would wrongly kill ``b1``.

5b: ``x0 = 13`` and ``y0 = a4`` move out of the mutex bodies, leaving
only the genuinely protected statements inside.
"""

from repro.ir.printer import format_ir
from repro.opt.pipeline import optimize
from repro.verify import exhaustive_equivalence
from tests.conftest import FIGURE2_SOURCE, build


def report():
    return optimize(build(FIGURE2_SOURCE), fold_output_uses=False)


def t0_of(text):
    return text.split("T1:")[0]


def t1_of(text):
    return text.split("T1:")[1].split("coend")[0]


def inside_lock(section_text, fragment):
    lock = section_text.index("lock(")
    unlock = section_text.index("unlock(")
    pos = section_text.find(fragment)
    return pos != -1 and lock < pos < unlock


class TestFigure5a:
    def test_dead_a_defs_removed(self):
        rep = report()
        text = rep.listings["pdce"]
        for gone in ("a0 = 0;", "a1 = 5;", "a2 = 13;", "a3 = 13;", "a5 ="):
            assert gone not in text, f"{gone!r} should be dead:\n{text}"

    def test_cross_thread_live_b_kept(self):
        text = report().listings["pdce"]
        assert "b0 = 0;" in text
        assert "b1 = 8;" in text
        assert "tb0 = pi(b0, b1);" in text

    def test_outputs_kept(self):
        text = report().listings["pdce"]
        for kept in ("x0 = 13;", "a4 = tb0 + 6;", "y0 = a4;",
                     "print(x0);", "print(y0);"):
            assert kept in text

    def test_locks_untouched_by_pdce(self):
        text = report().listings["pdce"]
        assert text.count("unlock(L);") == 2

    def test_exact_t0_contents(self):
        t0 = t0_of(report().listings["pdce"])
        lines = [l.strip() for l in t0.splitlines() if l.strip().endswith(";")]
        assert lines == ["b0 = 0;", "lock(L);", "b1 = 8;", "x0 = 13;", "unlock(L);"]


class TestFigure5b:
    def test_x_moved_out_of_body(self):
        text = report().listings["licm"]
        assert "x0 = 13;" in text
        assert not inside_lock(t0_of(text), "x0 = 13;")

    def test_y_sunk_after_unlock(self):
        text = report().listings["licm"]
        t1 = t1_of(text)
        assert "y0 = a4;" in t1
        assert not inside_lock(t1, "y0 = a4;")
        assert not inside_lock(t1, "a4 = tb0 + 6;")

    def test_protected_statements_stay(self):
        text = report().listings["licm"]
        assert inside_lock(t0_of(text), "b1 = 8;")
        assert inside_lock(t1_of(text), "tb0 = pi(b0, b1);")

    def test_motion_counts(self):
        rep = report()
        # x0, y0 and a4 all leave the critical sections.
        assert rep.licm.total_moved == 3
        assert rep.licm.locks_removed == 0


class TestSemantics:
    def test_full_pipeline_preserves_outcomes(self):
        rep = report()
        res = exhaustive_equivalence(rep.baseline, rep.program)
        assert res.complete
        assert res.equal, res.explain()

    def test_final_outputs_match_paper_reasoning(self):
        # x is always 13; y is 6 (T1 first) or 14 (T0 first).
        from repro.vm.explore import explore

        rep = report()
        outcomes = explore(rep.program).outcomes
        assert outcomes == {
            (("print", (13,)), ("print", (6,))),
            (("print", (13,)), ("print", (14,))),
        }
