"""Character-exact golden listings for the paper's Figures 3b–5b.

These freeze the complete transformed programs.  Differences from the
paper's typography: ``phi``/``pi`` spelled out (the paper uses glyphs),
π temporaries named by their control argument (``tb0`` matches the
paper; our ``ta...`` names differ from the paper's arbitrary ``ta12``),
φ-argument order follows predecessor order (then-branch first), and in
5b ``x0 = 13`` is *hoisted* rather than sunk (equivalent placement —
see EXPERIMENTS.md).
"""

import textwrap

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.opt.pipeline import optimize
from tests.conftest import FIGURE2_SOURCE, build


def golden(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


FIGURE_3B = golden(
    """
    a0 = 0;
    b0 = 0;
    cobegin
    T0: begin
        lock(L);
        a1 = 5;
        b1 = a1 + 3;
        if (b1 > 4) {
            a2 = a1 + b1;
        }
        a3 = phi(a2, a1);
        x0 = a3;
        unlock(L);
    end
    T1: begin
        lock(L);
        tb0 = pi(b0, b1);
        a4 = tb0 + 6;
        y0 = a4;
        unlock(L);
    end
    coend
    a5 = phi(a3, a4);
    print(x0);
    print(y0);
    """
)

FIGURE_4B = golden(
    """
    a0 = 0;
    b0 = 0;
    cobegin
    T0: begin
        lock(L);
        a1 = 5;
        b1 = 8;
        a2 = 13;
        a3 = 13;
        x0 = 13;
        unlock(L);
    end
    T1: begin
        lock(L);
        tb0 = pi(b0, b1);
        a4 = tb0 + 6;
        y0 = a4;
        unlock(L);
    end
    coend
    a5 = phi(a3, a4);
    print(x0);
    print(y0);
    """
)

FIGURE_5A = golden(
    """
    b0 = 0;
    cobegin
    T0: begin
        lock(L);
        b1 = 8;
        x0 = 13;
        unlock(L);
    end
    T1: begin
        lock(L);
        tb0 = pi(b0, b1);
        a4 = tb0 + 6;
        y0 = a4;
        unlock(L);
    end
    coend
    print(x0);
    print(y0);
    """
)

FIGURE_5B = golden(
    """
    b0 = 0;
    cobegin
    T0: begin
        x0 = 13;
        lock(L);
        b1 = 8;
        unlock(L);
    end
    T1: begin
        lock(L);
        tb0 = pi(b0, b1);
        unlock(L);
        a4 = tb0 + 6;
        y0 = a4;
    end
    coend
    print(x0);
    print(y0);
    """
)


def test_figure_3b_exact():
    program = build(FIGURE2_SOURCE)
    build_cssame(program)
    assert format_ir(program) == FIGURE_3B


def test_figures_4b_5a_5b_exact():
    program = build(FIGURE2_SOURCE)
    report = optimize(program, fold_output_uses=False)
    assert report.listings["constprop"] == FIGURE_4B
    assert report.listings["pdce"] == FIGURE_5A
    assert report.listings["licm"] == FIGURE_5B
