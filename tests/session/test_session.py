"""Session semantics: stage reuse, copy-on-write, cache correctness."""

from repro.ir.printer import format_ir
from repro.obs.trace import Tracer, use_tracer
from repro.session import STAGES, Session
from tests.conftest import FIGURE1_SOURCE, FIGURE2_SOURCE


class TestStageReuse:
    def test_journey_reuses_front_end(self):
        session = Session()
        session.analyze(FIGURE2_SOURCE)
        session.diagnose(FIGURE2_SOURCE)
        session.dot(FIGURE2_SOURCE)
        stats = session.cache_stats()
        # one parse, one lowering for the whole journey: diagnose's CSSA
        # chain reuses the ir artifact, dot reuses the CSSAME form itself
        assert stats.by_stage["ast"] == {"hits": 0, "misses": 1}
        assert stats.by_stage["ir"] == {"hits": 1, "misses": 1}
        assert stats.by_stage["cssame"]["hits"] == 1

    def test_repeat_requests_are_pure_hits(self):
        session = Session()
        first = session.analyze(FIGURE2_SOURCE)
        before = session.cache_stats().misses
        second = session.analyze(FIGURE2_SOURCE)
        assert second is first
        assert session.cache_stats().misses == before

    def test_dot_is_cached_per_title(self):
        session = Session()
        a = session.dot(FIGURE2_SOURCE, title="A")
        b = session.dot(FIGURE2_SOURCE, title="B")
        assert 'label="A"' in a and 'label="B"' in b
        again = session.dot(FIGURE2_SOURCE, title="A")
        assert again is a

    def test_distinct_sources_do_not_share(self):
        session = Session()
        f1 = session.analyze(FIGURE1_SOURCE)
        f2 = session.analyze(FIGURE2_SOURCE)
        assert f1 is not f2
        assert format_ir(f1.program) != format_ir(f2.program)


class TestOptionIsolation:
    def test_prune_variants_never_share_an_entry(self):
        session = Session()
        cssame = session.analyze(FIGURE2_SOURCE, prune=True)
        cssa = session.analyze(FIGURE2_SOURCE, prune=False)
        assert cssame is not cssa
        assert cssame.rewrite_stats is not None
        assert cssa.rewrite_stats is None

    def test_pass_tuples_never_share_an_entry(self):
        session = Session()
        full = session.optimize(FIGURE2_SOURCE)
        none = session.optimize(FIGURE2_SOURCE, passes=())
        assert full is not none
        assert none.graph_is_fresh is True
        assert full.graph_is_fresh is False

    def test_use_mutex_is_part_of_the_key(self):
        session = Session()
        a = session.optimize(FIGURE2_SOURCE, use_mutex=True)
        b = session.optimize(FIGURE2_SOURCE, use_mutex=False)
        assert a is not b


class TestCopyOnWrite:
    def test_front_end_returns_private_copies(self):
        session = Session()
        one = session.front_end(FIGURE2_SOURCE)
        two = session.front_end(FIGURE2_SOURCE)
        assert one is not two
        baseline = format_ir(two)
        one.body.items.clear()
        assert format_ir(session.front_end(FIGURE2_SOURCE)) == baseline

    def test_optimize_does_not_corrupt_cached_ir(self):
        session = Session()
        pristine = format_ir(session.front_end(FIGURE2_SOURCE))
        session.optimize(FIGURE2_SOURCE)  # rewrites a clone in place
        assert format_ir(session.front_end(FIGURE2_SOURCE)) == pristine

    def test_analyze_does_not_corrupt_cached_ir(self):
        session = Session()
        pristine = format_ir(session.front_end(FIGURE2_SOURCE))
        session.analyze(FIGURE2_SOURCE)  # SSA-renames a clone in place
        assert format_ir(session.front_end(FIGURE2_SOURCE)) == pristine

    def test_mutating_an_optimized_program_does_not_leak(self):
        session = Session()
        report = session.optimize(FIGURE2_SOURCE)
        report.program.body.items.clear()
        # downstream artifacts derived from the cached ir are intact
        fresh = Session()
        assert format_ir(session.front_end(FIGURE2_SOURCE)) == format_ir(
            fresh.front_end(FIGURE2_SOURCE)
        )
        assert session.dot(FIGURE2_SOURCE) == fresh.dot(FIGURE2_SOURCE)

    def test_diagnose_returns_fresh_lists(self):
        session = Session()
        warnings, races = session.diagnose(FIGURE2_SOURCE)
        warnings.append("sentinel")
        again, _ = session.diagnose(FIGURE2_SOURCE)
        assert "sentinel" not in again


class TestEvictionAndBounds:
    def test_bounded_session_recomputes_after_eviction(self):
        session = Session(max_entries=2)
        first = session.analyze(FIGURE2_SOURCE)
        # churn the cache until the form is evicted
        session.analyze(FIGURE1_SOURCE)
        session.diagnose(FIGURE1_SOURCE)
        second = session.analyze(FIGURE2_SOURCE)
        assert second is not first
        assert format_ir(second.program) == format_ir(first.program)
        assert session.cache_stats().evictions > 0


class TestTracing:
    def test_stage_spans_carry_cache_hit_attribute(self):
        session = Session()
        tracer = Tracer()
        session.analyze(FIGURE2_SOURCE, trace=tracer)
        session.analyze(FIGURE2_SOURCE, trace=tracer)
        stage_spans = [
            s for s in tracer.spans() if s.name == "stage:cssame"
        ]
        assert [s.attrs["cache_hit"] for s in stage_spans] == [False, True]

    def test_cache_counters(self):
        session = Session()
        tracer = Tracer()
        with use_tracer(tracer):
            session.analyze(FIGURE2_SOURCE)
            session.analyze(FIGURE2_SOURCE)
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["session.cache.miss"] >= 3  # ast, ir, cssame
        assert counters["session.cache.hit"] == 1

    def test_fresh_when_traced_recomputes(self):
        session = Session(fresh_when_traced=True)
        t1, t2 = Tracer(), Tracer()
        session.analyze(FIGURE2_SOURCE, trace=t1)
        session.analyze(FIGURE2_SOURCE, trace=t2)
        # both traced runs observe the full pipeline, not a cache walk
        assert [s.name for s in t1.spans()] == [s.name for s in t2.spans()]
        assert any(s.name == "build-cssame" for s in t2.spans())
        # untraced requests still enjoy the (refreshed) cache
        before = session.cache_stats().hits
        session.analyze(FIGURE2_SOURCE)
        assert session.cache_stats().hits == before + 1


class TestStageGraphShape:
    def test_declared_graph_matches_the_paper_pipeline(self):
        assert STAGES["ast"].parent is None
        assert STAGES["ir"].parent == "ast"
        assert STAGES["cssame"].parent == "ir"
        assert STAGES["diagnostics"].parent == "cssame"
        assert STAGES["diagnostics"].parent_options == {
            "prune": False,
            "prune_events": True,
        }
        assert STAGES["optimized"].parent == "ir"
        assert STAGES["dot"].parent == "cssame"
        assert STAGES["bytecode"].parent == "ir"

    def test_bytecode_stage(self):
        session = Session()
        program = session.bytecode(FIGURE2_SOURCE)
        assert session.bytecode(FIGURE2_SOURCE) is program
