"""The ``repro batch`` command."""

import pytest

from repro.cli import main
from tests.conftest import FIGURE1_SOURCE, FIGURE2_SOURCE


@pytest.fixture
def corpus(tmp_path):
    (tmp_path / "fig1.par").write_text(FIGURE1_SOURCE)
    (tmp_path / "fig2.par").write_text(FIGURE2_SOURCE)
    return str(tmp_path)


class TestBatch:
    def test_one_line_per_file(self, corpus, capsys):
        assert main(["batch", corpus, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig1.par: ok" in out
        assert "fig2.par: ok" in out
        assert "// 2 file(s), 0 error(s)" in out

    def test_serial_default(self, corpus, capsys):
        assert main(["batch", corpus]) == 0
        assert "// 2 file(s)" in capsys.readouterr().out

    def test_process_executor(self, corpus, capsys):
        assert main(["batch", corpus, "--jobs", "2",
                     "--executor", "process"]) == 0
        assert "fig2.par: ok" in capsys.readouterr().out

    def test_cache_stats_table(self, corpus, capsys):
        assert main(["batch", corpus, "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "== artifact cache ==" in out
        assert "total" in out

    def test_optimize_flag(self, corpus, capsys):
        assert main(["batch", corpus, "--optimize"]) == 0
        assert "removed=" in capsys.readouterr().out

    def test_bad_file_is_reported_not_fatal(self, corpus, tmp_path, capsys):
        (tmp_path / "zz_bad.par").write_text("lock(;")
        assert main(["batch", corpus, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "zz_bad.par: ERROR" in out
        assert "// 3 file(s), 1 error(s)" in out

    def test_strict_gates_on_errors(self, corpus, tmp_path, capsys):
        (tmp_path / "zz_bad.par").write_text("lock(;")
        assert main(["batch", corpus, "--strict"]) == 1
        assert main(["batch", corpus, "--no-strict"]) == 0

    def test_empty_directory_is_an_input_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 3
        assert "no .par files" in capsys.readouterr().err

    def test_missing_directory(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        code = main(["batch", missing])
        assert code == 3
