"""Golden equivalence: the Session-backed facade matches the
pre-redesign one-shot implementations.

The reference ("legacy") implementations below are verbatim transcripts
of what ``repro.api`` did before the stage-graph redesign: build
everything from scratch with direct calls into the pipeline modules.
Every ``api.*`` helper — called cold *and* through a warmed, shared
session — must reproduce their outputs bit-for-bit on the whole
``examples/*.par`` corpus plus the paper's Figure 1–5 fixture programs
(Figures 3–5 rework the Figure 2 program, so the two sources cover all
five).
"""

import glob
import os

import pytest

from repro import api
from repro.cfg.dot import to_dot
from repro.cssame.builder import build_cssame
from repro.ir.lower import lower_program
from repro.ir.printer import format_ir
from repro.lang.parser import parse
from repro.mutex.deadlock import detect_lock_order_cycles
from repro.mutex.races import detect_races
from repro.mutex.warnings import SyncWarning, check_synchronization
from repro.opt.pipeline import optimize
from repro.report import measure_form
from repro.session import Session
from tests.conftest import FIGURE1_SOURCE, FIGURE2_SOURCE

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

CORPUS = {
    "paper-figure1": FIGURE1_SOURCE,
    "paper-figure2-5": FIGURE2_SOURCE,
}
for _path in sorted(glob.glob(os.path.join(_EXAMPLES, "*.par"))):
    with open(_path, "r", encoding="utf-8") as _handle:
        CORPUS[os.path.basename(_path)] = _handle.read()


# -- the pre-redesign reference implementations ---------------------------


def legacy_front_end(source):
    return lower_program(parse(source))


def legacy_analyze(source, prune=True):
    return build_cssame(legacy_front_end(source), prune=prune)


def legacy_optimize(source, **kwargs):
    return optimize(legacy_front_end(source), **kwargs)


def legacy_diagnose(source):
    form = legacy_analyze(source, prune=False)
    warnings = check_synchronization(form.graph, form.structures)
    for risk in detect_lock_order_cycles(form.graph, form.structures):
        blocks = tuple(b for bs in risk.witnesses.values() for b in bs)
        warnings.append(SyncWarning("deadlock-risk", risk.message(), blocks))
    races = detect_races(form.graph, form.structures)
    return warnings, races


def legacy_pfg_dot(source, title="PFG"):
    return to_dot(legacy_analyze(source).graph, title=title)


# -- equivalence over the corpus ------------------------------------------


@pytest.fixture(scope="module")
def warm_session():
    """One shared session, used twice per program: cold fill + warm hits."""
    return Session()


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestGoldenEquivalence:
    def test_front_end(self, name):
        assert format_ir(api.front_end(CORPUS[name])) == format_ir(
            legacy_front_end(CORPUS[name])
        )

    @pytest.mark.parametrize("prune", [True, False])
    def test_analyze(self, name, prune, warm_session):
        expected = legacy_analyze(CORPUS[name], prune=prune)
        for session in (None, warm_session, warm_session):
            form = api.analyze_source(CORPUS[name], prune=prune, session=session)
            assert format_ir(form.program) == format_ir(expected.program)
            assert measure_form(form.program).as_dict() == measure_form(
                expected.program
            ).as_dict()
            assert sorted(form.structures) == sorted(expected.structures)
            if prune:
                assert (
                    form.rewrite_stats.args_removed
                    == expected.rewrite_stats.args_removed
                )
                assert (
                    form.rewrite_stats.pis_deleted
                    == expected.rewrite_stats.pis_deleted
                )

    def test_diagnose(self, name, warm_session):
        expected_warnings, expected_races = legacy_diagnose(CORPUS[name])
        for session in (None, warm_session, warm_session):
            warnings, races = api.diagnose_source(CORPUS[name], session=session)
            assert [(w.kind, w.message) for w in warnings] == [
                (w.kind, w.message) for w in expected_warnings
            ]
            assert [r.message() for r in races] == [
                r.message() for r in expected_races
            ]

    def test_optimize(self, name, warm_session):
        expected = legacy_optimize(CORPUS[name])
        for session in (None, warm_session, warm_session):
            report = api.optimize_source(CORPUS[name], session=session)
            assert report.listings == expected.listings
            assert report.statement_count() == expected.statement_count()
            assert len(report.constprop.constants) == len(
                expected.constprop.constants
            )
            assert report.pdce.total_removed == expected.pdce.total_removed
            assert report.licm.total_moved == expected.licm.total_moved

    def test_pfg_dot(self, name, warm_session):
        expected = legacy_pfg_dot(CORPUS[name], title=name)
        for session in (None, warm_session, warm_session):
            assert api.pfg_dot(CORPUS[name], title=name, session=session) == expected


class TestFacadeSurface:
    def test_all_exports_resolve(self):
        for symbol in api.__all__:
            assert getattr(api, symbol) is not None
        assert "listing" in api.__all__

    def test_listing_round_trip(self):
        program = api.front_end(FIGURE2_SOURCE)
        assert api.listing(program) == format_ir(program)

    def test_pfg_dot_prune_passthrough(self):
        pruned = api.pfg_dot(FIGURE2_SOURCE)
        unpruned = api.pfg_dot(FIGURE2_SOURCE, prune=False)
        assert pruned != unpruned
        assert unpruned == to_dot(
            legacy_analyze(FIGURE2_SOURCE, prune=False).graph, title="PFG"
        )

    def test_pfg_dot_accepts_trace(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        api.pfg_dot(FIGURE2_SOURCE, trace=tracer)
        assert any(s.name == "build-cssame" for s in tracer.spans())

    def test_optimize_pass_variants_match_legacy(self):
        for passes in ((), ("constprop",), ("constprop", "lvn", "pdce")):
            got = api.optimize_source(FIGURE2_SOURCE, passes=passes)
            want = legacy_optimize(FIGURE2_SOURCE, passes=passes)
            assert got.listings == want.listings
