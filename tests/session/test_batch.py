"""BatchSession: ordering, error isolation, executor parity."""

import os

import pytest

from repro.session import BatchSession, FileResult, Session
from tests.conftest import FIGURE1_SOURCE, FIGURE2_SOURCE

GOOD = {
    "a_fig2.par": FIGURE2_SOURCE,
    "b_fig1.par": FIGURE1_SOURCE,
    "c_race.par": "cobegin begin v = 1; end begin v = 2; end coend print(v);",
}
BROKEN = "lock(L; a = ;"


@pytest.fixture
def corpus(tmp_path):
    for name, source in GOOD.items():
        (tmp_path / name).write_text(source)
    (tmp_path / "z_broken.par").write_text(BROKEN)
    (tmp_path / "notes.txt").write_text("not a program")
    return str(tmp_path)


def _paths(corpus):
    return [
        os.path.join(corpus, n)
        for n in ("a_fig2.par", "b_fig1.par", "c_race.par", "z_broken.par")
    ]


class TestSerial:
    def test_results_in_input_order(self, corpus):
        results = BatchSession(jobs=1).run(_paths(corpus))
        assert [os.path.basename(r.path) for r in results] == [
            "a_fig2.par", "b_fig1.par", "c_race.par", "z_broken.par",
        ]

    def test_error_isolation(self, corpus):
        results = BatchSession(jobs=1).run(_paths(corpus))
        ok = [r for r in results if r.ok]
        bad = [r for r in results if not r.ok]
        assert len(ok) == 3 and len(bad) == 1
        assert bad[0].path.endswith("z_broken.par")
        assert bad[0].error and "Error" in bad[0].error
        # neighbours are untouched by the failure
        assert ok[2].races  # the planted race is still reported

    def test_missing_file_is_isolated_too(self, corpus):
        paths = _paths(corpus) + [os.path.join(corpus, "ghost.par")]
        results = BatchSession(jobs=1).run(paths)
        assert results[-1].ok is False
        assert "FileNotFoundError" in results[-1].error

    def test_run_dir_picks_par_files_only(self, corpus):
        results = BatchSession(jobs=1).run_dir(corpus)
        assert len(results) == 4  # notes.txt skipped
        assert all(r.path.endswith(".par") for r in results)

    def test_shared_session_caches_repeats(self, corpus):
        session = Session()
        batch = BatchSession(jobs=1, session=session)
        batch.run(_paths(corpus))
        batch.run(_paths(corpus))
        assert session.cache_stats().hits > 0


class TestParallel:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_match_serial(self, corpus, executor):
        serial = BatchSession(jobs=1).run(_paths(corpus))
        parallel = BatchSession(jobs=3, executor=executor).run(_paths(corpus))
        assert [r.path for r in parallel] == [r.path for r in serial]
        for s, p in zip(serial, parallel):
            assert (s.ok, s.error, s.warnings, s.races, s.metrics) == (
                p.ok, p.error, p.warnings, p.races, p.metrics,
            )

    def test_optimize_payload(self, corpus):
        results = BatchSession(jobs=2, optimize=True).run(
            [os.path.join(corpus, "a_fig2.par")]
        )
        assert results[0].optimize is not None
        assert results[0].optimize["removed"] >= 1

    def test_thread_pool_shares_one_cache(self, corpus):
        session = Session()
        paths = [os.path.join(corpus, "a_fig2.par")] * 4
        BatchSession(jobs=2, executor="thread", session=session).run(paths)
        assert session.cache_stats().hits > 0


class TestValidation:
    def test_bad_executor(self):
        with pytest.raises(ValueError):
            BatchSession(executor="rocket")

    def test_bad_jobs(self):
        with pytest.raises(ValueError):
            BatchSession(jobs=0)

    def test_summary_lines(self, corpus):
        results = BatchSession(jobs=1).run(_paths(corpus))
        assert results[0].summary().endswith("warnings=0 races=0")
        assert "ERROR" in results[-1].summary()

    def test_file_result_shape(self):
        result = FileResult(path="x.par", ok=False, error="boom")
        assert result.warnings == [] and result.metrics == {}
