"""Cache-key derivation folds in the package version and option schema.

The bug this guards against: artifacts persisted by release N being
served verbatim by release N+1 (whose passes may produce different
output), or a stage growing a new option whose default silently aliases
old cache entries.  Both are fixed by salting every key with
``repro.__version__`` and hashing the stage's option *schema*
separately from the option values.
"""

import pytest

from repro import __version__
from repro.session import Session, artifacts
from repro.session.artifacts import derive_key, key_salt, source_key
from tests.conftest import FIGURE1_SOURCE


class TestSalt:
    def test_salt_carries_the_version(self):
        assert __version__ in key_salt()

    def test_source_key_changes_with_version(self, monkeypatch):
        before = source_key(FIGURE1_SOURCE)
        monkeypatch.setattr(artifacts, "_KEY_SALT", "repro-0.0.0-test")
        after = source_key(FIGURE1_SOURCE)
        assert before != after

    def test_derive_key_changes_with_version(self, monkeypatch):
        parent = source_key(FIGURE1_SOURCE)
        before = derive_key("ast", parent, {})
        monkeypatch.setattr(artifacts, "_KEY_SALT", "repro-0.0.0-test")
        after = derive_key("ast", parent, {})
        assert before != after


class TestSchema:
    def test_new_option_in_schema_rekeys_even_at_default(self):
        """Adding an option re-keys the stage even when values agree."""
        parent = "p" * 64
        old = derive_key("opt", parent, {"prune": True}, schema=("prune",))
        new = derive_key(
            "opt", parent, {"prune": True}, schema=("prune", "simplify")
        )
        assert old != new

    def test_schema_order_does_not_matter(self):
        parent = "p" * 64
        a = derive_key("opt", parent, {}, schema=("b", "a"))
        b = derive_key("opt", parent, {}, schema=("a", "b"))
        assert a == b

    def test_option_values_still_differentiate(self):
        parent = "p" * 64
        schema = ("prune",)
        assert derive_key(
            "opt", parent, {"prune": True}, schema=schema
        ) != derive_key("opt", parent, {"prune": False}, schema=schema)


class TestSessionKeys:
    def test_artifact_key_is_stable_across_sessions(self):
        a = Session().artifact_key("diagnostics", FIGURE1_SOURCE)
        b = Session().artifact_key("diagnostics", FIGURE1_SOURCE)
        assert a == b and len(a) == 64

    def test_artifact_key_differs_by_stage_and_options(self):
        sess = Session()
        diag = sess.artifact_key("diagnostics", FIGURE1_SOURCE)
        dot = sess.artifact_key("dot", FIGURE1_SOURCE)
        pruned = sess.artifact_key("dot", FIGURE1_SOURCE, prune=False)
        assert len({diag, dot, pruned}) == 3

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError):
            Session().artifact_key("transmogrify", FIGURE1_SOURCE)
