"""The content-addressed artifact store: keys, LRU, accounting."""

from repro.session.artifacts import ArtifactCache, derive_key, source_key


class TestKeys:
    def test_source_key_is_content_addressed(self):
        assert source_key("a = 1;") == source_key("a = 1;")
        assert source_key("a = 1;") != source_key("a = 2;")

    def test_derivation_chains_differ_per_stage(self):
        root = source_key("a = 1;")
        assert derive_key("ast", root, {}) != derive_key("ir", root, {})

    def test_options_are_part_of_the_key(self):
        root = source_key("a = 1;")
        pruned = derive_key("cssame", root, {"prune": True})
        unpruned = derive_key("cssame", root, {"prune": False})
        assert pruned != unpruned

    def test_option_order_is_irrelevant(self):
        root = source_key("a = 1;")
        a = derive_key("s", root, {"x": 1, "y": 2})
        b = derive_key("s", root, {"y": 2, "x": 1})
        assert a == b

    def test_parent_key_propagates(self):
        k1 = derive_key("ir", derive_key("ast", source_key("a;"), {}), {})
        k2 = derive_key("ir", derive_key("ast", source_key("b;"), {}), {})
        assert k1 != k2


class TestCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        assert cache.get("k", "stage") is cache.MISSING
        cache.put("k", 42)
        assert cache.get("k", "stage") == 42
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.by_stage["stage"] == {"hits": 1, "misses": 1}

    def test_lru_eviction_counts(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a", "s")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b", "s") is cache.MISSING
        assert cache.get("a", "s") == 1 and cache.get("c", "s") == 3
        assert cache.stats.evictions == 1

    def test_clear_keeps_stats(self):
        cache = ArtifactCache()
        cache.put("k", 1)
        cache.get("k", "s")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_hit_rate(self):
        cache = ArtifactCache()
        assert cache.stats.hit_rate == 0.0
        cache.put("k", 1)
        cache.get("k", "s")
        cache.get("missing", "s")
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.as_dict()["hit_rate"] == 0.5
