"""Event-ordering π pruning (the inherited Lee et al. refinement)."""

from repro.cfg.builder import build_flow_graph
from repro.cssame import build_cssame
from repro.cssame.ordering import EventOrdering
from repro.ir.stmts import Pi, SAssign
from repro.ir.structured import iter_statements
from tests.conftest import build


def pis(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, Pi)]


def block_of_target(graph, name):
    for b in graph.blocks:
        for s in b.stmts:
            if isinstance(s, SAssign) and s.target == name:
                return b.id
    raise AssertionError(name)


class TestMustPrecede:
    def setup_graph(self, source):
        program = build(source)
        graph = build_flow_graph(program)
        return program, graph, EventOrdering(graph)

    def test_dominance_implies_precedence(self):
        # The lock node splits a and b into distinct blocks.
        _, g, order = self.setup_graph("a = 1; lock(L); b = 2; unlock(L);")
        a, b = block_of_target(g, "a"), block_of_target(g, "b")
        assert order.must_precede(a, b)
        assert not order.must_precede(b, a)
        assert not order.must_precede(a, a)

    def test_event_crossing(self):
        _, g, order = self.setup_graph(
            """
            cobegin
            P: begin a = 1; set(e); end
            C: begin wait(e); b = 2; end
            coend
            """
        )
        a, b = block_of_target(g, "a"), block_of_target(g, "b")
        assert order.must_precede(a, b)
        assert not order.must_precede(b, a)

    def test_use_after_set_not_ordered(self):
        _, g, order = self.setup_graph(
            """
            cobegin
            P: begin set(e); a = 1; end
            C: begin wait(e); b = 2; end
            coend
            """
        )
        a, b = block_of_target(g, "a"), block_of_target(g, "b")
        assert not order.must_precede(a, b)  # a is after the set

    def test_multiple_setters_require_all(self):
        _, g, order = self.setup_graph(
            """
            cobegin
            P1: begin a = 1; set(e); end
            P2: begin set(e); end
            C: begin wait(e); b = 2; end
            coend
            """
        )
        a, b = block_of_target(g, "a"), block_of_target(g, "b")
        # P2's set can fire before a executes — not ordered.
        assert not order.must_precede(a, b)

    def test_transitive_ordering(self):
        _, g, order = self.setup_graph(
            """
            cobegin
            T0: begin a = 1; set(e1); end
            T1: begin wait(e1); set(e2); end
            T2: begin wait(e2); b = 2; end
            coend
            """
        )
        a, b = block_of_target(g, "a"), block_of_target(g, "b")
        assert order.must_precede(a, b)


class TestBarrierOrdering:
    def test_one_shot_barrier_orders_phases(self):
        program = build(
            """
            cobegin
            T0: begin a = 1; barrier(B); c = 2; end
            T1: begin b = 3; barrier(B); d = 4; end
            coend
            """
        )
        g = build_flow_graph(program)
        from repro.cssame.ordering import EventOrdering

        order = EventOrdering(g)
        a, b, c, d = (block_of_target(g, n) for n in "abcd")
        assert order.must_precede(a, d)  # T0 phase 1 before T1 phase 2
        assert order.must_precede(b, c)
        assert not order.must_precede(c, b)
        assert not order.must_precede(a, b)  # both phase 1

    def test_cyclic_barrier_excluded(self):
        program = build(
            """
            cobegin
            T0: begin
                private i = 0;
                while (i < 2) { a = 1; barrier(B); i = i + 1; }
            end
            T1: begin
                private j = 0;
                while (j < 2) { barrier(B); d = 4; j = j + 1; }
            end
            coend
            """
        )
        g = build_flow_graph(program)
        from repro.cssame.ordering import EventOrdering

        order = EventOrdering(g)
        assert order.barrier_nodes == {}  # phases ambiguous: no edges

    def test_barrier_serializes_race_pair(self):
        from repro.api import diagnose_source

        clean_src = """
        cobegin
        T0: begin data = 5; barrier(B); end
        T1: begin barrier(B); out = data; end
        coend
        print(out);
        """
        warnings, races = diagnose_source(clean_src)
        assert races == []

    def test_without_barrier_race_reported(self):
        from repro.api import diagnose_source

        racy_src = """
        cobegin
        T0: begin data = 5; end
        T1: begin out = data; end
        coend
        print(out);
        """
        _w, races = diagnose_source(racy_src)
        assert races

    def test_event_serializes_race_pair(self):
        from repro.api import diagnose_source

        _w, races = diagnose_source(
            """
            cobegin
            P: begin data = 5; set(go); end
            C: begin wait(go); out = data; end
            coend
            print(out);
            """
        )
        assert races == []

    def test_ordering_opt_out(self):
        from repro.cfg.builder import build_flow_graph as bfg
        from repro.mutex.identify import identify_mutex_structures
        from repro.mutex.races import detect_races

        program = build(
            """
            cobegin
            T0: begin data = 5; barrier(B); end
            T1: begin barrier(B); out = data; end
            coend
            print(out);
            """
        )
        g = bfg(program)
        structures = identify_mutex_structures(g)
        assert detect_races(g, structures, use_ordering=False)
        assert detect_races(g, structures, use_ordering=True) == []


class TestPruning:
    def test_post_use_def_removed(self):
        program = build(
            """
            x = 0;
            cobegin
            P: begin a = x; set(ready); end
            C: begin wait(ready); x = 7; end
            coend
            print(a, x);
            """
        )
        form = build_cssame(program)
        assert form.ordering_stats.args_removed == 1
        assert form.ordering_stats.pis_deleted == 1
        # The producer's read of x chains straight to x0.
        a_assign = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "a"
        )
        assert next(a_assign.uses()).ssa_name == "x0"

    def test_pre_use_def_kept(self):
        # The def happens *before* the use — genuinely reaches; kept.
        program = build(
            """
            x = 0;
            cobegin
            P: begin x = 41; set(ready); end
            C: begin wait(ready); y = x; end
            coend
            print(y);
            """
        )
        form = build_cssame(program)
        assert form.ordering_stats.args_removed == 0
        assert len(pis(program)) == 1

    def test_disabled_by_flag(self):
        program = build(
            """
            x = 0;
            cobegin
            P: begin a = x; set(ready); end
            C: begin wait(ready); x = 7; end
            coend
            print(a, x);
            """
        )
        form = build_cssame(program, prune_events=False)
        assert form.ordering_stats is None
        assert len(pis(program)) == 1

    def test_no_events_no_work(self, figure2):
        form = build_cssame(figure2)
        assert form.ordering_stats.args_removed == 0

    def test_semantics_preserved(self):
        from repro.verify import exhaustive_equivalence

        source = """
        x = 0; y = 0;
        cobegin
        P: begin a = x + y; set(go); end
        C: begin wait(go); x = 7; y = x + 1; end
        coend
        print(a, x, y);
        """
        cssa = build(source)
        build_cssame(cssa, prune=False)
        cssame = build(source)
        build_cssame(cssame, prune=True)
        res = exhaustive_equivalence(cssa, cssame)
        assert res.complete and res.equal, res.explain()
