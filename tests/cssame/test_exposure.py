"""Upward exposure and reaches-exit analyses (Theorems 1–2 machinery)."""

from repro.cfg.builder import build_flow_graph
from repro.cssame.exposure import BodyDataflow
from repro.ir.stmts import SAssign
from repro.mutex.identify import identify_mutex_structures
from tests.conftest import build


def setup(source, lock="L"):
    program = build(source)
    graph = build_flow_graph(program)
    structures = identify_mutex_structures(graph)
    (body,) = structures[lock].bodies
    return program, graph, BodyDataflow(graph, body)


def loc(graph, target, occurrence=0):
    found = []
    for block in graph.blocks:
        for i, s in enumerate(block.stmts):
            if isinstance(s, SAssign) and s.target == target:
                found.append((block.id, i))
    return found[occurrence]


class TestUpwardExposure:
    def test_use_after_def_not_exposed(self):
        _, g, df = setup("lock(L); v = 1; x = v; unlock(L);")
        block, idx = loc(g, "x")
        assert not df.upward_exposed("v", block, idx)

    def test_use_without_def_exposed(self):
        _, g, df = setup("lock(L); x = v; unlock(L);")
        block, idx = loc(g, "x")
        assert df.upward_exposed("v", block, idx)

    def test_conditional_def_leaves_exposure(self):
        _, g, df = setup(
            "lock(L); if (c) { v = 1; } x = v; unlock(L);"
        )
        block, idx = loc(g, "x")
        assert df.upward_exposed("v", block, idx)

    def test_def_on_both_arms_kills_exposure(self):
        _, g, df = setup(
            "lock(L); if (c) { v = 1; } else { v = 2; } x = v; unlock(L);"
        )
        block, idx = loc(g, "x")
        assert not df.upward_exposed("v", block, idx)

    def test_def_in_loop_body_leaves_exposure(self):
        # The loop may run zero times.
        _, g, df = setup(
            "lock(L); while (c) { v = 1; } x = v; unlock(L);"
        )
        block, idx = loc(g, "x")
        assert df.upward_exposed("v", block, idx)

    def test_def_later_in_same_block_still_exposed(self):
        _, g, df = setup("lock(L); x = v; v = 1; unlock(L);")
        block, idx = loc(g, "x")
        assert df.upward_exposed("v", block, idx)


class TestReachesExit:
    def test_last_def_reaches(self):
        _, g, df = setup("lock(L); v = 1; unlock(L);")
        block, idx = loc(g, "v")
        assert df.reaches_exit("v", block, idx)

    def test_killed_def_does_not_reach(self):
        _, g, df = setup("lock(L); v = 1; v = 2; unlock(L);")
        block, idx = loc(g, "v", occurrence=0)
        assert not df.reaches_exit("v", block, idx)
        block, idx = loc(g, "v", occurrence=1)
        assert df.reaches_exit("v", block, idx)

    def test_conditional_kill_still_reaches(self):
        _, g, df = setup(
            "lock(L); v = 1; if (c) { v = 2; } unlock(L);"
        )
        block, idx = loc(g, "v", occurrence=0)
        assert df.reaches_exit("v", block, idx)  # the else path

    def test_kill_on_both_arms_blocks(self):
        _, g, df = setup(
            "lock(L); v = 1; if (c) { v = 2; } else { v = 3; } unlock(L);"
        )
        block, idx = loc(g, "v", occurrence=0)
        assert not df.reaches_exit("v", block, idx)

    def test_def_inside_branch_reaches(self):
        _, g, df = setup("lock(L); if (c) { v = 1; } unlock(L);")
        block, idx = loc(g, "v")
        assert df.reaches_exit("v", block, idx)

    def test_other_variable_defs_irrelevant(self):
        _, g, df = setup("lock(L); v = 1; w = 2; unlock(L);")
        block, idx = loc(g, "v")
        assert df.reaches_exit("v", block, idx)
