"""Algorithm A.4 — parallel reaching definitions."""

from repro.cssame import build_cssame, parallel_reaching_definitions
from repro.ir.stmts import SAssign, SPrint
from repro.ir.structured import iter_statements
from repro.ssa.names import EntryDef
from tests.conftest import build


def assign(program, name, version):
    return next(
        s for s, _ in iter_statements(program)
        if isinstance(s, SAssign) and s.target == name and s.version == version
    )


class TestSequentialChains:
    def test_direct_def(self):
        program = build("a = 1; b = a;")
        build_cssame(program)
        info = parallel_reaching_definitions(program)
        b = assign(program, "b", 0)
        use = next(b.uses())
        assert info.defs(use) == [assign(program, "a", 0)]

    def test_through_phi(self):
        program = build("a = 1; if (c) { a = 2; } b = a;")
        build_cssame(program)
        info = parallel_reaching_definitions(program)
        use = next(assign(program, "b", 0).uses())
        defs = info.defs(use)
        assert set(defs) == {assign(program, "a", 0), assign(program, "a", 1)}

    def test_entry_def_counted(self):
        program = build("b = a;")
        build_cssame(program)
        info = parallel_reaching_definitions(program)
        use = next(assign(program, "b", 0).uses())
        (d,) = info.defs(use)
        assert isinstance(d, EntryDef)


class TestConcurrentChains:
    def test_through_pi(self):
        program = build(
            """
            v = 0;
            cobegin
            begin x = v; end
            begin v = 7; end
            coend
            print(x);
            """
        )
        build_cssame(program)
        info = parallel_reaching_definitions(program)
        use = next(assign(program, "x", 0).uses())
        defs = info.defs(use)
        # Both the sequential v0 and the concurrent v1 may reach.
        assert set(defs) == {assign(program, "v", 0), assign(program, "v", 1)}

    def test_figure1_killed_def(self, figure1):
        # Paper's Figure 1 claim: T0's a = a + b cannot reach the second
        # use of a in T1 (g(a) always sees a = 3).
        build_cssame(figure1)
        info = parallel_reaching_definitions(figure1)
        b_update = next(
            s for s, _ in iter_statements(figure1)
            if isinstance(s, SAssign) and s.target == "b" and s.version == 1
        )
        # The use of a inside g(a):
        a_uses = [u for u in b_update.uses() if "a" in u.name or u.name.startswith("ta")]
        info_defs = set()
        for u in b_update.uses():
            for d in info.defs(u):
                if getattr(d, "target", None) == "a" or (
                    isinstance(d, EntryDef) and d.name == "a"
                ):
                    info_defs.add(d)
        a3_def = assign(figure1, "a", 2)  # a = 3 in T1
        a_t0_def = assign(figure1, "a", 1)  # a = a + b in T0
        assert a3_def in info_defs
        assert a_t0_def not in info_defs

    def test_reverse_map(self):
        program = build(
            """
            v = 0;
            cobegin
            begin x = v; end
            begin v = 7; end
            coend
            print(x);
            """
        )
        build_cssame(program)
        info = parallel_reaching_definitions(program)
        v1 = assign(program, "v", 1)
        reached = info.reached_stmts(v1)
        assert any(isinstance(s, SAssign) and s.target == "x" for s in reached)

    def test_marked_prevents_duplicates(self):
        program = build("a = 1; b = a + a;")
        build_cssame(program)
        info = parallel_reaching_definitions(program)
        b = assign(program, "b", 0)
        for use in b.uses():
            assert len(info.defs(use)) == 1
