"""Algorithm A.2 driver: flags, composition, reuse."""

import pytest

from repro.cssame import build_cssame
from repro.errors import SSAError
from repro.ir.stmts import Pi
from repro.ir.structured import iter_statements
from tests.conftest import build, FIGURE2_SOURCE


class TestDriver:
    def test_full_build_artifacts(self, figure2):
        form = build_cssame(figure2)
        assert form.graph is not None
        assert form.ssa.domtree is not None
        assert set(form.structures) == {"L"}
        assert form.rewrite_stats is not None
        assert form.ordering_stats is not None
        assert form.shared == {"a", "b"}

    def test_prune_false_skips_both_refinements(self, figure2):
        form = build_cssame(figure2, prune=False)
        assert form.rewrite_stats is None
        assert form.ordering_stats is None
        assert len(form.live_pis()) == 5

    def test_live_pis_tracks_deletions(self, figure2):
        form = build_cssame(figure2, prune=True)
        assert len(form.pis) == 5          # all placed terms remembered
        assert len(form.live_pis()) == 1   # four were deleted by A.3

    def test_mutex_bodies_helper(self, figure2):
        form = build_cssame(figure2)
        assert len(form.mutex_bodies()) == 2

    def test_double_build_rejected(self, figure2):
        build_cssame(figure2)
        with pytest.raises(SSAError):
            build_cssame(figure2)

    def test_build_after_destruct_allowed(self, figure2):
        from repro.ssa.destruct import destruct_ssa

        build_cssame(figure2)
        destruct_ssa(figure2)
        form = build_cssame(figure2)
        assert form.graph is not None


class TestComposition:
    def test_loops_with_locks(self):
        program = build(
            """
            total = 0;
            i = 0;
            while (i < 3) {
                lock(L);
                total = total + i;
                unlock(L);
                i = i + 1;
            }
            cobegin
            begin lock(L); total = total + 100; unlock(L); end
            begin lock(L); snapshot = total; unlock(L); end
            coend
            print(total, snapshot);
            """
        )
        form = build_cssame(program)
        # The loop-side bodies and both thread bodies are identified.
        assert len(form.structures["L"].bodies) == 3
        assert form.rewrite_stats.args_removed >= 0

    def test_nested_locks_prune_with_inner(self):
        # The shared variable is consistently protected by the INNER
        # lock; A.3 must fire through the nested structure.
        program = build(
            """
            v = 0;
            cobegin
            begin lock(OUT); lock(IN); v = 1; x = v; unlock(IN); unlock(OUT); end
            begin lock(IN); v = 5; unlock(IN); end
            coend
            print(x);
            """
        )
        form = build_cssame(program)
        # x = v is not upward-exposed in IN's body (v = 1 precedes it):
        # the conflict argument from the sibling body is removed.
        live = [s for s, _ in iter_statements(program) if isinstance(s, Pi)]
        for pi in live:
            assert pi.var_name != "v" or not pi.conflicts

    def test_doall_bodies_identified(self):
        program = build(
            "s = 0; doall i = 0 to 2 { lock(M); s = s + i; unlock(M); } print(s);"
        )
        form = build_cssame(program)
        assert len(form.structures["M"].bodies) == 3
