"""Algorithm A.3 — π rewriting with mutual exclusion."""

from repro.cssame import build_cssame
from repro.ir.stmts import Pi
from repro.ir.structured import iter_statements
from tests.conftest import build


def pis(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, Pi)]


class TestFigure3:
    def test_figure2_reduction(self, figure2):
        form = build_cssame(figure2)
        stats = form.rewrite_stats
        assert stats.pis_before == 5
        assert stats.pis_after == 1
        remaining = pis(figure2)
        assert len(remaining) == 1
        assert remaining[0].var_name == "b"  # tb0 = π(b0, b1)
        assert [v.ssa_name for v in remaining[0].conflicts] == ["b1"]

    def test_deleted_pi_uses_redirected(self, figure2):
        build_cssame(figure2)
        # b1 = a1 + 3 again (the π temp is gone).
        from repro.ir.stmts import SAssign

        b1 = next(
            s for s, _ in iter_statements(figure2)
            if isinstance(s, SAssign) and s.target == "b" and s.version == 1
        )
        use = next(b1.uses())
        assert use.ssa_name == "a1"
        assert isinstance(use.def_site, SAssign)


class TestTheorem1:
    def test_killed_def_argument_removed(self):
        # T0's v=1 never escapes its body (killed by v=2), so T1's use
        # loses that argument even though it IS upward exposed there.
        program = build(
            """
            v = 0;
            cobegin
            begin lock(L); v = 1; v = 2; unlock(L); end
            begin lock(L); x = v; unlock(L); end
            coend
            print(x);
            """
        )
        form = build_cssame(program)
        x_pi = next(p for p in pis(program) if p.var_name == "v")
        names = {c.ssa_name for c in x_pi.conflicts}
        assert "v1" not in names  # killed inside the body
        assert "v2" in names      # escapes the body

    def test_conditionally_killed_def_kept(self):
        program = build(
            """
            v = 0;
            cobegin
            begin lock(L); v = 1; if (c) { v = 2; } unlock(L); end
            begin lock(L); x = v; unlock(L); end
            coend
            print(x);
            """
        )
        build_cssame(program)
        x_pi = next(p for p in pis(program) if p.var_name == "v")
        names = {c.ssa_name for c in x_pi.conflicts}
        assert {"v1", "v2"} <= names


class TestTheorem2:
    def test_protected_use_after_kill_loses_args(self):
        program = build(
            """
            v = 0;
            cobegin
            begin lock(L); v = 1; x = v; unlock(L); end
            begin lock(L); v = 5; unlock(L); end
            coend
            print(x);
            """
        )
        form = build_cssame(program)
        # x = v is not upward-exposed (v = 1 precedes it), so T1's def
        # is removed and the π disappears.
        assert form.rewrite_stats.pis_after == 0

    def test_upward_exposed_use_keeps_args(self):
        program = build(
            """
            v = 0;
            cobegin
            begin lock(L); x = v; unlock(L); end
            begin lock(L); v = 5; unlock(L); end
            coend
            print(x);
            """
        )
        form = build_cssame(program)
        assert form.rewrite_stats.pis_after == 1


class TestScopeOfTheorems:
    def test_unprotected_def_argument_kept(self):
        # The conflicting def is outside any mutex body: no reduction.
        program = build(
            """
            v = 0;
            cobegin
            begin lock(L); v = 1; x = v; unlock(L); end
            begin v = 7; end
            coend
            print(x);
            """
        )
        build_cssame(program)
        x_pi = next(p for p in pis(program) if p.var_name == "v")
        assert {c.ssa_name for c in x_pi.conflicts} == {"v2"}

    def test_different_lock_argument_kept(self):
        program = build(
            """
            v = 0;
            cobegin
            begin lock(A); v = 1; x = v; unlock(A); end
            begin lock(B); v = 7; unlock(B); end
            coend
            print(x);
            """
        )
        build_cssame(program)
        x_pi = next(p for p in pis(program) if p.var_name == "v")
        assert len(x_pi.conflicts) == 1  # B's def survives

    def test_same_body_spanning_cobegin_kept(self):
        # A single body containing a whole cobegin: the two threads
        # conflict inside ONE body — theorems don't apply.
        program = build(
            """
            v = 0;
            lock(L);
            cobegin
            begin v = 1; end
            begin x = v; end
            coend
            unlock(L);
            print(x);
            """
        )
        form = build_cssame(program)
        assert form.rewrite_stats.pis_after == 1
        assert form.rewrite_stats.args_removed == 0

    def test_unmatched_lock_conservative(self):
        # Ill-formed synchronization → no mutex bodies → no pruning.
        program = build(
            """
            v = 0;
            cobegin
            begin lock(L); v = 1; x = v; end
            begin lock(L); v = 5; unlock(L); end
            coend
            print(x);
            """
        )
        form = build_cssame(program)
        assert form.rewrite_stats.args_removed == 0


class TestStats:
    def test_args_accounting(self, figure2):
        form = build_cssame(figure2)
        s = form.rewrite_stats
        assert s.args_before == 6   # Fig. 3a: 1+1+1+1+2 conflict args
        assert s.args_after == 1    # Fig. 3b: tb0's single conflict arg
        assert s.pis_deleted == 4

    def test_prune_false_leaves_everything(self, figure2):
        form = build_cssame(figure2, prune=False)
        assert form.rewrite_stats is None
        assert len(pis(figure2)) == 5
