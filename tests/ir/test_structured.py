"""Structured-IR container semantics: parent links, mutation, cloning."""

import pytest

from repro.errors import TransformError
from repro.ir.expr import EConst, EVar
from repro.ir.stmts import Phi, PhiArg, Pi, SAssign, SBranch
from repro.ir.structured import (
    Body,
    IfRegion,
    ProgramIR,
    WhileRegion,
    clone_program,
    iter_statements,
    remove_stmt,
)
from tests.conftest import build


class TestBodyMutation:
    def test_append_sets_parent(self):
        body = Body()
        stmt = SAssign("x", EConst(1))
        body.append(stmt)
        assert stmt.parent is body

    def test_insert_before_after(self):
        body = Body()
        a, b, c = (SAssign(n, EConst(0)) for n in "abc")
        body.append(b)
        body.insert_before(b, a)
        body.insert_after(b, c)
        assert [s.target for s in body.items] == ["a", "b", "c"]

    def test_remove_clears_parent(self):
        body = Body()
        stmt = SAssign("x", EConst(1))
        body.append(stmt)
        body.remove(stmt)
        assert stmt.parent is None
        assert len(body) == 0

    def test_replace(self):
        body = Body()
        old = SAssign("x", EConst(1))
        new1, new2 = SAssign("y", EConst(2)), SAssign("z", EConst(3))
        body.append(old)
        body.replace(old, [new1, new2])
        assert [s.target for s in body.items] == ["y", "z"]
        assert new1.parent is body and old.parent is None

    def test_replace_with_empty(self):
        body = Body()
        old = SAssign("x", EConst(1))
        body.append(old)
        body.replace(old, [])
        assert len(body) == 0

    def test_index_of_missing_raises(self):
        with pytest.raises(TransformError):
            Body().index(SAssign("x", EConst(1)))

    def test_identity_not_equality(self):
        # Two equal-looking statements are distinct items.
        body = Body()
        a1 = SAssign("x", EConst(1))
        a2 = SAssign("x", EConst(1))
        body.append(a1)
        body.append(a2)
        assert body.index(a2) == 1


class TestRemoveStmt:
    def test_remove_from_body(self):
        ir = build("x = 1; y = 2;")
        stmt = ir.body.items[0]
        remove_stmt(stmt)
        assert len(ir.body) == 1

    def test_remove_header_term(self):
        branch = SBranch(EConst(1))
        region = WhileRegion(branch)
        phi = Phi("a", 1, [])
        region.add_header_stmt(phi)
        remove_stmt(phi)
        assert region.header_phis == []

    def test_cannot_remove_branch(self):
        ir = build("if (a) { x = 1; }")
        region = ir.body.items[0]
        with pytest.raises(TransformError):
            remove_stmt(region.branch)

    def test_remove_detached_raises(self):
        with pytest.raises(TransformError):
            remove_stmt(SAssign("x", EConst(1)))


class TestFreshNames:
    def test_fresh_name_avoids_collisions(self):
        program = ProgramIR()
        program.register_name("t")
        assert program.fresh_name("t") == "t1"
        assert program.fresh_name("t") == "t2"
        assert program.fresh_name("u") == "u"


class TestCloneProgram:
    def test_clone_is_disjoint(self, figure2):
        copy = clone_program(figure2)
        orig_ids = {id(s) for s, _ in iter_statements(figure2)}
        copy_ids = {id(s) for s, _ in iter_statements(copy)}
        assert orig_ids.isdisjoint(copy_ids)

    def test_clone_preserves_listing(self, figure2):
        from repro.ir.printer import format_ir

        assert format_ir(clone_program(figure2)) == format_ir(figure2)

    def test_clone_remaps_def_sites(self):
        # Build a tiny SSA-ish program by hand: def + use linked.
        program = ProgramIR()
        d = SAssign("a", EConst(1), version=0)
        use = EVar("a", 0, d)
        u = SAssign("b", use, version=0)
        program.body.append(d)
        program.body.append(u)
        copy = clone_program(program)
        d2, u2 = copy.body.items
        linked = next(u2.uses()).def_site
        assert linked is d2  # remapped to the cloned def

    def test_clone_full_ssa_form(self, figure2):
        from repro.cssame import build_cssame
        from repro.ir.printer import format_ir

        build_cssame(figure2)
        copy = clone_program(figure2)
        assert format_ir(copy) == format_ir(figure2)
        # Every use in the clone chains to a statement of the clone.
        copy_stmts = {id(s) for s, _ in iter_statements(copy)}
        from repro.ir.stmts import IRStmt

        for stmt, _ in iter_statements(copy):
            for use in stmt.uses():
                if isinstance(use.def_site, IRStmt):
                    assert id(use.def_site) in copy_stmts
