"""AST → structured IR lowering."""

from repro.ir.lower import lower_program
from repro.ir.printer import format_ir
from repro.ir.stmts import (
    SAssign,
    SCallStmt,
    SLock,
    SPrint,
    SSetEvent,
    SSkip,
    SUnlock,
    SWaitEvent,
)
from repro.ir.structured import (
    CobeginRegion,
    IfRegion,
    WhileRegion,
    count_statements,
    iter_statements,
)
from repro.lang.parser import parse

from tests.conftest import build


class TestBasicLowering:
    def test_assignment(self):
        ir = build("x = 1 + 2;")
        (stmt,) = [s for s, _ in iter_statements(ir)]
        assert isinstance(stmt, SAssign)
        assert stmt.target == "x"

    def test_statement_kinds(self):
        ir = build("lock(L); unlock(L); set(e); wait(e); print(1); f(2); skip;")
        kinds = [type(s) for s, _ in iter_statements(ir)]
        assert kinds == [
            SLock, SUnlock, SSetEvent, SWaitEvent, SPrint, SCallStmt, SSkip,
        ]

    def test_if_region(self):
        ir = build("if (a) { x = 1; } else { y = 2; }")
        region = ir.body.items[0]
        assert isinstance(region, IfRegion)
        assert len(region.then_body) == 1
        assert len(region.else_body) == 1
        assert region.branch.parent is region

    def test_while_region(self):
        ir = build("while (i < 3) { i = i + 1; }")
        region = ir.body.items[0]
        assert isinstance(region, WhileRegion)
        assert len(region.body) == 1

    def test_cobegin_region(self):
        ir = build("cobegin T0: begin a = 1; end T1: begin b = 2; end coend")
        region = ir.body.items[0]
        assert isinstance(region, CobeginRegion)
        assert [t.label for t in region.threads] == ["T0", "T1"]
        assert region.threads[0].cobegin is region

    def test_default_thread_labels(self):
        ir = build("cobegin begin a = 1; end begin b = 2; end coend")
        region = ir.body.items[0]
        assert [t.label for t in region.threads] == ["T0", "T1"]


class TestPrivateMangling:
    def test_private_gets_unique_name(self):
        ir = build(
            """
            cobegin
            begin private t = 1; x = t; end
            begin private t = 2; y = t; end
            coend
            """
        )
        assigns = [s for s, _ in iter_statements(ir) if isinstance(s, SAssign)]
        t_names = {s.target for s in assigns if s.target.startswith("t__p")}
        assert len(t_names) == 2  # two distinct mangled privates
        # The uses resolve to the thread's own private.
        x_assign = next(s for s in assigns if s.target == "x")
        used = next(x_assign.uses())
        assert used.name.startswith("t__p")

    def test_private_without_init_zeroed(self):
        ir = build("cobegin begin private p; x = p; end coend")
        assigns = [s for s, _ in iter_statements(ir) if isinstance(s, SAssign)]
        init = assigns[0]
        assert init.target.startswith("p__p")

    def test_outer_name_untouched(self):
        ir = build("t = 5; cobegin begin private t = 1; end coend print(t);")
        prints = [s for s, _ in iter_statements(ir) if isinstance(s, SPrint)]
        used = next(prints[0].uses())
        assert used.name == "t"  # outer t, not the private

    def test_private_registered(self):
        ir = build("cobegin begin private q = 1; end coend")
        assert any(n.startswith("q__p") for n in ir.private_names)


class TestStructure:
    def test_count_statements(self, figure2):
        # 2 inits + (lock, a, b, a, x, unlock) + (lock, a, y, unlock) + 2 prints
        assert count_statements(figure2) == 14

    def test_iter_includes_branches_optionally(self, figure2):
        with_branches = sum(1 for _ in iter_statements(figure2, include_branches=True))
        without = sum(1 for _ in iter_statements(figure2, include_branches=False))
        assert with_branches == without + 1  # one if

    def test_thread_path_in_context(self):
        ir = build("cobegin begin a = 1; end begin b = 2; end coend")
        paths = [ctx.thread_path for s, ctx in iter_statements(ir)]
        assert len({p for p in paths}) == 2
        assert all(len(p) == 1 for p in paths)

    def test_format_after_lowering_reparses(self, figure2):
        text = format_ir(figure2)
        reparsed = lower_program(parse(text))
        assert count_statements(reparsed) == count_statements(figure2)
