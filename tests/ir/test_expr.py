"""IR expression utilities."""

from repro.ir.expr import (
    EBin,
    ECall,
    EConst,
    EUn,
    EVar,
    clone_expr,
    expr_to_str,
    iter_expr_vars,
    map_expr_vars,
    substitute_vars,
)


def sample():
    # (a + b) * g(c, 2) - !d
    return EBin(
        "-",
        EBin("*", EBin("+", EVar("a"), EVar("b")), ECall("g", [EVar("c"), EConst(2)])),
        EUn("!", EVar("d")),
    )


class TestIterVars:
    def test_collects_all_vars_in_order(self):
        names = [v.name for v in iter_expr_vars(sample())]
        assert names == ["a", "b", "c", "d"]

    def test_const_has_no_vars(self):
        assert list(iter_expr_vars(EConst(5))) == []


class TestMapVars:
    def test_identity_returns_same_nodes(self):
        expr = sample()
        assert map_expr_vars(expr, lambda v: v) is expr

    def test_replacement(self):
        expr = EBin("+", EVar("a"), EVar("b"))
        out = map_expr_vars(expr, lambda v: EConst(1) if v.name == "a" else v)
        assert expr_to_str(out) == "1 + b"

    def test_substitute_none_keeps(self):
        expr = EVar("a")
        assert substitute_vars(expr, lambda v: None) is expr


class TestClone:
    def test_clone_is_deep(self):
        expr = sample()
        copy = clone_expr(expr)
        assert copy is not expr
        assert expr_to_str(copy) == expr_to_str(expr)
        # Mutating the clone's EVar does not affect the original.
        next(iter_expr_vars(copy)).name = "zz"
        assert next(iter_expr_vars(expr)).name == "a"

    def test_clone_preserves_ssa_info(self):
        var = EVar("a", version=3, def_site="marker")
        copy = clone_expr(var)
        assert copy.version == 3 and copy.def_site == "marker"


class TestDisplay:
    def test_ssa_name(self):
        assert EVar("a", 3).ssa_name == "a3"
        assert EVar("a").ssa_name == "a"

    def test_expr_to_str_minimal_parens(self):
        assert expr_to_str(sample()) == "(a + b) * g(c, 2) - !d"

    def test_same_ssa(self):
        assert EVar("a", 1).same_ssa(EVar("a", 1))
        assert not EVar("a", 1).same_ssa(EVar("a", 2))
        assert not EVar("a", 1).same_ssa(EVar("b", 1))
