"""Structured-IR printer tests."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from tests.conftest import build


class TestPlainPrinting:
    def test_simple_program(self):
        text = format_ir(build("x = 1;\nprint(x);"))
        assert text == "x = 1;\nprint(x);\n"

    def test_if_else(self):
        text = format_ir(build("if (a) { x = 1; } else { y = 2; }"))
        assert "if (a) {" in text
        assert "} else {" in text

    def test_if_without_else_prints_no_else(self):
        text = format_ir(build("if (a) { x = 1; }"))
        assert "else" not in text

    def test_while(self):
        text = format_ir(build("while (i < 2) { i = i + 1; }"))
        assert "while (i < 2) {" in text

    def test_cobegin_with_labels(self):
        text = format_ir(build("cobegin W: begin a = 1; end coend"))
        assert "W: begin" in text
        assert text.strip().endswith("coend")

    def test_sync_ops(self):
        text = format_ir(build("lock(L); unlock(L); set(e); wait(e);"))
        for frag in ("lock(L);", "unlock(L);", "set(e);", "wait(e);"):
            assert frag in text

    def test_empty_program(self):
        from repro.ir.structured import ProgramIR

        assert format_ir(ProgramIR()) == ""


class TestSSAPrinting:
    def test_phi_and_pi_rendering(self, figure2):
        build_cssame(figure2, prune=False)
        text = format_ir(figure2)
        assert "a3 = phi(a2, a1);" in text
        assert "= pi(" in text
        assert "a1 = 5;" in text  # SSA versions on assignments

    def test_header_phi_rendering(self):
        ir = build("i = 0; while (i < 3) { i = i + 1; } print(i);")
        build_cssame(ir)
        text = format_ir(ir)
        assert "/* loop header */" in text
        assert "phi(" in text
