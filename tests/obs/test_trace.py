"""Tracer core: spans, events, the global no-op default, overhead."""

from time import perf_counter

import pytest

from repro.api import optimize_source
from repro.obs.events import Event, PassStart
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from tests.conftest import FIGURE2_SOURCE


class TestNullTracer:
    def test_global_default_is_noop(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        assert tracer.records == ()

    def test_noop_span_and_instruments(self):
        with NULL_TRACER.span("x", a=1) as span:
            span.set(b=2)
        NULL_TRACER.event(PassStart("p"))
        NULL_TRACER.counter("c").inc()
        NULL_TRACER.histogram("h").observe(3.0)
        assert NULL_TRACER.records == ()
        assert NULL_TRACER.metrics.as_dict() == {"counters": {}, "histograms": {}}

    def test_pipeline_run_adds_no_events(self):
        """An untraced optimize_source leaves the global tracer empty."""
        optimize_source(FIGURE2_SOURCE)
        tracer = get_tracer()
        assert tracer.records == ()
        assert tracer.spans() == [] and tracer.events() == []

    def test_disabled_overhead_under_5_percent(self):
        """Instrumentation cost with tracing off stays under 5% of the
        Figure 2 pipeline's wall time.

        Measured as (sites executed per run) x (per-site no-op cost):
        both factors are stable, unlike an A/B of two millisecond runs.
        """
        best = min(
            _timed(lambda: optimize_source(FIGURE2_SOURCE)) for _ in range(5)
        )
        probe = Tracer()
        optimize_source(FIGURE2_SOURCE, trace=probe)
        sites = len(probe.records)

        iters = 20_000
        tracer = NULL_TRACER

        def loop():
            for _ in range(iters):
                with tracer.span("site"):
                    pass
        site_cost = min(_timed(loop) for _ in range(5)) / iters
        assert sites * site_cost < 0.05 * best


def _timed(fn) -> float:
    t0 = perf_counter()
    fn()
    return perf_counter() - t0


class TestTracer:
    def test_span_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", x=1) as outer:
            with tracer.span("inner") as inner:
                inner.set(y=2)
            outer.set(z=3)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["outer", "inner"]
        assert [s.depth for s in spans] == [0, 1]
        assert spans[0].attrs == {"x": 1, "z": 3}
        assert spans[1].attrs == {"y": 2}
        assert spans[0].duration >= spans[1].duration >= 0.0
        # the inner interval lies within the outer one
        assert spans[0].start <= spans[1].start
        assert spans[1].end <= spans[0].end

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError
        assert tracer.spans()[0].end is not None
        assert tracer._stack == []

    def test_event_stamps_timestamp(self):
        tracer = Tracer()
        event = PassStart("constprop")
        tracer.event(event)
        assert isinstance(event, Event)
        assert event.ts >= 0.0
        assert tracer.events_of_kind("pass-start") == [event]

    def test_records_preserve_emission_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.event(PassStart("p1"))
        tracer.event(PassStart("p2"))
        kinds = [
            r.name if hasattr(r, "name") else r.kind for r in tracer.records
        ]
        assert kinds == ["a", "pass-start", "pass-start"]

    def test_metrics_roundtrip(self):
        tracer = Tracer()
        tracer.counter("c").inc()
        tracer.counter("c").inc(4)
        tracer.histogram("h").observe(2.0)
        tracer.histogram("h").observe(4.0)
        d = tracer.metrics.as_dict()
        assert d["counters"] == {"c": 5}
        assert d["histograms"]["h"]["count"] == 2
        assert d["histograms"]["h"]["mean"] == 3.0


class TestGlobalInstallation:
    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_use_tracer_restores_on_exit(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_use_tracer_none_means_noop(self):
        with use_tracer(None):
            assert not get_tracer().enabled
