"""The instrumented stack: decision events match the stats objects,
event sequences are deterministic, the VM emits runtime events, and the
critical-section profile can be recomputed from a trace."""

from repro.api import analyze_source, diagnose_source, optimize_source
from repro.obs.trace import Tracer, use_tracer
from repro.report import (
    critical_section_profile,
    critical_section_profile_from_trace,
    lock_profile_from_events,
)
from repro.vm.machine import run_random
from tests.conftest import FIGURE1_SOURCE, FIGURE2_SOURCE, build

DEADLOCK_SOURCE = """
cobegin
begin lock(A); lock(B); unlock(B); unlock(A); end
begin lock(B); lock(A); unlock(A); unlock(B); end
coend
"""


def _event_payloads(tracer: Tracer) -> list[dict]:
    """Event dicts with timestamps stripped (the deterministic part)."""
    payloads = []
    for event in tracer.events():
        d = event.as_dict()
        d.pop("ts")
        payloads.append(d)
    return payloads


class TestPipelineEvents:
    def test_removal_events_match_rewrite_stats(self):
        tracer = Tracer()
        report = optimize_source(FIGURE2_SOURCE, trace=tracer)
        stats = report.form.rewrite_stats
        removed = tracer.events_of_kind("pi-arg-removed")
        assert len(removed) == stats.args_removed == 5
        deleted = tracer.events_of_kind("pi-deleted")
        assert len(deleted) == stats.pis_deleted == 4
        assert tracer.metrics.counters["cssame.args_removed"].value == 5

    def test_removal_reasons_are_theorems(self):
        tracer = Tracer()
        analyze_source(FIGURE1_SOURCE, trace=tracer)
        for event in tracer.events_of_kind("pi-arg-removed"):
            assert event.reason in ("not-upward-exposed", "does-not-reach-exit")
            assert event.lock == "L"

    def test_mutex_body_events_match_form(self):
        tracer = Tracer()
        form = analyze_source(FIGURE2_SOURCE, trace=tracer)
        bodies = tracer.events_of_kind("mutex-body")
        assert len(bodies) == len(form.mutex_bodies()) == 2
        assert {e.lock for e in bodies} == {"L"}

    def test_pass_spans_and_events(self):
        tracer = Tracer()
        optimize_source(FIGURE2_SOURCE, trace=tracer)
        span_names = [s.name for s in tracer.spans()]
        for name in ("optimize", "build-cssame", "pass:constprop",
                     "pass:pdce", "pass:licm"):
            assert name in span_names
        starts = [e.pass_name for e in tracer.events_of_kind("pass-start")]
        ends = [e.pass_name for e in tracer.events_of_kind("pass-end")]
        assert starts == ends == ["constprop", "pdce", "licm"]
        pdce_end = tracer.events_of_kind("pass-end")[1]
        assert pdce_end.stats["removed"] == 6

    def test_event_sequence_is_deterministic(self):
        """Two identical runs differ only in timestamps."""
        t1, t2 = Tracer(), Tracer()
        optimize_source(FIGURE2_SOURCE, trace=t1)
        optimize_source(FIGURE2_SOURCE, trace=t2)
        assert _event_payloads(t1) == _event_payloads(t2)
        assert [s.name for s in t1.spans()] == [s.name for s in t2.spans()]
        assert [s.attrs for s in t1.spans()] == [s.attrs for s in t2.spans()]

    def test_graph_is_fresh_tracking(self):
        report = optimize_source(FIGURE2_SOURCE)
        assert report.graph_is_fresh is False
        untouched = optimize_source(FIGURE2_SOURCE, passes=())
        assert untouched.graph_is_fresh is True

    def test_diagnose_span(self):
        tracer = Tracer()
        diagnose_source(FIGURE2_SOURCE, trace=tracer)
        span = tracer.span_named("diagnose")
        assert span is not None
        assert span.attrs == {"warnings": 0, "races": 0}


class TestVMEvents:
    def test_step_events_match_execution(self):
        tracer = Tracer()
        with use_tracer(tracer):
            ex = run_random(build(FIGURE2_SOURCE), seed=3)
        steps = tracer.events_of_kind("vm-step")
        assert len(steps) == ex.steps
        assert [e.step for e in steps] == list(range(ex.steps))
        acquires = tracer.events_of_kind("lock-acquire")
        assert len(acquires) == sum(ex.lock_acquisitions.values()) == 2
        releases = tracer.events_of_kind("lock-release")
        assert sum(e.held_steps for e in releases) == sum(
            ex.lock_held_steps.values()
        )
        contention = tracer.events_of_kind("lock-contention")
        assert len(contention) == sum(ex.lock_blocked_steps.values())

    def test_context_switches_recorded(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_random(build(FIGURE2_SOURCE), seed=3)
        switches = tracer.events_of_kind("context-switch")
        assert switches, "two threads must interleave at least once"
        for event in switches:
            assert event.prev_tid != event.next_tid

    def test_lock_hold_histogram(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_random(build(FIGURE2_SOURCE), seed=3)
        hist = tracer.metrics.histograms["vm.lock_hold_steps.L"]
        assert hist.summary()["count"] == 2

    def test_deadlocked_run_traces(self):
        tracer = Tracer()
        with use_tracer(tracer):
            ex = run_random(
                build(DEADLOCK_SOURCE), seed=1, raise_on_deadlock=False
            )
        if ex.deadlocked:  # seed-dependent; both branches must trace
            assert len(tracer.events_of_kind("lock-acquire")) >= 2
        profile = lock_profile_from_events(tracer.events(), ex.steps)
        assert profile["held"] == ex.lock_held_steps
        assert profile["acquisitions"] == ex.lock_acquisitions


class TestProfileFromTrace:
    def test_matches_counter_based_profile(self):
        counters = critical_section_profile(build(FIGURE2_SOURCE))
        from_trace = critical_section_profile_from_trace(build(FIGURE2_SOURCE))
        assert counters == from_trace

    def test_matches_on_deadlocking_program(self):
        """Open holds at deadlock are accounted identically."""
        for seed in range(6):
            tracer = Tracer()
            with use_tracer(tracer):
                ex = run_random(
                    build(DEADLOCK_SOURCE), seed=seed, raise_on_deadlock=False
                )
            profile = lock_profile_from_events(tracer.events(), ex.steps)
            assert profile["held"] == ex.lock_held_steps, f"seed {seed}"
            assert profile["blocked"] == ex.lock_blocked_steps, f"seed {seed}"

    def test_profile_accepts_loaded_dicts(self, tmp_path):
        """The recompute works on a jsonl trace read back from disk."""
        from repro.obs.export import load_jsonl, write_trace

        tracer = Tracer()
        with use_tracer(tracer):
            ex = run_random(build(FIGURE2_SOURCE), seed=0)
        path = tmp_path / "vm.jsonl"
        write_trace(tracer, str(path), "jsonl")
        records = [r for r in load_jsonl(str(path)) if r["type"] == "event"]
        profile = lock_profile_from_events(records, ex.steps)
        assert profile["held"] == ex.lock_held_steps


class TestExploreSpans:
    def test_explore_span_attrs(self):
        from repro.vm.explore import explore

        tracer = Tracer()
        with use_tracer(tracer):
            result = explore(build(FIGURE2_SOURCE))
        span = tracer.span_named("explore")
        assert span.attrs["states"] == result.states
        assert span.attrs["outcomes"] == len(result.outcomes)
        assert span.attrs["complete"] is True
        assert tracer.metrics.counters["explore.states"].value == result.states
