"""Deterministic work counters: gating, naming, determinism."""

from repro.obs.prof import (
    WORK_PREFIX,
    profile_source,
    record_work,
    total_work,
    work_by_phase,
    work_counters,
)
from repro.obs.trace import Tracer, use_tracer
from tests.conftest import FIGURE2_SOURCE


class TestRecordWork:
    def test_noop_when_tracing_disabled(self):
        tracer = Tracer()
        record_work("phase", ops=5)  # ambient tracer is NULL_TRACER
        assert work_counters(tracer) == {}

    def test_records_under_enabled_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            record_work("phase", ops=5, visits=2)
            record_work("phase", ops=1)  # accumulates
        assert work_counters(tracer) == {
            "work.phase.ops": 6,
            "work.phase.visits": 2,
        }

    def test_helpers(self):
        counters = {"work.a.x": 1, "work.a.y": 2, "work.b.z": 3, "other": 9}
        assert work_by_phase(counters) == {
            "a": {"x": 1, "y": 2},
            "b": {"z": 3},
        }
        assert total_work(counters) == 6  # non-work counters excluded


class TestProfileSource:
    def test_counters_are_deterministic(self):
        first = profile_source(FIGURE2_SOURCE)
        second = profile_source(FIGURE2_SOURCE)
        assert first.counters and first.counters == second.counters
        assert first.total() == second.total() > 0

    def test_every_pipeline_phase_reports(self):
        phases = profile_source(FIGURE2_SOURCE).phases
        for phase in (
            "pfg", "cssa", "identify-mutex", "rewrite-pi",
            "constprop", "pdce", "licm",
        ):
            assert phase in phases, phase
            assert all(v >= 0 for v in phases[phase].values())

    def test_known_figure2_counts(self):
        # The paper's running example: 5 π terms with 6 conflict
        # arguments placed, 5 arguments removed and 4 π terms deleted
        # by A.3 — the counter values ARE the figure's numbers.
        phases = profile_source(FIGURE2_SOURCE).phases
        assert phases["cssa"]["pi_terms"] == 5
        assert phases["rewrite-pi"]["args_removed"] == 5
        assert phases["rewrite-pi"]["pis_deleted"] == 4

    def test_as_dict_is_consistent(self):
        profile = profile_source(FIGURE2_SOURCE)
        payload = profile.as_dict()
        assert payload["total_work"] == sum(payload["work"].values())
        assert all(k.startswith(WORK_PREFIX) for k in payload["work"])
        assert payload["wall_ms"]

    def test_cssa_variant_does_less_pruning_work(self):
        cssame = profile_source(FIGURE2_SOURCE)
        cssa = profile_source(FIGURE2_SOURCE, use_mutex=False)
        # Without mutex knowledge A.3 never runs, so the rewrite-pi
        # phase reports nothing and downstream passes see more names.
        assert "rewrite-pi" not in cssa.phases
        assert "rewrite-pi" in cssame.phases


def test_disabled_tracer_cost_is_one_attribute_check():
    # The contract behind the <5% overhead bound: with tracing
    # disabled, record_work returns before touching any registry.
    import repro.obs.prof as prof

    class Exploding:
        enabled = False

        @property
        def metrics(self):  # pragma: no cover - must not be reached
            raise AssertionError("disabled record_work touched metrics")

    original = prof.get_tracer
    prof.get_tracer = lambda: Exploding()
    try:
        record_work("phase", ops=1)
    finally:
        prof.get_tracer = original
