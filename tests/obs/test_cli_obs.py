"""CLI observability surface: --trace/--trace-format, stats, --strict."""

import json

import pytest

from repro.cli import main
from repro.obs.export import load_jsonl
from tests.conftest import FIGURE2_SOURCE

RACY_SOURCE = "cobegin begin v = 1; end begin v = 2; end coend print(v);"


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.par"
    path.write_text(FIGURE2_SOURCE)
    return str(path)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.par"
    path.write_text(RACY_SOURCE)
    return str(path)


class TestStatsCommand:
    def test_prints_timing_and_metrics_tables(self, fig2_file, capsys):
        assert main(["stats", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "== per-pass timing ==" in out
        assert "wall_ms" in out
        for phase in ("cssa", "rewrite-pi", "pass:constprop", "pass:pdce",
                      "pass:licm"):
            assert phase in out
        assert "== A.3 conflict-argument removals ==" in out
        assert "not-upward-exposed" in out
        assert "== final form metrics ==" in out
        assert "cssame.args_removed" in out

    def test_cssa_mode_skips_rewrite(self, fig2_file, capsys):
        assert main(["stats", "--cssa", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "rewrite-pi" not in out
        assert "pass:constprop" in out


class TestTraceFlag:
    def test_jsonl_trace_on_optimize(self, fig2_file, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(["optimize", fig2_file, "--trace", str(out_file)]) == 0
        records = load_jsonl(str(out_file))
        kinds = {r.get("kind") for r in records if r["type"] == "event"}
        assert "pi-arg-removed" in kinds
        names = [r["name"] for r in records if r["type"] == "span"]
        assert "pass:licm" in names
        assert records[-1]["type"] == "metrics"

    def test_chrome_trace_acceptance_shape(self, fig2_file, tmp_path):
        """One span per pass + one event per A.3 removal with a reason."""
        out_file = tmp_path / "t.json"
        assert main([
            "optimize", fig2_file,
            "--trace", str(out_file), "--trace-format", "chrome",
        ]) == 0
        with open(out_file) as handle:
            doc = json.load(handle)
        events = doc["traceEvents"]
        passes = [e["name"] for e in events
                  if e["ph"] == "X" and e["name"].startswith("pass:")]
        assert sorted(passes) == ["pass:constprop", "pass:licm", "pass:pdce"]
        removals = [e for e in events if e["name"] == "pi-arg-removed"]
        assert len(removals) == 5
        assert all(
            e["args"]["reason"] in ("not-upward-exposed", "does-not-reach-exit")
            for e in removals
        )

    def test_text_trace_on_run(self, fig2_file, tmp_path):
        out_file = tmp_path / "t.txt"
        assert main([
            "run", fig2_file, "--trace", str(out_file), "--trace-format", "text",
        ]) == 0
        text = out_file.read_text()
        assert "vm-step" in text
        assert "lock-acquire" in text

    def test_trace_written_on_failing_exit(self, racy_file, tmp_path):
        """diagnose exits 1 but the trace must still land on disk."""
        out_file = tmp_path / "t.jsonl"
        assert main(["diagnose", racy_file, "--trace", str(out_file)]) == 1
        assert out_file.exists()
        names = [r["name"] for r in load_jsonl(str(out_file))
                 if r["type"] == "span"]
        assert "diagnose" in names

    def test_explore_traced(self, fig2_file, tmp_path):
        out_file = tmp_path / "t.jsonl"
        assert main(["explore", fig2_file, "--trace", str(out_file)]) == 0
        spans = [r for r in load_jsonl(str(out_file)) if r["type"] == "span"]
        explore_span = next(s for s in spans if s["name"] == "explore")
        assert explore_span["attrs"]["outcomes"] == 2

    def test_no_trace_file_without_flag(self, fig2_file, capsys):
        assert main(["analyze", fig2_file]) == 0  # smoke: flag is optional

    def test_unwritable_trace_path_exits_3(self, fig2_file, tmp_path, capsys):
        missing = tmp_path / "no-such-dir" / "t.jsonl"
        assert main(["optimize", fig2_file, "--trace", str(missing)]) == 3
        assert "cannot write trace" in capsys.readouterr().err


class TestDiagnoseStrictness:
    def test_strict_default_gates(self, racy_file, capsys):
        assert main(["diagnose", racy_file]) == 1
        assert "race:" in capsys.readouterr().out

    def test_no_strict_reports_but_passes(self, racy_file, capsys):
        assert main(["diagnose", "--no-strict", racy_file]) == 0
        assert "race:" in capsys.readouterr().out

    def test_clean_program_unaffected(self, fig2_file, capsys):
        assert main(["diagnose", "--strict", fig2_file]) == 0
        assert "no synchronization problems" in capsys.readouterr().out
