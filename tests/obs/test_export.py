"""Exporter round-trips: jsonl, Chrome trace_event, text summary."""

import json

import pytest

from repro.api import optimize_source
from repro.obs.export import (
    export_chrome,
    export_collapsed,
    export_jsonl,
    load_jsonl,
    render_text,
    trace_as_dicts,
    write_trace,
)
from repro.obs.trace import Tracer
from tests.conftest import FIGURE2_SOURCE


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    optimize_source(FIGURE2_SOURCE, trace=tracer)
    return tracer


class TestJsonl:
    def test_round_trip(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            lines = export_jsonl(traced, handle)
        loaded = load_jsonl(str(path))
        assert lines == len(loaded)
        assert loaded == trace_as_dicts(traced)

    def test_terminated_by_metrics_line(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(traced, str(path), "jsonl")
        loaded = load_jsonl(str(path))
        assert loaded[-1]["type"] == "metrics"
        assert loaded[-1]["counters"]["cssame.args_removed"] == 5

    def test_every_line_is_valid_json(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(traced, str(path), "jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on malformed output


class TestChrome:
    def test_structure_perfetto_accepts(self, traced):
        doc = export_chrome(traced)
        # the object format chrome://tracing and Perfetto load
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
        json.dumps(doc)  # must be serializable as-is

    def test_one_span_per_pass(self, traced):
        doc = export_chrome(traced)
        complete = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        for name in ("pass:constprop", "pass:pdce", "pass:licm"):
            assert complete.count(name) == 1

    def test_one_instant_event_per_removal_with_reason(self, traced):
        doc = export_chrome(traced)
        removals = [
            e for e in doc["traceEvents"] if e["name"] == "pi-arg-removed"
        ]
        stats = None
        for e in doc["traceEvents"]:
            if e["ph"] == "X" and e["name"] == "rewrite-pi":
                stats = e["args"]
        assert stats is not None and len(removals) == stats["args_removed"]
        for event in removals:
            assert event["ph"] == "i"
            assert event["args"]["reason"] in (
                "not-upward-exposed",
                "does-not-reach-exit",
            )

    def test_write_trace_chrome_is_loadable(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(traced, str(path), "chrome")
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]


class TestText:
    def test_summary_mentions_passes_and_metrics(self, traced):
        text = render_text(traced)
        assert "pass:constprop" in text
        assert "pi-arg-removed x5" in text
        assert "cssame.pis_deleted = 4" in text

    def test_write_trace_text(self, traced, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(traced, str(path), "text")
        assert "== spans ==" in path.read_text()

    def test_empty_tracer_renders(self):
        text = render_text(Tracer())
        assert "(none)" in text


class TestFlame:
    def test_collapsed_stack_syntax(self, traced):
        lines = export_collapsed(traced).strip().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack
            assert int(weight) >= 0  # integer microseconds of self time
            assert " ;" not in stack and "; " not in stack

    def test_nesting_preserved(self, traced):
        text = export_collapsed(traced)
        # passes run inside the optimize span inside the session stage
        assert "optimize;pass:constprop" in text
        assert "build-cssame;cssa" in text

    def test_self_time_sums_to_inclusive_roots(self, traced):
        total_self = sum(
            int(line.rsplit(" ", 1)[1])
            for line in export_collapsed(traced).strip().splitlines()
        )
        root_depth = min(span.depth for span in traced.spans())
        root_inclusive = sum(
            span.duration * 1e6
            for span in traced.spans()
            if span.depth == root_depth
        )
        # flooring to whole microseconds loses <1us per span
        assert abs(total_self - root_inclusive) <= len(traced.spans())

    def test_write_trace_flame(self, traced, tmp_path):
        path = tmp_path / "trace.flame"
        write_trace(traced, str(path), "flame")
        content = path.read_text()
        assert content.endswith("\n")
        assert ";" in content

    def test_empty_tracer_collapses_to_nothing(self):
        assert export_collapsed(Tracer()) == ""


def test_unknown_format_rejected(traced, tmp_path):
    with pytest.raises(ValueError, match="unknown trace format"):
        write_trace(traced, str(tmp_path / "x"), "xml")
