"""Histogram percentiles (nearest-rank) and their rendering."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, percentile


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank_hundred(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.90) == 90.0
        assert percentile(values, 0.99) == 99.0

    def test_small_sample(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0


class TestHistogramSummary:
    def test_summary_has_percentile_keys(self):
        hist = Histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        s = hist.summary()
        assert (s["p50"], s["p90"], s["p99"]) == (50.0, 90.0, 99.0)
        assert s["count"] == 100 and s["min"] == 1.0 and s["max"] == 100.0

    def test_empty_summary_is_zeroed(self):
        s = Histogram("h").summary()
        assert s["count"] == 0
        assert s["p50"] == s["p90"] == s["p99"] == 0.0

    def test_render_text_shows_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        text = registry.render_text()
        assert "p50=2" in text and "p90=3" in text and "p99=3" in text


def test_stats_command_prints_histogram_table(tmp_path, capsys):
    from repro.cli import main
    from tests.conftest import FIGURE2_SOURCE

    source = tmp_path / "p.par"
    source.write_text(FIGURE2_SOURCE)
    assert main(["stats", str(source)]) == 0
    out = capsys.readouterr().out
    assert "== histograms ==" in out
    assert "span_wall_ms" in out
    assert "p50" in out and "p90" in out and "p99" in out
