"""Static lock-order deadlock detection."""

from repro.api import diagnose_source, front_end
from repro.cfg.builder import build_flow_graph
from repro.mutex.deadlock import detect_lock_order_cycles
from repro.mutex.identify import identify_mutex_structures
from repro.vm.explore import explore, find_witness
from tests.conftest import build

ABBA = """
cobegin
begin lock(A); lock(B); x = 1; unlock(B); unlock(A); end
begin lock(B); lock(A); y = 2; unlock(A); unlock(B); end
coend
"""


def risks_of(source):
    g = build_flow_graph(build(source))
    structures = identify_mutex_structures(g)
    return detect_lock_order_cycles(g, structures)


class TestDetection:
    def test_abba_detected(self):
        risks = risks_of(ABBA)
        assert len(risks) == 1
        assert set(risks[0].cycle) == {"A", "B"}
        assert "potential deadlock" in risks[0].message()

    def test_consistent_order_clean(self):
        risks = risks_of(
            """
            cobegin
            begin lock(A); lock(B); x = 1; unlock(B); unlock(A); end
            begin lock(A); lock(B); y = 2; unlock(B); unlock(A); end
            coend
            """
        )
        assert risks == []

    def test_sequential_abba_clean(self):
        # Both orders appear, but never concurrently: no deadlock.
        risks = risks_of(
            """
            lock(A); lock(B); x = 1; unlock(B); unlock(A);
            lock(B); lock(A); y = 2; unlock(A); unlock(B);
            """
        )
        assert risks == []

    def test_single_lock_clean(self, figure2):
        g = build_flow_graph(figure2)
        assert detect_lock_order_cycles(g, identify_mutex_structures(g)) == []

    def test_three_lock_cycle(self):
        risks = risks_of(
            """
            cobegin
            begin lock(A); lock(B); x = 1; unlock(B); unlock(A); end
            begin lock(B); lock(C); y = 2; unlock(C); unlock(B); end
            begin lock(C); lock(A); z = 3; unlock(A); unlock(C); end
            coend
            """
        )
        assert len(risks) == 1
        assert set(risks[0].cycle) == {"A", "B", "C"}

    def test_cycle_reported_once(self):
        # Two thread pairs with the same inversion: one report.
        risks = risks_of(
            """
            cobegin
            begin lock(A); lock(B); w = 1; unlock(B); unlock(A); end
            begin lock(B); lock(A); x = 2; unlock(A); unlock(B); end
            begin lock(A); lock(B); y = 3; unlock(B); unlock(A); end
            coend
            """
        )
        assert len(risks) == 1


class TestIntegration:
    def test_diagnose_source_reports_risk(self):
        warnings, _races = diagnose_source(ABBA)
        kinds = [w.kind for w in warnings]
        assert "deadlock-risk" in kinds

    def test_static_risk_confirmed_by_explorer(self):
        """The static report is real: the explorer finds an actual
        deadlocking schedule for the flagged program."""
        risks = risks_of(ABBA)
        assert risks
        program = front_end(ABBA)
        assert explore(program).can_deadlock
        schedule = find_witness(program, (("deadlock",),))
        assert schedule is not None

    def test_no_false_negative_on_paper_example(self, figure2_source):
        warnings, _ = diagnose_source(figure2_source)
        assert all(w.kind != "deadlock-risk" for w in warnings)
