"""Lockset-based potential race detection (Section 6)."""

from repro.api import diagnose_source
from tests.conftest import FIGURE2_SOURCE


def races_of(source):
    _warnings, races = diagnose_source(source)
    return races


class TestRaces:
    def test_fully_protected_no_race(self):
        races = races_of(FIGURE2_SOURCE)
        assert races == []

    def test_unprotected_write_write(self):
        races = races_of(
            "cobegin begin v = 1; end begin v = 2; end coend print(v);"
        )
        kinds = {r.kind for r in races}
        assert "write-write" in kinds
        assert all(r.var == "v" for r in races)

    def test_unprotected_write_read(self):
        races = races_of(
            "cobegin begin v = 1; end begin x = v; end coend print(x);"
        )
        assert any(r.kind == "write-read" for r in races)

    def test_inconsistent_locks_detected(self):
        # One thread protects v with A, the other with B.
        races = races_of(
            """
            cobegin
            begin lock(A); v = 1; unlock(A); end
            begin lock(B); v = 2; unlock(B); end
            coend
            print(v);
            """
        )
        assert any(r.var == "v" for r in races)
        r = next(r for r in races if r.var == "v")
        assert r.locks_a != r.locks_b or not (r.locks_a & r.locks_b)

    def test_partially_protected_detected(self):
        races = races_of(
            """
            cobegin
            begin lock(A); v = 1; unlock(A); end
            begin v = 2; end
            coend
            print(v);
            """
        )
        assert any(r.var == "v" and r.kind == "write-write" for r in races)

    def test_same_lock_everywhere_clean(self):
        races = races_of(
            """
            cobegin
            begin lock(A); v = v + 1; unlock(A); end
            begin lock(A); v = v + 2; unlock(A); end
            coend
            print(v);
            """
        )
        assert races == []

    def test_message_mentions_variable(self):
        races = races_of(
            "cobegin begin v = 1; end begin v = 2; end coend print(v);"
        )
        assert "'v'" in races[0].message()

    def test_read_only_sharing_clean(self):
        races = races_of(
            "v = 1; cobegin begin a = v; end begin b = v; end coend print(a, b);"
        )
        assert races == []
