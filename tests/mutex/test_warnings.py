"""Section 6 synchronization warnings."""

from repro.api import diagnose_source
from repro.cfg.builder import build_flow_graph
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.warnings import check_synchronization
from tests.conftest import build


def warnings_of(source):
    g = build_flow_graph(build(source))
    structures = identify_mutex_structures(g)
    return check_synchronization(g, structures)


class TestUnmatched:
    def test_clean_program_no_warnings(self, figure2_source):
        warnings, _ = diagnose_source(figure2_source)
        assert warnings == []

    def test_lock_without_unlock(self):
        ws = warnings_of("lock(L); a = 1;")
        assert [w.kind for w in ws] == ["unmatched-lock"]
        assert "lock(L)" in ws[0].message

    def test_unlock_without_lock(self):
        ws = warnings_of("a = 1; unlock(L);")
        assert [w.kind for w in ws] == ["unmatched-unlock"]

    def test_conditional_unlock_warns_both(self):
        ws = warnings_of("lock(L); if (c) { unlock(L); } x = 1;")
        kinds = sorted(w.kind for w in ws)
        assert kinds == ["unmatched-lock", "unmatched-unlock"]

    def test_double_lock_outer_ops_unmatched(self):
        ws = warnings_of("lock(L); lock(L); a = 1; unlock(L); unlock(L);")
        kinds = sorted(w.kind for w in ws)
        assert kinds == ["unmatched-lock", "unmatched-unlock"]


class TestNesting:
    def test_proper_nesting_ok(self):
        ws = warnings_of("lock(A); lock(B); x = 1; unlock(B); unlock(A);")
        assert ws == []

    def test_improper_nesting_detected(self):
        # lock(A); lock(B); unlock(A); unlock(B): neither region
        # contains the other.
        ws = warnings_of("lock(A); lock(B); x = 1; unlock(A); y = 2; unlock(B);")
        assert any(w.kind == "improper-nesting" for w in ws)

    def test_disjoint_sections_ok(self):
        ws = warnings_of(
            "lock(A); x = 1; unlock(A); lock(B); y = 2; unlock(B);"
        )
        assert ws == []
