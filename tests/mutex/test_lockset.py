"""Lockset computation."""

from repro.cfg.builder import build_flow_graph
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.lockset import compute_locksets
from tests.conftest import build


def locksets_of(source):
    g = build_flow_graph(build(source))
    structures = identify_mutex_structures(g)
    return g, compute_locksets(g, structures)


def block_holding(g, target):
    for b in g.blocks:
        for s in b.stmts:
            if getattr(s, "target", None) == target:
                return b.id
    raise AssertionError(target)


class TestLocksets:
    def test_inside_section_holds_lock(self):
        g, ls = locksets_of("lock(L); a = 1; unlock(L); b = 2;")
        assert ls[block_holding(g, "a")] == {"L"}
        assert ls[block_holding(g, "b")] == frozenset()

    def test_nested_locks_accumulate(self):
        g, ls = locksets_of(
            "lock(A); x = 1; lock(B); y = 2; unlock(B); z = 3; unlock(A);"
        )
        assert ls[block_holding(g, "x")] == {"A"}
        assert ls[block_holding(g, "y")] == {"A", "B"}
        assert ls[block_holding(g, "z")] == {"A"}

    def test_unmatched_lock_holds_nothing(self):
        g, ls = locksets_of("lock(L); a = 1;")
        # No mutex body formed, so conservatively nothing is protected.
        assert ls[block_holding(g, "a")] == frozenset()

    def test_unlock_node_not_counted(self):
        g, ls = locksets_of("lock(L); a = 1; unlock(L);")
        from repro.cfg.blocks import NodeKind

        unlock = g.nodes_of_kind(NodeKind.UNLOCK)[0]
        lock = g.nodes_of_kind(NodeKind.LOCK)[0]
        assert ls[unlock.id] == frozenset()
        assert ls[lock.id] == {"L"}
