"""Algorithm A.1 — mutex structure identification."""

from repro.cfg.blocks import NodeKind
from repro.cfg.builder import build_flow_graph
from repro.mutex.identify import identify_mutex_structures
from tests.conftest import build


def structures_of(source):
    g = build_flow_graph(build(source))
    return g, identify_mutex_structures(g)


class TestBasicBodies:
    def test_figure2_two_bodies(self, figure2):
        g = build_flow_graph(figure2)
        structures = identify_mutex_structures(g)
        assert set(structures) == {"L"}
        assert len(structures["L"]) == 2

    def test_body_membership(self, figure2):
        g = build_flow_graph(figure2)
        body = identify_mutex_structures(g)["L"].bodies[0]
        # The unlock node is in the body; the lock node is not.
        assert body.unlock_node in body.nodes
        assert body.lock_node not in body.nodes
        # Interior blocks hold the protected statements.
        interior = body.interior_nodes()
        assert interior

    def test_sequential_sections_two_bodies(self):
        _, structures = structures_of(
            "lock(L); a = 1; unlock(L); lock(L); b = 2; unlock(L);"
        )
        assert len(structures["L"]) == 2

    def test_bodies_disjoint(self, figure2):
        g = build_flow_graph(figure2)
        bodies = identify_mutex_structures(g)["L"].bodies
        assert not (bodies[0].nodes & bodies[1].nodes)

    def test_body_with_branch_inside(self):
        _, structures = structures_of(
            "lock(L); if (c) { a = 1; } else { a = 2; } unlock(L);"
        )
        (body,) = structures["L"].bodies
        # branch, both arms, join and unlock are all inside.
        assert len(body.nodes) >= 5

    def test_body_of_block_lookup(self):
        g, structures = structures_of("lock(L); a = 1; unlock(L);")
        (body,) = structures["L"].bodies
        a_block = next(
            b.id for b in g.blocks
            if b.stmts and getattr(b.stmts[0], "target", None) == "a"
        )
        assert structures["L"].body_of_block(a_block) is body
        assert structures["L"].body_of_block(g.entry_id) is None


class TestIllFormed:
    def test_unmatched_lock_no_body(self):
        _, structures = structures_of("lock(L); a = 1;")
        assert len(structures["L"]) == 0

    def test_unmatched_unlock_no_body(self):
        _, structures = structures_of("a = 1; unlock(L);")
        assert len(structures["L"]) == 0

    def test_conditional_unlock_rejected(self):
        # unlock does not post-dominate the lock.
        _, structures = structures_of(
            "lock(L); if (c) { unlock(L); } x = 1;"
        )
        assert len(structures["L"]) == 0

    def test_conditional_lock_rejected(self):
        _, structures = structures_of(
            "if (c) { lock(L); } a = 1; unlock(L);"
        )
        assert len(structures["L"]) == 0

    def test_condition3_removes_spanning_candidate(self):
        # (first lock, second unlock) dominates/postdominates but
        # contains the inner unlock/lock pair — must be rejected; the
        # two tight pairs survive.
        _, structures = structures_of(
            "lock(L); a = 1; unlock(L); b = 2; lock(L); c = 3; unlock(L);"
        )
        bodies = structures["L"].bodies
        assert len(bodies) == 2
        for body in bodies:
            assert len(body.interior_nodes()) >= 1

    def test_double_lock_same_variable(self):
        # lock(L); lock(L) — the outer pair contains the inner ops.
        _, structures = structures_of(
            "lock(L); lock(L); a = 1; unlock(L); unlock(L);"
        )
        bodies = structures["L"].bodies
        # Only the inner pair forms a legal body.
        assert len(bodies) == 1
        g, _ = structures_of("x = 1;")  # silence unused warning

    def test_nested_different_locks_both_found(self):
        _, structures = structures_of(
            "lock(A); lock(B); a = 1; unlock(B); unlock(A);"
        )
        assert len(structures["A"]) == 1
        assert len(structures["B"]) == 1
        body_a = structures["A"].bodies[0]
        body_b = structures["B"].bodies[0]
        assert body_b.nodes < body_a.nodes  # proper nesting


class TestLoopsAndThreads:
    def test_body_inside_loop(self):
        _, structures = structures_of(
            """
            i = 0;
            while (i < 3) {
                lock(L);
                i = i + 1;
                unlock(L);
            }
            """
        )
        assert len(structures["L"]) == 1

    def test_lock_around_loop(self):
        _, structures = structures_of(
            """
            lock(L);
            i = 0;
            while (i < 3) { i = i + 1; }
            unlock(L);
            """
        )
        (body,) = structures["L"].bodies
        assert len(body.nodes) >= 4

    def test_lock_spanning_cobegin(self):
        _, structures = structures_of(
            """
            lock(L);
            cobegin begin a = 1; end begin b = 2; end coend
            unlock(L);
            """
        )
        (body,) = structures["L"].bodies
        # Thread blocks belong to the body.
        assert len(body.nodes) >= 4

    def test_per_thread_bodies(self):
        g, structures = structures_of(
            """
            cobegin
            begin lock(M); a = 1; unlock(M); end
            begin lock(M); b = 2; unlock(M); end
            coend
            """
        )
        assert len(structures["M"]) == 2
