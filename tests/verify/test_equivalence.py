"""Equivalence/refinement checkers."""

import pytest

from repro.errors import AnalysisError
from repro.verify import (
    deterministic_output,
    exhaustive_equivalence,
    exhaustive_refinement,
    sampled_equivalence,
)
from tests.conftest import build


class TestExhaustive:
    def test_identical_programs_equal(self):
        a = build("x = 1; print(x);")
        b = build("x = 1; print(x);")
        res = exhaustive_equivalence(a, b)
        assert res.equal and res.complete

    def test_different_programs_differ(self):
        a = build("print(1);")
        b = build("print(2);")
        res = exhaustive_equivalence(a, b)
        assert not res.equal
        assert res.only_original and res.only_transformed
        assert "only original" in res.explain()

    def test_semantically_equal_syntactically_different(self):
        a = build("x = 2 + 2; print(x);")
        b = build("print(4);")
        res = exhaustive_equivalence(a, b)
        assert res.equal

    def test_refinement_direction(self):
        # b exposes more interleavings (split read/write) but contains
        # every outcome of a.
        a = build(
            """
            x = 0;
            cobegin
            begin x = x + 1; end
            begin x = 5; end
            coend
            print(x);
            """
        )
        b = build(
            """
            x = 0;
            cobegin
            begin t = x; x = t + 1; end
            begin x = 5; end
            coend
            print(x);
            """
        )
        res = exhaustive_refinement(a, b)
        assert res.equal  # subset holds
        strict = exhaustive_equivalence(a, b)
        assert not strict.equal  # refinement is strict here


class TestSampled:
    def test_identical_sampled(self):
        a = build("cobegin begin print(1); end begin print(2); end coend")
        b = build("cobegin begin print(1); end begin print(2); end coend")
        res = sampled_equivalence(a, b, seeds=range(40))
        assert res.equal

    def test_detects_gross_difference(self):
        a = build("print(1);")
        b = build("print(2);")
        res = sampled_equivalence(a, b, seeds=range(4))
        assert not res.equal


class TestDeterministicOutput:
    def test_deterministic_program(self):
        p = build(
            """
            x = 0;
            cobegin
            begin lock(L); x = x + 1; unlock(L); end
            begin lock(L); x = x + 2; unlock(L); end
            coend
            print(x);
            """
        )
        assert deterministic_output(p) == (("print", (3,)),)

    def test_nondeterministic_raises(self):
        p = build(
            "cobegin begin x = 1; end begin x = 2; end coend print(x);"
        )
        with pytest.raises(AnalysisError):
            deterministic_output(p, seeds=range(40))
