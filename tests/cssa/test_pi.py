"""π-term placement (CSSA)."""

from repro.cssa import build_cssa
from repro.ir.stmts import Phi, Pi, SAssign, SBranch, SPrint
from repro.ir.structured import iter_statements
from tests.conftest import build


def pis(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, Pi)]


class TestPlacement:
    def test_figure2_pi_count(self, figure2):
        form = build_cssa(figure2)
        assert len(form.pis) == 5  # ta1, ta11, ta(x), tb0, ta4 — Fig. 3a

    def test_pi_before_each_conflicting_use(self, figure2):
        build_cssa(figure2)
        # T1's use of b gets π(b0, b1): control + one conflict arg.
        tb = next(p for p in pis(figure2) if p.var_name == "b")
        assert tb.control.ssa_name == "b0"
        assert [v.ssa_name for v in tb.conflicts] == ["b1"]

    def test_conflict_args_are_real_defs_only(self, figure2):
        build_cssa(figure2)
        # T1's π for a lists a1 and a2 but not the φ a3 (Fig. 3a).
        ta = next(
            p for p in pis(figure2)
            if p.var_name == "a" and len(p.conflicts) == 2
        )
        names = {v.ssa_name for v in ta.conflicts}
        assert names == {"a1", "a2"}
        assert all(isinstance(v.def_site, SAssign) for v in ta.conflicts)

    def test_use_rewritten_to_temp(self, figure2):
        build_cssa(figure2)
        pi = pis(figure2)[0]
        body = pi.parent
        idx = body.index(pi)
        consumer = body.items[idx + 1]
        assert any(u.name == pi.target for u in consumer.uses())

    def test_no_pi_without_concurrency(self):
        program = build("a = 1; b = a; print(b);")
        form = build_cssa(program)
        assert form.pis == []

    def test_no_pi_for_unshared_vars(self):
        program = build(
            "cobegin begin a = 1; a = a + 1; end begin b = 2; end coend"
        )
        form = build_cssa(program)
        assert form.pis == []

    def test_pi_on_branch_condition(self):
        program = build(
            """
            v = 0;
            cobegin
            begin if (v > 0) { x = 1; } end
            begin v = 5; end
            coend
            print(x);
            """
        )
        form = build_cssa(program)
        assert len(form.pis) == 1
        pi = form.pis[0]
        # The π lands before the if region in the thread body.
        body = pi.parent
        from repro.ir.structured import IfRegion

        idx = body.index(pi)
        assert isinstance(body.items[idx + 1], IfRegion)

    def test_pi_on_loop_condition_goes_to_header(self):
        program = build(
            """
            v = 0;
            cobegin
            begin
                private i = 0;
                while (i < v) { i = i + 1; }
            end
            begin v = 3; end
            coend
            """
        )
        form = build_cssa(program)
        v_pis = [p for p in form.pis if p.var_name == "v"]
        assert len(v_pis) == 1
        from repro.ir.structured import WhileRegion

        assert isinstance(v_pis[0].parent, WhileRegion)

    def test_one_pi_per_stmt_per_var(self):
        program = build(
            """
            v = 0;
            cobegin
            begin x = v + v * v; end
            begin v = 1; end
            coend
            print(x);
            """
        )
        form = build_cssa(program)
        assert len(form.pis) == 1
        x_assign = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "x"
        )
        temps = {u.name for u in x_assign.uses()}
        assert temps == {form.pis[0].target}

    def test_phi_args_not_pi_protected(self, figure2):
        build_cssa(figure2)
        for stmt, _ in iter_statements(figure2):
            if isinstance(stmt, Phi):
                for arg in stmt.args:
                    assert not isinstance(arg.var.def_site, Pi)

    def test_temp_naming_mimics_paper(self, figure2):
        form = build_cssa(figure2)
        names = {p.target for p in form.pis}
        assert "ta1" in names  # π with control argument a1
        assert "tb0" in names

    def test_pi_uses_cover_control_and_conflicts(self, figure2):
        build_cssa(figure2)
        for pi in pis(figure2):
            uses = list(pi.uses())
            assert uses[0] is pi.control
            assert len(uses) == 1 + len(pi.conflicts)
