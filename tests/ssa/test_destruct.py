"""SSA destruction."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.stmts import Phi, Pi, SAssign
from repro.ir.structured import iter_statements
from repro.ssa.destruct import destruct_ssa
from repro.verify import deterministic_output
from repro.vm import run_random
from tests.conftest import build, FIGURE2_SOURCE


class TestDestruct:
    def test_phis_and_pis_removed(self, figure2):
        build_cssame(figure2, prune=False)
        destruct_ssa(figure2)
        for stmt, _ in iter_statements(figure2):
            assert not isinstance(stmt, (Phi, Pi))

    def test_pi_becomes_copy(self, figure2):
        build_cssame(figure2, prune=False)
        n_pis = sum(
            1 for s, _ in iter_statements(figure2) if isinstance(s, Pi)
        )
        destruct_ssa(figure2)
        text = format_ir(figure2)
        # Each π became a plain copy "tXY = base;".
        assert n_pis > 0
        assert text.count("= a;") + text.count("= b;") >= n_pis

    def test_versions_cleared(self, figure2):
        build_cssame(figure2)
        destruct_ssa(figure2)
        for stmt, _ in iter_statements(figure2):
            if isinstance(stmt, SAssign):
                assert stmt.version is None
            for use in stmt.uses():
                assert use.version is None
                assert use.def_site is None

    def test_destructed_program_reanalyzable(self, figure2):
        build_cssame(figure2)
        destruct_ssa(figure2)
        form = build_cssame(figure2)  # must not raise
        assert form.graph is not None

    def test_destruction_preserves_output(self):
        # Deterministic (fully locked) program: output must be identical
        # before CSSAME and after destruct.
        src = """
        x = 0;
        cobegin
        begin lock(L); x = x + 1; unlock(L); end
        begin lock(L); x = x + 2; unlock(L); end
        coend
        print(x);
        """
        plain = build(src)
        expected = deterministic_output(plain)
        program = build(src)
        build_cssame(program)
        destruct_ssa(program)
        assert deterministic_output(program) == expected
