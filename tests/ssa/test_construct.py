"""SSA construction: φ placement, renaming, coend trimming."""

import pytest

from repro.cfg.builder import build_flow_graph
from repro.errors import SSAError
from repro.ir.stmts import Phi, SAssign
from repro.ir.structured import iter_statements
from repro.ssa.construct import build_ssa
from repro.ssa.names import EntryDef
from tests.conftest import build


def ssa(source):
    program = build(source)
    graph = build_flow_graph(program)
    ctx = build_ssa(program, graph)
    return program, graph, ctx


def assigns(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, SAssign)]


def phis(program):
    return [s for s, _ in iter_statements(program) if isinstance(s, Phi)]


class TestRenaming:
    def test_versions_start_at_zero(self):
        program, _, _ = ssa("a = 1; a = 2;")
        assert [s.version for s in assigns(program)] == [0, 1]

    def test_uses_stamped_with_reaching_version(self):
        program, _, _ = ssa("a = 1; b = a; a = 2; c = a;")
        b_assign = next(s for s in assigns(program) if s.target == "b")
        c_assign = next(s for s in assigns(program) if s.target == "c")
        assert next(b_assign.uses()).version == 0
        assert next(c_assign.uses()).version == 1

    def test_chain_links_point_to_defs(self):
        program, _, _ = ssa("a = 1; b = a;")
        a_def = next(s for s in assigns(program) if s.target == "a")
        b_assign = next(s for s in assigns(program) if s.target == "b")
        assert next(b_assign.uses()).def_site is a_def

    def test_use_before_def_chains_to_entry(self):
        program, _, ctx = ssa("b = a;")
        use = next(assigns(program)[0].uses())
        assert isinstance(use.def_site, EntryDef)
        assert use.version is None

    def test_single_assignment_property(self):
        program, _, _ = ssa("a = 1; if (a) { a = 2; } a = a + 1;")
        seen = set()
        for s, _ in iter_statements(program):
            name = s.def_name()
            if name is not None:
                key = (name, s.def_version())
                assert key not in seen
                seen.add(key)


class TestPhiPlacement:
    def test_if_join_phi(self):
        program, _, _ = ssa("a = 1; if (c) { a = 2; } print(a);")
        (phi,) = phis(program)
        assert phi.target == "a"
        assert len(phi.args) == 2
        versions = {arg.var.version for arg in phi.args}
        assert versions == {0, 1}

    def test_no_phi_without_branch_defs(self):
        program, _, _ = ssa("a = 1; if (c) { b = 2; } print(a);")
        assert [p.target for p in phis(program)] == ["b"]

    def test_loop_header_phi(self):
        program, _, _ = ssa("i = 0; while (i < 3) { i = i + 1; } print(i);")
        (phi,) = phis(program)
        assert phi.target == "i"
        region = program.body.items[1]
        assert phi in region.header_phis

    def test_phi_args_in_pred_order(self):
        program, graph, _ = ssa("a = 1; if (c) { a = 2; } else { a = 3; } print(a);")
        (phi,) = phis(program)
        block = graph.block_of(phi)
        assert [arg.pred_block for arg in phi.args] == block.preds

    def test_nested_if_phis(self):
        program, _, _ = ssa(
            "a = 0; if (c) { if (d) { a = 1; } } print(a);"
        )
        assert len(phis(program)) == 2  # inner join + outer join

    def test_phi_placed_in_structured_tree(self):
        program, _, _ = ssa("a = 1; if (c) { a = 2; } print(a);")
        (phi,) = phis(program)
        assert phi.parent is program.body
        # φ sits between the if region and the print.
        index = program.body.index(phi)
        from repro.ir.structured import IfRegion

        assert isinstance(program.body.items[index - 1], IfRegion)


class TestCoendTrimming:
    def test_two_defining_threads_keep_phi(self):
        program, _, _ = ssa(
            "cobegin begin a = 1; end begin a = 2; end coend print(a);"
        )
        (phi,) = phis(program)
        assert len(phi.args) == 2
        assert {arg.thread_index for arg in phi.args} == {0, 1}

    def test_single_defining_thread_no_phi(self):
        program, _, _ = ssa(
            "cobegin begin a = 1; end begin b = 2; end coend print(a);"
        )
        assert phis(program) == []
        # print(a) chains straight to the defining thread's assignment.
        prints = [s for s, _ in iter_statements(program) if s.to_str().startswith("print")]
        use = next(prints[0].uses())
        assert isinstance(use.def_site, SAssign)
        assert use.def_site.target == "a"

    def test_nondefining_thread_arg_dropped(self):
        program, _, _ = ssa(
            """
            a = 0;
            cobegin
            begin a = 1; end
            begin a = 2; end
            begin b = 3; end
            coend
            print(a);
            """
        )
        (phi,) = [p for p in phis(program) if p.target == "a"]
        assert len(phi.args) == 2  # the b-thread contributed nothing

    def test_conditional_def_in_thread_counts(self):
        program, _, _ = ssa(
            """
            a = 0;
            cobegin
            begin if (c) { a = 1; } end
            begin a = 2; end
            coend
            print(a);
            """
        )
        coend_phis = [p for p in phis(program) if p.target == "a"]
        # inner if-join φ + coend φ
        assert len(coend_phis) == 2

    def test_nested_cobegin_trimming(self):
        program, _, _ = ssa(
            """
            cobegin
            begin
                cobegin begin a = 1; end begin a = 2; end coend
            end
            begin b = 3; end
            coend
            print(a);
            """
        )
        a_phis = [p for p in phis(program) if p.target == "a"]
        # inner coend merges the two defs; outer coend is superfluous
        # (only one outer thread defines a).
        assert len(a_phis) == 1
        assert len(a_phis[0].args) == 2

    def test_figure2_names(self, figure2):
        graph = build_flow_graph(figure2)
        build_ssa(figure2, graph)
        names = {
            f"{s.target}{s.version}"
            for s, _ in iter_statements(figure2)
            if isinstance(s, SAssign)
        }
        assert names == {"a0", "b0", "a1", "b1", "a2", "x0", "a4", "y0"}
        phi_names = {f"{p.target}{p.version}" for p in phis(figure2)}
        assert phi_names == {"a3", "a5"}


class TestConstructionGuards:
    def test_rejects_ssa_form_input(self, figure2):
        graph = build_flow_graph(figure2)
        build_ssa(figure2, graph)
        graph2 = build_flow_graph(figure2)
        with pytest.raises(SSAError):
            build_ssa(figure2, graph2)
