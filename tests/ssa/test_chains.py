"""FUD chains and the reverse use map."""

from repro.cfg.builder import build_flow_graph
from repro.ir.stmts import Phi, SAssign
from repro.ir.structured import iter_statements
from repro.ssa.chains import build_use_map, defs_in_program, iter_uses
from repro.ssa.construct import build_ssa
from tests.conftest import build


def ssa(source):
    program = build(source)
    build_ssa(program, build_flow_graph(program))
    return program


class TestUseMap:
    def test_uses_of_def(self):
        program = ssa("a = 1; b = a; c = a + a;")
        usemap = build_use_map(program)
        a_def = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "a"
        )
        assert len(usemap.uses_of(a_def)) == 3

    def test_dead_def(self):
        program = ssa("a = 1; b = 2; print(b);")
        usemap = build_use_map(program)
        a_def = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "a"
        )
        assert usemap.is_dead(a_def)

    def test_phi_args_are_uses(self):
        program = ssa("a = 1; if (c) { a = 2; } print(a);")
        usemap = build_use_map(program)
        defs = [
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "a"
        ]
        for d in defs:
            holders = usemap.holders_of(d)
            assert any(isinstance(h, Phi) for h in holders)

    def test_iter_uses_includes_branch_conditions(self):
        program = ssa("a = 1; if (a > 0) { b = 2; }")
        holders = {type(h).__name__ for _u, h in iter_uses(program)}
        assert "SBranch" in holders

    def test_defs_in_program(self):
        program = ssa("a = 1; if (c) { a = 2; } print(a);")
        defs = defs_in_program(program)
        kinds = sorted(type(d).__name__ for d in defs)
        assert kinds == ["Phi", "SAssign", "SAssign"]
