"""Lock-Independent Code Motion."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.structured import iter_statements
from repro.opt import lock_independent_code_motion
from repro.opt.pipeline import optimize
from tests.conftest import build


def licm(source):
    program = build(source)
    build_cssame(program)
    stats = lock_independent_code_motion(program)
    return program, stats


def section_lines(text):
    """Lines between lock( and unlock( in the listing, per section."""
    sections = []
    current = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("lock("):
            current = []
        elif stripped.startswith("unlock("):
            sections.append(current or [])
            current = None
        elif current is not None:
            current.append(stripped)
    return sections


class TestHoistSink:
    def test_private_work_leaves_section(self):
        program, stats = licm(
            """
            acc = 0;
            cobegin
            begin
                private w = 1;
                lock(M);
                w = w + 1;
                acc = acc + w;
                out = acc + 1;
                unlock(M);
            end
            begin
                lock(M);
                acc = acc + 2;
                unlock(M);
            end
            coend
            print(acc, out);
            """
        )
        assert stats.hoisted >= 1  # w = w + 1 hoists
        text = format_ir(program)
        (t0_section, _t1) = section_lines(text)
        # Only the shared updates stay inside.
        assert all("acc" in line for line in t0_section)

    def test_out_is_sunk_not_lost(self):
        program, stats = licm(
            """
            acc = 0;
            cobegin
            begin lock(M); acc = acc + 1; out = 5; unlock(M); end
            begin lock(M); acc = acc + 2; unlock(M); end
            coend
            print(acc, out);
            """
        )
        assert stats.total_moved == 1
        text = format_ir(program)
        sections = section_lines(text)
        assert not any("out0" in line for sec in sections for line in sec)
        assert "out0 = 5;" in text

    def test_shared_update_stays(self):
        program, stats = licm(
            """
            acc = 0;
            cobegin
            begin lock(M); acc = acc + 1; unlock(M); end
            begin lock(M); acc = acc + 2; unlock(M); end
            coend
            print(acc);
            """
        )
        assert stats.total_moved == 0

    def test_flow_dependence_blocks_hoist(self):
        # w depends on the in-section read of acc: cannot hoist.
        program, stats = licm(
            """
            acc = 0;
            cobegin
            begin lock(M); w = acc + 1; acc = w; unlock(M); end
            begin lock(M); acc = acc + 2; unlock(M); end
            coend
            print(acc);
            """
        )
        assert stats.hoisted == 0

    def test_anti_dependence_blocks_hoist(self):
        # y = w reads w before w = 9 writes it; hoisting w = 9 above
        # the read would change y (the A.5 soundness fix).
        program, stats = licm(
            """
            acc = 0; w = 1;
            cobegin
            begin lock(M); y = w + acc; w = 9; unlock(M); end
            begin lock(M); acc = acc + 1; unlock(M); end
            coend
            print(y, w);
            """
        )
        text = format_ir(program)
        # w = 9 may legally *sink* (y already read the old w), but it
        # must never hoist above the read of w.
        lines = text.splitlines()
        y_line = next(i for i, l in enumerate(lines) if "y0 =" in l)
        w9_line = next(i for i, l in enumerate(lines) if "w1 = 9;" in l)
        assert w9_line > y_line

    def test_call_not_moved(self):
        program, stats = licm(
            """
            cobegin
            begin lock(M); x = g(1); unlock(M); end
            begin lock(M); y = 2; unlock(M); end
            coend
            print(x, y);
            """
        )
        text = format_ir(program)
        sections = section_lines(text)
        assert any("g(1)" in line for line in sections[0])


class TestRegionMotion:
    def test_whole_loop_hoisted(self):
        program, stats = licm(
            """
            acc = 0;
            cobegin
            A: begin
                private w = 0;
                private i = 0;
                lock(M);
                while (i < 3) { w = w + i; i = i + 1; }
                acc = acc + w;
                unlock(M);
            end
            B: begin lock(M); acc = acc + 10; unlock(M); end
            coend
            print(acc);
            """
        )
        assert stats.hoisted >= 1
        text = format_ir(program)
        sections = section_lines(text)
        assert not any("while" in line for line in sections[0])
        assert "while" in text  # the loop survives, outside the lock

    def test_loop_touching_shared_stays(self):
        program, stats = licm(
            """
            acc = 0;
            cobegin
            A: begin
                private i = 0;
                lock(M);
                while (i < 3) { acc = acc + i; i = i + 1; }
                unlock(M);
            end
            B: begin lock(M); acc = acc + 10; unlock(M); end
            coend
            print(acc);
            """
        )
        text = format_ir(program)
        sections = section_lines(text)
        assert any("while" in line for line in sections[0])

    def test_private_if_region_sunk_or_hoisted(self):
        program, stats = licm(
            """
            v = 0;
            cobegin
            A: begin
                private p = 1;
                lock(M);
                v = v + 1;
                if (p > 0) { p = p * 2; }
                unlock(M);
            end
            B: begin lock(M); v = v + 2; unlock(M); end
            coend
            print(v);
            """
        )
        assert stats.total_moved >= 1
        text = format_ir(program)
        sections = section_lines(text)
        assert not any("if (" in line for line in sections[0])

    def test_region_with_nested_cobegin_stays(self):
        program, stats = licm(
            """
            v = 0;
            cobegin
            A: begin
                private p = 1;
                lock(M);
                if (p > 0) {
                    cobegin begin p = 2; end coend
                }
                v = v + 1;
                unlock(M);
            end
            B: begin lock(M); v = v + 2; unlock(M); end
            coend
            print(v);
            """
        )
        text = format_ir(program)
        sections = section_lines(text)
        assert any("if (" in line for line in sections[0])


class TestEmptyBodies:
    def test_emptied_body_lock_removed(self):
        program, stats = licm(
            """
            cobegin
            begin lock(M); x = 5; unlock(M); end
            begin lock(M); y = 6; unlock(M); end
            coend
            print(x, y);
            """
        )
        assert stats.bodies_emptied == 2
        text = format_ir(program)
        assert "lock(" not in text
        assert "x0 = 5;" in text and "y0 = 6;" in text

    def test_nonempty_body_keeps_lock(self, figure2_source):
        report = optimize(build(figure2_source), fold_output_uses=False)
        text = report.listings["licm"]
        assert text.count("unlock(L);") == 2
        assert text.count("lock(L);") - text.count("unlock(L);") == 2


class TestFigure5b:
    def test_paper_motion(self, figure2_source):
        report = optimize(build(figure2_source), fold_output_uses=False)
        text = report.listings["licm"]
        sections = section_lines(text)
        # x0 = 13 and y0 = a4 are outside both mutex bodies...
        for section in sections:
            assert not any("x0" in line for line in section)
            assert not any("y0 = a4" in line for line in section)
        # ...but still present in the program.
        assert "x0 = 13;" in text
        assert "y0 = a4;" in text
        # b1 = 8 must stay inside its body (T1 reads b through tb0).
        assert any("b1 = 8;" in line for line in sections[0])
        assert report.licm.total_moved >= 2
