"""Structural simplification pass."""

from repro.ir.printer import format_ir
from repro.opt.simplify import simplify_structure
from tests.conftest import build


class TestSimplify:
    def test_skip_removed(self):
        program = build("skip; x = 1; skip;")
        assert simplify_structure(program) == 2
        assert "skip" not in format_ir(program)

    def test_empty_if_removed(self):
        program = build("if (a) { skip; }")
        simplify_structure(program)
        assert format_ir(program) == ""

    def test_empty_if_with_call_condition_kept(self):
        program = build("if (g(1)) { skip; }")
        simplify_structure(program)
        assert "if (g(1))" in format_ir(program)

    def test_nonempty_if_kept(self):
        program = build("if (a) { x = 1; }")
        assert simplify_structure(program) == 0

    def test_single_thread_cobegin_spliced(self):
        program = build("cobegin begin x = 1; end coend")
        simplify_structure(program)
        assert format_ir(program) == "x = 1;\n"

    def test_multi_thread_cobegin_kept(self):
        program = build("cobegin begin x = 1; end begin y = 2; end coend")
        assert simplify_structure(program) == 0

    def test_false_while_removed(self):
        program = build("while (0) { x = 1; }")
        simplify_structure(program)
        assert format_ir(program) == ""

    def test_true_while_kept(self):
        program = build("while (1) { x = 1; }")
        assert simplify_structure(program) == 0

    def test_fixpoint_cascade(self):
        # Emptying the inner if empties the outer if.
        program = build("if (a) { if (b) { skip; } }")
        simplify_structure(program)
        assert format_ir(program) == ""
