"""The full optimization pipeline."""

import pytest

from repro.api import optimize_source
from repro.ir.structured import count_statements
from repro.opt.pipeline import optimize
from repro.verify import exhaustive_equivalence
from tests.conftest import FIGURE2_SOURCE, build


class TestDriver:
    def test_all_listings_present(self):
        report = optimize_source(FIGURE2_SOURCE)
        for phase in ("cssame", "constprop", "pdce", "licm", "final"):
            assert phase in report.listings

    def test_cssa_mode_listing_name(self):
        report = optimize_source(FIGURE2_SOURCE, use_mutex=False)
        assert "cssa" in report.listings

    def test_pass_subset(self):
        report = optimize_source(FIGURE2_SOURCE, passes=("constprop",))
        assert report.constprop is not None
        assert report.pdce is None and report.licm is None

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            optimize(build("x = 1;"), passes=("nope",))

    def test_baseline_captured(self):
        report = optimize_source(FIGURE2_SOURCE)
        assert report.baseline is not None
        assert "pi(" in report.listings["cssame"]

    def test_statement_count_shrinks(self):
        report = optimize_source(FIGURE2_SOURCE)
        assert report.statement_count() < count_statements(report.baseline)


class TestMutexBenefit:
    def test_cssame_beats_cssa(self):
        cssa = optimize_source(FIGURE2_SOURCE, use_mutex=False)
        cssame = optimize_source(FIGURE2_SOURCE, use_mutex=True)
        assert cssame.statement_count() < cssa.statement_count()
        assert len(cssame.constprop.constants) > len(cssa.constprop.constants)

    def test_semantics_preserved_both_modes(self):
        for use_mutex in (False, True):
            report = optimize_source(FIGURE2_SOURCE, use_mutex=use_mutex)
            res = exhaustive_equivalence(report.baseline, report.program)
            assert res.complete
            assert res.equal, res.explain()

    def test_figure_pipeline_order(self):
        report = optimize_source(FIGURE2_SOURCE, fold_output_uses=False)
        # Fig 4b facts visible after constprop:
        assert "x0 = 13;" in report.listings["constprop"]
        # Fig 5a facts after PDCE:
        assert "a1 = 5;" not in report.listings["pdce"]
        assert "b1 = 8;" in report.listings["pdce"]
        # Fig 5b: x0 = 13 escapes the mutex body after LICM.
        licm_text = report.listings["licm"]
        t0 = licm_text.split("T1:")[0]
        lock_pos = t0.index("lock(L);")
        unlock_pos = t0.index("unlock(L);")
        x_pos = t0.index("x0 = 13;")
        assert not (lock_pos < x_pos < unlock_pos)
