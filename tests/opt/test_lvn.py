"""Local value numbering on CSSAME."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.stmts import SAssign
from repro.ir.structured import iter_statements
from repro.opt import local_value_numbering, optimize
from repro.verify import exhaustive_equivalence
from tests.conftest import build


def lvn(source):
    program = build(source)
    build_cssame(program)
    stats = local_value_numbering(program)
    return program, stats


def assign(program, name, version=None):
    return next(
        s for s, _ in iter_statements(program)
        if isinstance(s, SAssign) and s.target == name
        and (version is None or s.version == version)
    )


class TestBasicReuse:
    def test_redundant_expression_reused(self):
        program, stats = lvn("x = a + b; y = a + b; print(x, y);")
        assert stats.expressions_replaced == 1
        y = assign(program, "y")
        assert y.to_str() == "y0 = x0;"

    def test_subexpression_reused(self):
        program, stats = lvn("x = a + b; y = (a + b) * 2; print(x, y);")
        assert stats.expressions_replaced == 1
        assert "y0 = x0 * 2;" in format_ir(program)

    def test_commutativity(self):
        program, stats = lvn("x = a + b; y = b + a; print(x, y);")
        assert stats.expressions_replaced == 1

    def test_non_commutative_not_matched(self):
        program, stats = lvn("x = a - b; y = b - a; print(x, y);")
        assert stats.expressions_replaced == 0

    def test_reuse_in_print_and_branch(self):
        program, stats = lvn(
            "x = a * a; if (a * a > 2) { print(a * a); } print(x);"
        )
        # the branch condition and print argument are in the same block
        # as the def only if no block split intervenes; the branch use is.
        assert stats.expressions_replaced >= 1

    def test_calls_never_reused(self):
        program, stats = lvn("x = g(1) + 2; y = g(1) + 2; print(x, y);")
        assert stats.expressions_replaced == 0


class TestSafetyConditions:
    def test_base_redefinition_blocks_reuse(self):
        # After x is reassigned, x no longer holds a+b at runtime.
        program, stats = lvn(
            "x = a + b; x = 0; y = a + b; print(x, y);"
        )
        assert stats.expressions_replaced == 0

    def test_ssa_rename_blocks_stale_match(self):
        # a changes between the two computations: different SSA names,
        # no match.
        program, stats = lvn("x = a + b; a = 9; y = a + b; print(x, y);")
        assert stats.expressions_replaced == 0

    def test_no_reuse_across_blocks(self):
        program, stats = lvn(
            "x = a + b; if (c) { y = a + b; } print(x, y);"
        )
        assert stats.expressions_replaced == 0  # block-local only

    def test_no_reuse_across_lock_boundary(self):
        program, stats = lvn(
            "x = a + b; lock(L); y = a + b; unlock(L); print(x, y);"
        )
        assert stats.expressions_replaced == 0

    def test_shared_source_not_reused(self):
        # x is concurrently written: reading it again is a new racy
        # read — must recompute instead.
        program, stats = lvn(
            """
            a = 1; b = 2;
            cobegin
            begin x = a + b; y = a + b; print(y); end
            begin x = 99; end
            coend
            print(x);
            """
        )
        y = assign(program, "y")
        assert "x" not in {u.name for u in y.uses()}

    def test_private_source_reused_in_thread(self):
        program, stats = lvn(
            """
            a = 1; b = 2;
            cobegin
            begin private t = 0; t = a + b; u = a + b; print(u); end
            begin c = 5; end
            coend
            """
        )
        assert stats.expressions_replaced == 1


class TestPipelineIntegration:
    def test_lvn_pass_in_pipeline(self):
        program = build("x = g(0); y = x * x + 1; z = x * x + 1; print(y, z);")
        report = optimize(program, passes=("constprop", "lvn", "pdce"))
        assert report.lvn is not None
        assert report.lvn.expressions_replaced == 1
        assert "z0 = y0;" in report.listings["lvn"]

    def test_lvn_preserves_semantics(self):
        src = """
        a = 3; b = 4;
        cobegin
        begin lock(L); x = a * b; y = a * b + 1; unlock(L); end
        begin lock(L); a = a + 1; unlock(L); end
        coend
        print(x, y);
        """
        program = build(src)
        report = optimize(program, passes=("constprop", "lvn", "pdce", "licm"))
        res = exhaustive_equivalence(report.baseline, program)
        assert res.complete
        assert res.equal, res.explain()

    def test_idempotent(self):
        program, _ = lvn("x = a + b; y = a + b; print(x, y);")
        before = format_ir(program)
        local_value_numbering(program)
        assert format_ir(program) == before
