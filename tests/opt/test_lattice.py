"""Constant lattice unit tests + meet properties."""

from hypothesis import given, strategies as st

from repro.opt.lattice import BOTTOM, TOP, ConstValue, meet, meet_all


def test_top_is_identity():
    assert meet(TOP, BOTTOM) is BOTTOM
    assert meet(BOTTOM, TOP) is BOTTOM
    assert meet(TOP, ConstValue(3)) == ConstValue(3)
    assert meet(ConstValue(3), TOP) == ConstValue(3)
    assert meet(TOP, TOP) is TOP


def test_bottom_absorbs():
    assert meet(BOTTOM, ConstValue(1)) is BOTTOM
    assert meet(ConstValue(1), BOTTOM) is BOTTOM
    assert meet(BOTTOM, BOTTOM) is BOTTOM


def test_equal_constants_stay():
    assert meet(ConstValue(4), ConstValue(4)) == ConstValue(4)


def test_unequal_constants_bottom():
    assert meet(ConstValue(4), ConstValue(5)) is BOTTOM


def test_meet_all():
    assert meet_all([]) is TOP
    assert meet_all([ConstValue(2), TOP, ConstValue(2)]) == ConstValue(2)
    assert meet_all([ConstValue(2), ConstValue(3)]) is BOTTOM


_values = st.one_of(
    st.just(TOP),
    st.just(BOTTOM),
    st.integers(-5, 5).map(ConstValue),
)


@given(_values, _values)
def test_meet_commutative(a, b):
    assert meet(a, b) == meet(b, a)


@given(_values, _values, _values)
def test_meet_associative(a, b, c):
    assert meet(meet(a, b), c) == meet(a, meet(b, c))


@given(_values)
def test_meet_idempotent(a):
    assert meet(a, a) == a
