"""Concurrent Sparse Conditional Constant propagation."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.stmts import Phi, Pi, SAssign
from repro.ir.structured import IfRegion, WhileRegion, iter_statements
from repro.opt import concurrent_constant_propagation
from tests.conftest import build


def prop(source, prune=True):
    program = build(source)
    form = build_cssame(program, prune=prune)
    stats = concurrent_constant_propagation(program, form.graph)
    return program, stats


class TestSequential:
    def test_straightline(self):
        program, stats = prop("a = 2; b = a + 3; print(b);")
        text = format_ir(program)
        assert "b0 = 5;" in text
        assert stats.constants["b0"] == 5

    def test_conditional_constant_branch_folds(self):
        program, stats = prop("a = 5; if (a > 1) { b = 1; } else { b = 2; } print(b);")
        assert stats.branches_folded == 1
        text = format_ir(program)
        assert "else" not in text
        assert "b0 = 1;" in text
        # The join φ collapsed to the taken arm.
        assert not any(isinstance(s, Phi) for s, _ in iter_statements(program))

    def test_unknown_branch_kept(self):
        program, stats = prop("c = f(); if (c) { b = 1; } else { b = 2; } print(b);")
        assert stats.branches_folded == 0
        assert any(isinstance(i, IfRegion) for i in program.body.items)

    def test_phi_meet_to_bottom(self):
        program, _ = prop("c = f(); if (c) { b = 1; } else { b = 2; } print(b);")
        phi = next(s for s, _ in iter_statements(program) if isinstance(s, Phi))
        assert len(phi.args) == 2

    def test_phi_same_constant_both_arms(self):
        program, stats = prop("c = f(); if (c) { b = 7; } else { b = 7; } print(b);")
        # φ value is Const(7) — materialized (sequential program: safe).
        text = format_ir(program)
        assert "= 7;" in text
        assert "phi" not in text

    def test_false_loop_removed(self):
        program, stats = prop("i = 9; while (i < 5) { i = i + 1; } print(i);")
        assert stats.loops_removed == 1
        assert not any(isinstance(i, WhileRegion) for i in program.body.items)
        assert "print(9);" in format_ir(program)

    def test_running_loop_not_folded(self):
        program, stats = prop("i = 0; while (i < 3) { i = i + 1; } print(i);")
        assert stats.loops_removed == 0
        assert any(isinstance(i, WhileRegion) for i in program.body.items)

    def test_division_by_zero_not_folded(self):
        program, _ = prop("a = 0; b = 1 / a; print(b);")
        text = format_ir(program)
        assert "1 / 0" in text  # left for runtime

    def test_call_argument_folded(self):
        program, _ = prop("a = 3; f(a + 1);")
        assert "f(4);" in format_ir(program)


class TestConcurrent:
    def test_figure4a_cssa_no_propagation_in_t0(self, figure2_source):
        program, stats = prop(figure2_source, prune=False)
        text = format_ir(program)
        # The π terms keep everything unknown: b1 = ta1 + 3 stays.
        assert "b1 = ta1 + 3;" in text
        assert "x0 = ta3;" in text

    def test_figure4b_cssame_propagates(self, figure2_source):
        program, stats = prop(figure2_source, prune=True)
        text = format_ir(program)
        for fragment in ("a1 = 5;", "b1 = 8;", "a2 = 13;", "a3 = 13;", "x0 = 13;"):
            assert fragment in text, fragment
        assert stats.branches_folded == 1  # if (b1 > 4) folded

    def test_pi_meet_includes_conflict_args(self):
        program, _ = prop(
            """
            v = 1;
            cobegin
            begin x = v; end
            begin v = 1; end
            coend
            print(x);
            """
        )
        # Both reaching defs give 1 → x is 1 despite the race.
        assert "x0 = 1;" in format_ir(program)

    def test_pi_meet_conflicting_values_bottom(self):
        program, _ = prop(
            """
            v = 1;
            cobegin
            begin x = v; end
            begin v = 2; end
            coend
            print(x);
            """
        )
        text = format_ir(program)
        assert "x0 = 1;" not in text
        assert "x0 = 2;" not in text

    def test_unsafe_phi_not_materialized(self):
        # The coend φ of a racy variable must not become a real store.
        program, _ = prop(
            """
            v = 1;
            cobegin
            begin v = 5; end
            begin x = v; end
            coend
            print(v);
            """
        )
        for stmt, _ctx in iter_statements(program):
            if isinstance(stmt, SAssign) and stmt.target == "v":
                # only the two original assignments; no materialized φ
                assert stmt.version in (0, 1)

    def test_mutex_protected_phi_materialized(self, figure2_source):
        # Fig. 4b: a3 = 13 replaces the φ inside the mutex body.
        program, _ = prop(figure2_source, prune=True)
        a3 = [
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "a" and s.version == 3
        ]
        assert len(a3) == 1


class TestFixpointRegressions:
    def test_coend_phi_reevaluated_on_second_thread_edge(self):
        """Regression: a coend φ must be re-evaluated when the second
        thread's exit edge becomes executable.

        Shape: T0 writes a constant; T1's write is unknown.  If the φ
        is frozen after only T0's edge was processed it wrongly reads
        Const; the meet over both threads is ⊥.
        """
        program, _ = prop(
            """
            v = 0;
            cobegin
            begin lock(L); v = 8; unlock(L); end
            begin lock(L); v = g(); unlock(L); end
            coend
            print(v);
            """
        )
        text = format_ir(program)
        assert "print(8);" not in text
        assert "phi(" in text  # the coend merge survives


    def test_upward_exposed_phi_not_materialized_even_under_lock(self):
        """Regression: a constant φ whose point is upward-exposed from
        its mutex body must not become a store, even though all parties
        hold the same lock — the base may currently hold a concurrent
        thread's value, and the store would clobber it.

        Shape: T0's φ merges s along paths that never write s (the
        writing arm is conditioned on an opaque value, so constprop
        cannot fold it away but the φ stays upward-exposed... here we
        use a shape where the φ value IS constant); T1 really writes s
        under the same lock.  The program must always print -11.
        """
        source = """
        s = 9;
        cobegin
        begin
            lock(L);
            if (g() > 0) { t = s; }
            unlock(L);
        end
        begin
            lock(L);
            s = -11;
            unlock(L);
        end
        coend
        print(s);
        """
        from repro.vm.explore import explore

        program, _ = prop(source)
        # T0 never writes s, so the final print is always -11; a
        # materialized `s = 9` store in T0 would make 9 printable.
        finals = {o[-1][1][0] for o in explore(program).outcomes}
        assert finals == {-11}


class TestChainConsistency:
    def test_chains_valid_after_transform(self, figure2_source):
        program, _ = prop(figure2_source)
        live = {id(s) for s, _ in iter_statements(program)}
        from repro.ir.stmts import IRStmt

        for stmt, _ in iter_statements(program):
            for use in stmt.uses():
                if isinstance(use.def_site, IRStmt):
                    assert id(use.def_site) in live, (
                        f"dangling chain from {stmt.to_str()}"
                    )

    def test_idempotent_second_run(self, figure2_source):
        program, _ = prop(figure2_source)
        before = format_ir(program)
        concurrent_constant_propagation(program)
        assert format_ir(program) == before
