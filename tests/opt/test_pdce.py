"""Parallel Dead Code Elimination."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.stmts import SAssign, SLock
from repro.ir.structured import CobeginRegion, IfRegion, iter_statements
from repro.opt import (
    concurrent_constant_propagation,
    parallel_dead_code_elimination,
)
from tests.conftest import build


def dce(source, prune=True, constprop=False):
    program = build(source)
    form = build_cssame(program, prune=prune)
    if constprop:
        concurrent_constant_propagation(program, form.graph, fold_output_uses=False)
    stats = parallel_dead_code_elimination(program)
    return program, stats


class TestSequential:
    def test_unused_assignment_removed(self):
        program, stats = dce("a = 1; b = 2; print(b);")
        assert stats.stmts_removed == 1
        assert "a0" not in format_ir(program)

    def test_chain_of_dead_defs(self):
        program, stats = dce("a = 1; b = a + 1; c = b + 1; print(1);")
        assert stats.stmts_removed == 3

    def test_live_chain_kept(self):
        program, stats = dce("a = 1; b = a + 1; print(b);")
        assert stats.stmts_removed == 0

    def test_dead_branch_region_removed(self):
        program, stats = dce("c = f(); if (c) { a = 1; } print(2);")
        assert stats.regions_removed == 1
        assert not any(isinstance(i, IfRegion) for i in program.body.items)

    def test_live_branch_kept(self):
        program, stats = dce("c = f(); if (c) { a = 1; } print(a);")
        assert stats.regions_removed == 0
        # c = f() is live via control dependence.
        assert "c0" in format_ir(program)

    def test_calls_always_live(self):
        program, stats = dce("a = 1; f(a);")
        assert stats.stmts_removed == 0

    def test_skip_removed(self):
        program, stats = dce("skip; print(1);")
        assert "skip" not in format_ir(program)

    def test_dead_loop_removed(self):
        program, stats = dce(
            "i = 0; while (i < 3) { i = i + 1; } print(7);"
        )
        assert stats.regions_removed == 1
        assert "while" not in format_ir(program)

    def test_live_loop_kept(self):
        program, stats = dce("i = 0; while (i < 3) { i = i + 1; } print(i);")
        assert "while" in format_ir(program)


class TestParallel:
    def test_sync_ops_always_live(self):
        program, stats = dce("lock(L); a = 1; unlock(L); print(1);")
        text = format_ir(program)
        assert "lock(L);" in text and "unlock(L);" in text

    def test_cross_thread_use_keeps_def(self, figure2_source):
        # The paper's key PDCE example: b = 8 in T0 is live because T1
        # reads b through a π term; a sequential DCE would kill it.
        program, stats = dce(figure2_source, prune=True, constprop=True)
        text = format_ir(program)
        assert "b1 = 8;" in text
        # All the dead a-defs of T0 are gone (Fig. 5a).
        assert "a1 = 5;" not in text
        assert "a2 = 13;" not in text
        assert "a3 = 13;" not in text

    def test_cssa_keeps_more_than_cssame(self, figure2_source):
        _, stats_cssa = dce(figure2_source, prune=False, constprop=True)
        _, stats_cssame = dce(figure2_source, prune=True, constprop=True)
        assert stats_cssame.total_removed > stats_cssa.total_removed

    def test_thread_removed_when_dead(self):
        program, stats = dce(
            """
            cobegin
            begin a = 1; end
            begin b = 2; end
            coend
            print(b);
            """
        )
        # T0 is entirely dead: the cobegin collapses to T1's code.
        assert stats.cobegins_sequentialized == 1
        assert not any(isinstance(i, CobeginRegion) for i in program.body.items)
        assert "b0 = 2;" in format_ir(program)

    def test_cobegin_removed_when_all_dead(self):
        program, stats = dce(
            "cobegin begin a = 1; end begin b = 2; end coend print(3);"
        )
        assert not any(isinstance(i, CobeginRegion) for i in program.body.items)

    def test_cobegin_kept_with_two_live_threads(self):
        program, stats = dce(
            """
            cobegin
            begin a = 1; end
            begin b = 2; end
            coend
            print(a, b);
            """
        )
        region = next(i for i in program.body.items if isinstance(i, CobeginRegion))
        assert len(region.threads) == 2

    def test_sync_only_thread_survives(self):
        program, stats = dce(
            """
            cobegin
            begin set(e); end
            begin wait(e); x = 1; end
            coend
            print(x);
            """
        )
        region = next(i for i in program.body.items if isinstance(i, CobeginRegion))
        assert len(region.threads) == 2  # set(e) keeps T0 alive


class TestPhiPiCleanup:
    def test_dead_phi_removed(self):
        program, stats = dce("a = 1; if (c) { a = 2; } print(7);")
        assert "phi" not in format_ir(program)

    def test_live_pi_keeps_conflict_defs(self):
        program, stats = dce(
            """
            v = 0;
            cobegin
            begin x = v; end
            begin v = 9; end
            coend
            print(x);
            """
        )
        text = format_ir(program)
        assert "v1 = 9;" in text  # kept through the π conflict argument
