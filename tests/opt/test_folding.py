"""Expression evaluation: abstract (lattice) and concrete agree."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMError
from repro.ir.expr import EBin, ECall, EConst, EUn, EVar
from repro.opt.folding import (
    apply_binop,
    apply_unop,
    c_div,
    c_mod,
    eval_expr,
    eval_expr_concrete,
)
from repro.opt.lattice import BOTTOM, TOP, ConstValue


class TestCStyleDivision:
    @pytest.mark.parametrize(
        "a,b,q,r",
        [
            (7, 2, 3, 1),
            (-7, 2, -3, -1),
            (7, -2, -3, 1),
            (-7, -2, 3, -1),
            (6, 3, 2, 0),
            (0, 5, 0, 0),
        ],
    )
    def test_truncating(self, a, b, q, r):
        assert c_div(a, b) == q
        assert c_mod(a, b) == r

    @given(st.integers(-100, 100), st.integers(-100, 100).filter(lambda x: x))
    def test_div_mod_identity(self, a, b):
        assert c_div(a, b) * b + c_mod(a, b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(VMError):
            c_div(1, 0)
        with pytest.raises(VMError):
            c_mod(1, 0)


class TestOperators:
    def test_comparisons_are_01(self):
        assert apply_binop("<", 1, 2) == 1
        assert apply_binop(">=", 1, 2) == 0
        assert apply_binop("==", 3, 3) == 1

    def test_logic(self):
        assert apply_binop("&&", 2, 3) == 1
        assert apply_binop("&&", 0, 3) == 0
        assert apply_binop("||", 0, 0) == 0
        assert apply_unop("!", 0) == 1
        assert apply_unop("!", 7) == 0
        assert apply_unop("-", 5) == -5


class TestAbstractEval:
    def env(self, mapping):
        values = {k: ConstValue(v) if isinstance(v, int) else v for k, v in mapping.items()}
        return lambda var: values.get(var.name, BOTTOM)

    def test_const_fold(self):
        expr = EBin("+", EConst(2), EBin("*", EConst(3), EConst(4)))
        assert eval_expr(expr, self.env({})) == ConstValue(14)

    def test_var_lookup(self):
        expr = EBin("+", EVar("a"), EConst(1))
        assert eval_expr(expr, self.env({"a": 4})) == ConstValue(5)

    def test_bottom_propagates(self):
        expr = EBin("+", EVar("zz"), EConst(1))
        assert eval_expr(expr, self.env({})) is BOTTOM

    def test_top_wins_over_bottom(self):
        # Optimistic: TOP operand keeps the result TOP.
        expr = EBin("+", EVar("t"), EVar("zz"))
        assert eval_expr(expr, self.env({"t": TOP})) is TOP

    def test_call_is_bottom(self):
        assert eval_expr(ECall("f", [EConst(1)]), self.env({})) is BOTTOM

    def test_div_by_zero_is_bottom(self):
        expr = EBin("/", EConst(1), EConst(0))
        assert eval_expr(expr, self.env({})) is BOTTOM


class TestAgreement:
    """Abstract evaluation of constants must match concrete evaluation."""

    _ops = st.sampled_from(["+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "&&", "||"])

    @given(_ops, st.integers(-20, 20), st.integers(-20, 20))
    def test_binop_agreement(self, op, a, b):
        expr = EBin(op, EConst(a), EConst(b))
        abstract = eval_expr(expr, lambda v: BOTTOM)
        concrete = eval_expr_concrete(expr, lambda name: 0)
        assert abstract == ConstValue(concrete)

    @given(st.integers(-50, 50), st.integers(-50, 50).filter(lambda x: x))
    def test_division_agreement(self, a, b):
        expr = EBin("/", EConst(a), EConst(b))
        assert eval_expr(expr, lambda v: BOTTOM) == ConstValue(
            eval_expr_concrete(expr, lambda name: 0)
        )
