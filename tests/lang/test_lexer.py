"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Lexer, tokenize
from repro.lang.tokens import TokenKind as T


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not T.EOF]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        assert kinds("") == [T.EOF]

    def test_whitespace_only(self):
        assert kinds("  \t\n\r  ") == [T.EOF]

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is T.INT
        assert toks[0].text == "42"

    def test_identifier(self):
        toks = tokenize("someVar_1")
        assert toks[0].kind is T.IDENT
        assert toks[0].text == "someVar_1"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].kind is T.IDENT

    def test_all_single_operators(self):
        assert kinds("( ) { } ; , : = + - * / % < > !")[:-1] == [
            T.LPAREN, T.RPAREN, T.LBRACE, T.RBRACE, T.SEMI, T.COMMA,
            T.COLON, T.ASSIGN, T.PLUS, T.MINUS, T.STAR, T.SLASH,
            T.PERCENT, T.LT, T.GT, T.NOT,
        ]

    def test_all_double_operators(self):
        assert kinds("== != <= >= && ||")[:-1] == [
            T.EQ, T.NE, T.LE, T.GE, T.AND, T.OR,
        ]

    def test_double_operator_not_split(self):
        # "<=" must lex as one token, not "<" then "="
        assert kinds("a<=b")[:-1] == [T.IDENT, T.LE, T.IDENT]


class TestKeywords:
    @pytest.mark.parametrize(
        "word,kind",
        [
            ("cobegin", T.KW_COBEGIN),
            ("coend", T.KW_COEND),
            ("begin", T.KW_BEGIN),
            ("end", T.KW_END),
            ("if", T.KW_IF),
            ("else", T.KW_ELSE),
            ("while", T.KW_WHILE),
            ("lock", T.KW_LOCK),
            ("unlock", T.KW_UNLOCK),
            ("set", T.KW_SET),
            ("wait", T.KW_WAIT),
            ("print", T.KW_PRINT),
            ("private", T.KW_PRIVATE),
            ("skip", T.KW_SKIP),
        ],
    )
    def test_keyword(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_keywords_case_insensitive(self):
        # The paper capitalizes Lock/Unlock.
        assert tokenize("Lock")[0].kind is T.KW_LOCK
        assert tokenize("UNLOCK")[0].kind is T.KW_UNLOCK
        assert tokenize("Set")[0].kind is T.KW_SET

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("locker")[0].kind is T.IDENT
        assert tokenize("ifx")[0].kind is T.IDENT


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\nb")[:-1] == [T.IDENT, T.IDENT]

    def test_block_comment(self):
        assert kinds("a /* stuff \n more */ b")[:-1] == [T.IDENT, T.IDENT]

    def test_block_comment_paper_style(self):
        src = "a = 3; /* This kills the assignment to a in T0 */"
        assert kinds(src)[:-1] == [T.IDENT, T.ASSIGN, T.INT, T.SEMI]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].location.line, toks[0].location.column) == (1, 1)
        assert (toks[1].location.line, toks[1].location.column) == (2, 3)

    def test_columns_after_operator(self):
        toks = tokenize("x=1;")
        assert [t.location.column for t in toks[:-1]] == [1, 2, 3, 4]


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_error_carries_location(self):
        try:
            tokenize("\n\n  @")
        except LexError as exc:
            assert exc.location.line == 3
        else:  # pragma: no cover
            raise AssertionError("expected LexError")


class TestFullPrograms:
    def test_figure1_fragment(self):
        src = "Lock(L); a = a + b; Unlock(L);"
        expected = [
            T.KW_LOCK, T.LPAREN, T.IDENT, T.RPAREN, T.SEMI,
            T.IDENT, T.ASSIGN, T.IDENT, T.PLUS, T.IDENT, T.SEMI,
            T.KW_UNLOCK, T.LPAREN, T.IDENT, T.RPAREN, T.SEMI,
        ]
        assert kinds(src)[:-1] == expected

    def test_thread_label(self):
        assert kinds("T0: begin end")[:-1] == [
            T.IDENT, T.COLON, T.KW_BEGIN, T.KW_END,
        ]
